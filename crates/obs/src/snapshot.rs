//! Point-in-time snapshots and their two export formats.
//!
//! A [`StatsSnapshot`] is a plain, ordered value type — the same shape
//! travels over the wire (the net layer's `Stats` RPC encodes it), lands
//! in JSON results files, and feeds the Prometheus text exporter. Names
//! are sorted, so two snapshots of the same registry state are
//! byte-identical however they were produced.

/// One histogram, summarized: total/sum/max exactly, percentiles as
/// bucket upper bounds (within 2× of the true value by construction).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observations (µs by convention).
    pub sum: u64,
    /// Exact maximum observation.
    pub max: u64,
    /// 50th percentile (bucket upper bound).
    pub p50: u64,
    /// 90th percentile (bucket upper bound).
    pub p90: u64,
    /// 99th percentile (bucket upper bound).
    pub p99: u64,
}

impl HistogramSnapshot {
    /// Mean observation, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// One structured event as exported: like [`crate::Event`] but with an
/// owned kind, so the same shape decodes from the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventSnapshot {
    /// Registry-clock timestamp (µs).
    pub at_micros: u64,
    /// Event kind, e.g. `"shed"` or `"protocol_error"`.
    pub kind: String,
    /// Free-form detail.
    pub detail: String,
}

/// Everything a registry knows at one instant, sorted by metric name.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StatsSnapshot {
    /// `(name, value)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge.
    pub gauges: Vec<(String, i64)>,
    /// Every histogram, summarized.
    pub histograms: Vec<HistogramSnapshot>,
    /// The newest structured events, oldest first (bounded; see
    /// [`crate::SNAPSHOT_EVENT_LIMIT`]).
    pub events: Vec<EventSnapshot>,
}

impl StatsSnapshot {
    /// Look up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Look up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Look up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Total number of metrics in the snapshot.
    pub fn len(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.histograms.len()
    }

    /// True if no metrics were registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Prometheus text exposition format. Counters export as `_total`-
    /// suffix-free monotonic counters, histograms as summary-style
    /// quantile gauges plus `_sum`/`_count` (fixed buckets are an
    /// implementation detail; quantiles are what operators alert on).
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let name = sanitize(name);
            out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
        }
        for (name, v) in &self.gauges {
            let name = sanitize(name);
            out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
        }
        for h in &self.histograms {
            let name = sanitize(&h.name);
            out.push_str(&format!("# TYPE {name} summary\n"));
            out.push_str(&format!("{name}{{quantile=\"0.5\"}} {}\n", h.p50));
            out.push_str(&format!("{name}{{quantile=\"0.9\"}} {}\n", h.p90));
            out.push_str(&format!("{name}{{quantile=\"0.99\"}} {}\n", h.p99));
            out.push_str(&format!("{name}_max {}\n", h.max));
            out.push_str(&format!("{name}_sum {}\n", h.sum));
            out.push_str(&format!("{name}_count {}\n", h.count));
        }
        out
    }

    /// Flat JSON (the workspace has no serde_json; names are sanitized to
    /// `[a-zA-Z0-9_:]` so no string escaping is ever needed).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        push_entries(&mut out, self.counters.iter().map(|(n, v)| (n, v.to_string())));
        out.push_str("},\n  \"gauges\": {");
        push_entries(&mut out, self.gauges.iter().map(|(n, v)| (n, v.to_string())));
        out.push_str("},\n  \"histograms\": {");
        push_entries(
            &mut out,
            self.histograms.iter().map(|h| {
                (
                    &h.name,
                    format!(
                        "{{\"count\": {}, \"sum\": {}, \"max\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
                        h.count, h.sum, h.max, h.p50, h.p90, h.p99
                    ),
                )
            }),
        );
        out.push_str("},\n  \"events\": [");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"at_us\": {}, \"kind\": \"{}\", \"detail\": \"{}\"}}",
                e.at_micros,
                escape(&e.kind),
                escape(&e.detail)
            ));
        }
        if !self.events.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Escape a free-form string for JSON (event details are arbitrary —
/// peer addresses, error messages).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn push_entries<'a>(out: &mut String, entries: impl Iterator<Item = (&'a String, String)>) {
    let mut first = true;
    for (name, value) in entries {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("\n    \"{}\": {}", sanitize(name), value));
    }
    if !first {
        out.push_str("\n  ");
    }
}

/// Restrict a metric name to the Prometheus-legal alphabet.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' || c == ':' { c } else { '_' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StatsSnapshot {
        StatsSnapshot {
            counters: vec![("requests_total".into(), 42)],
            gauges: vec![("in_flight".into(), -3)],
            histograms: vec![HistogramSnapshot {
                name: "rpc_ping_us".into(),
                count: 10,
                sum: 100,
                max: 31,
                p50: 7,
                p90: 15,
                p99: 31,
            }],
            events: vec![EventSnapshot {
                at_micros: 12,
                kind: "shed".into(),
                detail: "peer \"10.0.0.1:9\"".into(),
            }],
        }
    }

    #[test]
    fn prometheus_render_has_all_series() {
        let text = sample().render_prometheus();
        assert!(text.contains("# TYPE requests_total counter"));
        assert!(text.contains("requests_total 42"));
        assert!(text.contains("in_flight -3"));
        assert!(text.contains("rpc_ping_us{quantile=\"0.99\"} 31"));
        assert!(text.contains("rpc_ping_us_count 10"));
    }

    #[test]
    fn json_render_is_well_formed_enough() {
        let json = sample().render_json();
        assert!(json.contains("\"requests_total\": 42"));
        assert!(json.contains("\"p99\": 31"));
        // Event details are escaped, not trusted.
        assert!(json.contains("\"detail\": \"peer \\\"10.0.0.1:9\\\"\""));
        // Balanced braces (no serde_json to parse with; count instead).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn lookups_and_sanitization() {
        let snap = sample();
        assert_eq!(snap.counter("requests_total"), Some(42));
        assert_eq!(snap.gauge("in_flight"), Some(-3));
        assert_eq!(snap.histogram("rpc_ping_us").unwrap().mean(), 10.0);
        assert_eq!(snap.counter("absent"), None);
        assert_eq!(sanitize("rpc latency (µs)"), "rpc_latency___s_");
    }

    #[test]
    fn empty_snapshot_renders() {
        let snap = StatsSnapshot::default();
        assert!(snap.is_empty());
        assert_eq!(snap.render_prometheus(), "");
        assert_eq!(
            snap.render_json(),
            "{\n  \"counters\": {},\n  \"gauges\": {},\n  \"histograms\": {},\n  \"events\": []\n}\n"
        );
    }
}

//! The central metric registry.
//!
//! One [`Registry`] per scope — the process-wide [`crate::global`] for
//! pipeline stages, one per service for anything a `Stats` RPC should
//! report in isolation. Registration (name → handle) takes a lock once;
//! recording through a handle is lock-free. Snapshots are sorted by name
//! and monotonic: counters and histogram counts never move backwards
//! between two snapshots of the same registry.

use crate::clock::{Clock, MonotonicClock};
use crate::metrics::{Counter, Gauge, Histogram};
use crate::ring::{Event, EventRing};
use crate::snapshot::{EventSnapshot, HistogramSnapshot, StatsSnapshot};
use crate::trace::Tracer;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// Default bound on the structured event ring.
pub const DEFAULT_EVENT_CAPACITY: usize = 256;

/// Most recent events a [`StatsSnapshot`] carries (the ring holds
/// [`DEFAULT_EVENT_CAPACITY`]; snapshots export the newest slice so the
/// wire table stays small).
pub const SNAPSHOT_EVENT_LIMIT: usize = 64;

#[derive(Default)]
struct Metrics {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

/// A named-metric registry with a pluggable clock.
pub struct Registry {
    metrics: Mutex<Metrics>,
    clock: Arc<dyn Clock>,
    events: EventRing,
    tracer: Tracer,
    /// Gates span timing and event capture (counter/gauge writes are a
    /// single relaxed atomic and stay on unconditionally). The overhead
    /// bench flips this to measure instrumented vs. bare throughput.
    enabled: AtomicBool,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// A registry on the monotonic wall clock (production).
    pub fn new() -> Self {
        Self::with_clock(Arc::new(MonotonicClock::new()))
    }

    /// A registry on an explicit clock (tests use
    /// [`crate::LogicalClock`] for bit-reproducible spans).
    pub fn with_clock(clock: Arc<dyn Clock>) -> Self {
        Registry {
            metrics: Mutex::new(Metrics::default()),
            tracer: Tracer::with_clock(Arc::clone(&clock)),
            clock,
            events: EventRing::new(DEFAULT_EVENT_CAPACITY),
            enabled: AtomicBool::new(true),
        }
    }

    /// Enable or disable span timing, event capture, and tracing.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
        self.tracer.set_enabled(on);
    }

    /// The registry's distributed-trace collector (same clock as spans).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Whether spans and events are being captured.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// The registry's clock reading (µs).
    pub fn now_micros(&self) -> u64 {
        self.clock.now_micros()
    }

    /// The counter named `name`, registering it on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut m = self.metrics.lock().expect("registry poisoned");
        m.counters.entry(name.to_string()).or_insert_with(Counter::new).clone()
    }

    /// The gauge named `name`, registering it on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut m = self.metrics.lock().expect("registry poisoned");
        m.gauges.entry(name.to_string()).or_insert_with(Gauge::new).clone()
    }

    /// The histogram named `name`, registering it on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut m = self.metrics.lock().expect("registry poisoned");
        m.histograms.entry(name.to_string()).or_insert_with(Histogram::new).clone()
    }

    /// Start a span that records its elapsed µs into the histogram
    /// `name` when dropped. Resolves the histogram by name — hot paths
    /// should pre-resolve with [`Registry::histogram`] and use
    /// [`Registry::span_into`].
    pub fn span(&self, name: &str) -> Span {
        self.span_into(&self.histogram(name))
    }

    /// Start a span over a pre-resolved histogram handle (no lock).
    /// A no-op (no clock reads at all) while the registry is disabled.
    #[inline]
    pub fn span_into(&self, hist: &Histogram) -> Span {
        if !self.enabled() {
            return Span { target: None, start: 0 };
        }
        Span {
            start: self.clock.now_micros(),
            target: Some((hist.clone(), Arc::clone(&self.clock))),
        }
    }

    /// Record a structured event (dropped while disabled).
    pub fn event(&self, kind: &'static str, detail: impl Into<String>) {
        if !self.enabled() {
            return;
        }
        self.events.push(Event {
            at_micros: self.clock.now_micros(),
            kind,
            detail: detail.into(),
        });
    }

    /// The most recent events, oldest first (bounded; see
    /// [`DEFAULT_EVENT_CAPACITY`]).
    pub fn recent_events(&self) -> Vec<Event> {
        self.events.recent()
    }

    /// Total events ever recorded, including those the ring dropped.
    pub fn events_recorded(&self) -> u64 {
        self.events.total_pushed()
    }

    /// A point-in-time snapshot, sorted by name. Counters and histogram
    /// counts are monotonic across successive snapshots.
    pub fn snapshot(&self) -> StatsSnapshot {
        let recent = self.events.recent();
        let skip = recent.len().saturating_sub(SNAPSHOT_EVENT_LIMIT);
        let events = recent
            .into_iter()
            .skip(skip)
            .map(|e| EventSnapshot {
                at_micros: e.at_micros,
                kind: e.kind.to_string(),
                detail: e.detail,
            })
            .collect();
        let m = self.metrics.lock().expect("registry poisoned");
        StatsSnapshot {
            counters: m.counters.iter().map(|(n, c)| (n.clone(), c.get())).collect(),
            gauges: m.gauges.iter().map(|(n, g)| (n.clone(), g.get())).collect(),
            events,
            histograms: m
                .histograms
                .iter()
                .map(|(n, h)| HistogramSnapshot {
                    name: n.clone(),
                    count: h.count(),
                    sum: h.sum(),
                    max: h.max(),
                    p50: h.quantile(0.50),
                    p90: h.quantile(0.90),
                    p99: h.quantile(0.99),
                })
                .collect(),
        }
    }
}

/// A live span timer; records elapsed µs into its histogram on drop.
/// Obtain via [`Registry::span`] or [`Registry::span_into`].
#[must_use = "a span records on drop; binding it to _ ends it immediately"]
pub struct Span {
    target: Option<(Histogram, Arc<dyn Clock>)>,
    start: u64,
}

impl Span {
    /// End the span now (equivalent to dropping it).
    pub fn end(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((hist, clock)) = self.target.take() {
            hist.record(clock.now_micros().saturating_sub(self.start));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::LogicalClock;

    #[test]
    fn handles_share_state_by_name() {
        let r = Registry::new();
        r.counter("hits").inc();
        r.counter("hits").add(2);
        assert_eq!(r.counter("hits").get(), 3);
        r.gauge("depth").set(9);
        assert_eq!(r.gauge("depth").get(), 9);
    }

    #[test]
    fn spans_on_a_logical_clock_are_deterministic() {
        let r = Registry::with_clock(Arc::new(LogicalClock::new(10)));
        for _ in 0..5 {
            let span = r.span("work_us");
            span.end();
        }
        let h = r.histogram("work_us");
        assert_eq!(h.count(), 5);
        // Each span: start tick, end tick, 10 µs apart — exactly.
        assert_eq!(h.sum(), 50);
        assert_eq!(h.max(), 10);
    }

    #[test]
    fn disabled_registry_skips_spans_and_events() {
        let r = Registry::with_clock(Arc::new(LogicalClock::new(10)));
        r.set_enabled(false);
        r.span("work_us").end();
        r.event("shed", "ignored");
        assert_eq!(r.histogram("work_us").count(), 0);
        assert!(r.recent_events().is_empty());
        // Counters stay live regardless.
        r.counter("hits").inc();
        assert_eq!(r.counter("hits").get(), 1);
        r.set_enabled(true);
        r.span("work_us").end();
        assert_eq!(r.histogram("work_us").count(), 1);
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let r = Registry::with_clock(Arc::new(LogicalClock::new(1)));
        r.counter("b_total").inc();
        r.counter("a_total").add(5);
        r.gauge("depth").set(-2);
        r.histogram("lat_us").record(8);
        let snap = r.snapshot();
        assert_eq!(
            snap.counters,
            vec![("a_total".to_string(), 5), ("b_total".to_string(), 1)]
        );
        assert_eq!(snap.gauge("depth"), Some(-2));
        let h = snap.histogram("lat_us").unwrap();
        assert_eq!((h.count, h.sum, h.max), (1, 8, 8));
    }

    #[test]
    fn events_carry_clock_timestamps() {
        let r = Registry::with_clock(Arc::new(LogicalClock::new(3)));
        r.event("shed", "conn 1");
        r.event("shed", "conn 2");
        let events = r.recent_events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].at_micros, 3);
        assert_eq!(events[1].at_micros, 6);
        assert_eq!(events[0].kind, "shed");
        assert_eq!(r.events_recorded(), 2);
    }
}

//! Concurrency guarantees of the registry: handles shared across N
//! threads lose no increments, snapshots taken mid-hammer are internally
//! consistent, and repeated snapshots of monotonic metrics never go
//! backwards.

use orsp_obs::{LogicalClock, Registry};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

const THREADS: usize = 8;
const INCREMENTS: u64 = 20_000;

#[test]
fn counter_increments_are_never_lost() {
    let registry = Arc::new(Registry::new());
    let counter = registry.counter("hammer_total");
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let counter = counter.clone();
            thread::spawn(move || {
                for _ in 0..INCREMENTS {
                    counter.inc();
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("hammer thread");
    }
    assert_eq!(
        registry.snapshot().counter("hammer_total"),
        Some(THREADS as u64 * INCREMENTS),
        "every increment from every thread is visible"
    );
}

#[test]
fn histogram_observations_are_never_lost() {
    let registry = Arc::new(Registry::new());
    let histogram = registry.histogram("hammer_us");
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let histogram = histogram.clone();
            thread::spawn(move || {
                for i in 0..INCREMENTS {
                    // Spread observations across buckets; thread t writes
                    // a known per-thread maximum.
                    histogram.record((t as u64 + 1) * 1000 + (i % 7));
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("hammer thread");
    }
    let snapshot = registry.snapshot();
    let h = snapshot.histogram("hammer_us").expect("histogram present");
    assert_eq!(h.count, THREADS as u64 * INCREMENTS, "every observation counted");
    assert_eq!(h.max, THREADS as u64 * 1000 + 6, "exact max survives the race");
    assert!(h.p50 <= h.p90 && h.p90 <= h.p99 && h.p99 <= h.max, "quantiles ordered");
}

#[test]
fn same_name_resolves_to_the_same_metric_across_threads() {
    // Registering concurrently under one name must converge on a single
    // underlying atomic, not N shadow copies.
    let registry = Arc::new(Registry::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let registry = Arc::clone(&registry);
            thread::spawn(move || {
                let counter = registry.counter("shared_total");
                for _ in 0..INCREMENTS {
                    counter.inc();
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("register thread");
    }
    assert_eq!(
        registry.snapshot().counter("shared_total"),
        Some(THREADS as u64 * INCREMENTS)
    );
}

#[test]
fn snapshots_of_monotonic_metrics_never_go_backwards() {
    let registry = Arc::new(Registry::with_clock(Arc::new(LogicalClock::new(1))));
    let counter = registry.counter("mono_total");
    let histogram = registry.histogram("mono_us");
    let stop = Arc::new(AtomicBool::new(false));

    let writers: Vec<_> = (0..4)
        .map(|_| {
            let counter = counter.clone();
            let histogram = histogram.clone();
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    counter.inc();
                    histogram.record(i % 512);
                    i += 1;
                }
            })
        })
        .collect();

    // Snapshot repeatedly while the writers run: counts and sums must be
    // non-decreasing from one scrape to the next, and each snapshot must
    // be internally ordered.
    let mut last_count = 0u64;
    let mut last_hist_count = 0u64;
    for _ in 0..200 {
        let snapshot = registry.snapshot();
        let count = snapshot.counter("mono_total").unwrap_or(0);
        assert!(count >= last_count, "counter went backwards: {count} < {last_count}");
        last_count = count;
        let h = snapshot.histogram("mono_us").expect("histogram present");
        assert!(
            h.count >= last_hist_count,
            "histogram count went backwards: {} < {last_hist_count}",
            h.count
        );
        last_hist_count = h.count;
        assert!(h.p50 <= h.p90 && h.p90 <= h.p99 && h.p99 <= h.max);
    }

    stop.store(true, Ordering::Relaxed);
    for writer in writers {
        writer.join().expect("writer thread");
    }
}

//! Simulated time.
//!
//! All of `orsp` runs against a simulated clock: a [`Timestamp`] is a number
//! of seconds since the simulation epoch, and a [`SimDuration`] is a signed
//! span of seconds. Library code never reads the wall clock — this is what
//! makes every experiment in the repository reproducible bit-for-bit.
//!
//! The paper's domains operate on very long horizons ("to infer
//! recommendations of rarely used service providers such as dentists and
//! plumbers", histories "span several years" — §4.2), so the representation
//! comfortably covers multi-decade simulations at second resolution.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A span of simulated time, in seconds. May be negative (the difference of
/// two timestamps).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(i64);

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// One second.
    pub const SECOND: SimDuration = SimDuration(1);
    /// One minute.
    pub const MINUTE: SimDuration = SimDuration(60);
    /// One hour.
    pub const HOUR: SimDuration = SimDuration(3_600);
    /// One day.
    pub const DAY: SimDuration = SimDuration(86_400);
    /// One (7-day) week.
    pub const WEEK: SimDuration = SimDuration(7 * 86_400);
    /// A 365-day year.
    pub const YEAR: SimDuration = SimDuration(365 * 86_400);

    /// A span of `n` seconds.
    pub const fn seconds(n: i64) -> Self {
        SimDuration(n)
    }

    /// A span of `n` minutes.
    pub const fn minutes(n: i64) -> Self {
        SimDuration(n * 60)
    }

    /// A span of `n` hours.
    pub const fn hours(n: i64) -> Self {
        SimDuration(n * 3_600)
    }

    /// A span of `n` days.
    pub const fn days(n: i64) -> Self {
        SimDuration(n * 86_400)
    }

    /// A span of `n` weeks.
    pub const fn weeks(n: i64) -> Self {
        SimDuration(n * 7 * 86_400)
    }

    /// The span as whole seconds.
    pub const fn as_seconds(self) -> i64 {
        self.0
    }

    /// The span as fractional minutes.
    pub fn as_minutes_f64(self) -> f64 {
        self.0 as f64 / 60.0
    }

    /// The span as fractional hours.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3_600.0
    }

    /// The span as fractional days.
    pub fn as_days_f64(self) -> f64 {
        self.0 as f64 / 86_400.0
    }

    /// Absolute value of the span.
    pub const fn abs(self) -> Self {
        SimDuration(self.0.abs())
    }

    /// True iff the span is negative.
    pub const fn is_negative(self) -> bool {
        self.0 < 0
    }

    /// Build from a fractional number of seconds, rounding to nearest.
    pub fn from_seconds_f64(secs: f64) -> Self {
        SimDuration(secs.round() as i64)
    }

    /// Clamp the span into `[lo, hi]`.
    pub fn clamp(self, lo: SimDuration, hi: SimDuration) -> Self {
        SimDuration(self.0.clamp(lo.0, hi.0))
    }

    /// Saturating multiplication by an integer factor.
    pub const fn saturating_mul(self, factor: i64) -> Self {
        SimDuration(self.0.saturating_mul(factor))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.0;
        let sign = if total < 0 { "-" } else { "" };
        let mut s = total.unsigned_abs();
        let days = s / 86_400;
        s %= 86_400;
        let hours = s / 3_600;
        s %= 3_600;
        let mins = s / 60;
        let secs = s % 60;
        if days > 0 {
            write!(f, "{sign}{days}d{hours:02}h{mins:02}m{secs:02}s")
        } else if hours > 0 {
            write!(f, "{sign}{hours}h{mins:02}m{secs:02}s")
        } else if mins > 0 {
            write!(f, "{sign}{mins}m{secs:02}s")
        } else {
            write!(f, "{sign}{secs}s")
        }
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Neg for SimDuration {
    type Output = SimDuration;
    fn neg(self) -> SimDuration {
        SimDuration(-self.0)
    }
}

impl Mul<i64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: i64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration((self.0 as f64 * rhs).round() as i64)
    }
}

impl Div<i64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: i64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

/// An instant of simulated time: seconds since the simulation epoch.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Timestamp(i64);

impl Timestamp {
    /// The simulation epoch (t = 0).
    pub const EPOCH: Timestamp = Timestamp(0);

    /// Construct from seconds since the epoch.
    pub const fn from_seconds(secs: i64) -> Self {
        Timestamp(secs)
    }

    /// Seconds since the epoch.
    pub const fn as_seconds(self) -> i64 {
        self.0
    }

    /// The span since an earlier instant (negative if `earlier` is later).
    pub const fn since(self, earlier: Timestamp) -> SimDuration {
        SimDuration::seconds(self.0 - earlier.0)
    }

    /// Number of whole simulated days since the epoch (can be negative).
    pub const fn day_index(self) -> i64 {
        self.0.div_euclid(86_400)
    }

    /// Seconds elapsed within the current simulated day, in `[0, 86400)`.
    pub const fn second_of_day(self) -> i64 {
        self.0.rem_euclid(86_400)
    }

    /// Fractional hour of the simulated day, in `[0, 24)`.
    pub fn hour_of_day(self) -> f64 {
        self.second_of_day() as f64 / 3_600.0
    }

    /// Day of the simulated week in `[0, 7)`; the epoch falls on day 0.
    pub const fn day_of_week(self) -> i64 {
        self.day_index().rem_euclid(7)
    }

    /// True iff the instant falls on day 5 or 6 of the simulated week.
    pub const fn is_weekend(self) -> bool {
        self.day_of_week() >= 5
    }

    /// The earlier of two instants.
    pub fn min(self, other: Timestamp) -> Timestamp {
        Timestamp(self.0.min(other.0))
    }

    /// The later of two instants.
    pub fn max(self, other: Timestamp) -> Timestamp {
        Timestamp(self.0.max(other.0))
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let day = self.day_index();
        let s = self.second_of_day();
        write!(f, "T{}+{:02}:{:02}:{:02}", day, s / 3_600, (s % 3_600) / 60, s % 60)
    }
}

impl Add<SimDuration> for Timestamp {
    type Output = Timestamp;
    fn add(self, rhs: SimDuration) -> Timestamp {
        Timestamp(self.0 + rhs.as_seconds())
    }
}

impl Sub<SimDuration> for Timestamp {
    type Output = Timestamp;
    fn sub(self, rhs: SimDuration) -> Timestamp {
        Timestamp(self.0 - rhs.as_seconds())
    }
}

impl Sub for Timestamp {
    type Output = SimDuration;
    fn sub(self, rhs: Timestamp) -> SimDuration {
        self.since(rhs)
    }
}

impl AddAssign<SimDuration> for Timestamp {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.as_seconds();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn duration_constants_are_consistent() {
        assert_eq!(SimDuration::MINUTE, SimDuration::seconds(60));
        assert_eq!(SimDuration::HOUR, SimDuration::minutes(60));
        assert_eq!(SimDuration::DAY, SimDuration::hours(24));
        assert_eq!(SimDuration::WEEK, SimDuration::days(7));
        assert_eq!(SimDuration::YEAR, SimDuration::days(365));
    }

    #[test]
    fn duration_conversions() {
        let d = SimDuration::hours(2);
        assert_eq!(d.as_seconds(), 7_200);
        assert!((d.as_minutes_f64() - 120.0).abs() < 1e-12);
        assert!((d.as_hours_f64() - 2.0).abs() < 1e-12);
        assert!((SimDuration::days(3).as_days_f64() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn duration_display_formats() {
        assert_eq!(SimDuration::seconds(42).to_string(), "42s");
        assert_eq!(SimDuration::minutes(3).to_string(), "3m00s");
        assert_eq!(SimDuration::hours(1).to_string(), "1h00m00s");
        assert_eq!(
            (SimDuration::days(2) + SimDuration::hours(3) + SimDuration::seconds(5)).to_string(),
            "2d03h00m05s"
        );
        assert_eq!(SimDuration::seconds(-90).to_string(), "-1m30s");
    }

    #[test]
    fn timestamp_day_arithmetic() {
        let t = Timestamp::from_seconds(3 * 86_400 + 3_600 * 5 + 61);
        assert_eq!(t.day_index(), 3);
        assert_eq!(t.second_of_day(), 5 * 3_600 + 61);
        assert!((t.hour_of_day() - (5.0 + 61.0 / 3600.0)).abs() < 1e-9);
    }

    #[test]
    fn timestamp_negative_seconds_use_euclidean_days() {
        let t = Timestamp::from_seconds(-1);
        assert_eq!(t.day_index(), -1);
        assert_eq!(t.second_of_day(), 86_399);
    }

    #[test]
    fn weekend_detection() {
        assert!(!Timestamp::EPOCH.is_weekend());
        let sat = Timestamp::EPOCH + SimDuration::days(5);
        let sun = Timestamp::EPOCH + SimDuration::days(6);
        let mon = Timestamp::EPOCH + SimDuration::days(7);
        assert!(sat.is_weekend());
        assert!(sun.is_weekend());
        assert!(!mon.is_weekend());
    }

    #[test]
    fn since_and_sub_agree() {
        let a = Timestamp::from_seconds(100);
        let b = Timestamp::from_seconds(40);
        assert_eq!(a.since(b), SimDuration::seconds(60));
        assert_eq!(a - b, SimDuration::seconds(60));
        assert_eq!(b - a, SimDuration::seconds(-60));
        assert!((b - a).is_negative());
    }

    #[test]
    fn display_timestamp() {
        let t = Timestamp::from_seconds(86_400 + 3_600 + 62);
        assert_eq!(t.to_string(), "T1+01:01:02");
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration =
            [SimDuration::MINUTE, SimDuration::HOUR, SimDuration::seconds(1)]
                .into_iter()
                .sum();
        assert_eq!(total.as_seconds(), 3_661);
    }

    proptest! {
        #[test]
        fn add_then_sub_round_trips(base in -1_000_000_000i64..1_000_000_000, span in -1_000_000i64..1_000_000) {
            let t = Timestamp::from_seconds(base);
            let d = SimDuration::seconds(span);
            prop_assert_eq!((t + d) - d, t);
            prop_assert_eq!((t + d) - t, d);
        }

        #[test]
        fn second_of_day_is_bounded(secs in -10_000_000i64..10_000_000) {
            let t = Timestamp::from_seconds(secs);
            prop_assert!((0..86_400).contains(&t.second_of_day()));
            prop_assert!((0..7).contains(&t.day_of_week()));
        }

        #[test]
        fn duration_abs_is_nonnegative(span in -1_000_000i64..1_000_000) {
            prop_assert!(!SimDuration::seconds(span).abs().is_negative());
        }
    }
}

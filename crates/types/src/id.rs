//! Typed identifiers.
//!
//! Every domain object is keyed by a newtype over `u64` so that ids of
//! different kinds cannot be confused at compile time. [`RecordId`] is the
//! one exception: it is an *opaque 32-byte* identifier because the paper's
//! privacy design (§4.2) derives it as `hash(Ru, e)` — the server must not
//! be able to recover either the user or the entity from it.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! define_u64_id {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u64);

        impl $name {
            /// Construct from a raw `u64`.
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// The raw `u64` value.
            pub const fn raw(self) -> u64 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                Self(raw)
            }
        }
    };
}

define_u64_id!(
    /// A user of the recommendation service.
    UserId,
    "u"
);
define_u64_id!(
    /// An entity that users interact with: a restaurant, doctor, service
    /// provider, app, or video.
    EntityId,
    "e"
);
define_u64_id!(
    /// A physical device (phone) carried by a user. A user may replace
    /// devices over time; the client's secret `Ru` lives on the device.
    DeviceId,
    "d"
);
define_u64_id!(
    /// A search query issued against the service (zipcode × category).
    QueryId,
    "q"
);
define_u64_id!(
    /// An explicitly posted review.
    ReviewId,
    "r"
);
define_u64_id!(
    /// A group of users who interact with an entity together (§4.1:
    /// group visits must not inflate aggregate activity).
    GroupId,
    "g"
);
define_u64_id!(
    /// A blind-signed rate-limit token handed out by the RSP (§4.2).
    TokenId,
    "t"
);

/// Opaque identifier for an anonymous per-(user, entity) interaction
/// history stored at the RSP's servers.
///
/// Derived on-device as `SHA-256(Ru || entity)` so that:
///
/// * two histories stored by the same user for different entities are
///   unlinkable,
/// * the device need not store an `(entity, id)` map — the id is
///   recomputable from the locally-held secret `Ru`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RecordId(pub [u8; 32]);

impl RecordId {
    /// Construct from raw bytes.
    pub const fn from_bytes(bytes: [u8; 32]) -> Self {
        Self(bytes)
    }

    /// The raw bytes.
    pub const fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// A short hex prefix, for logs and debugging only.
    pub fn short_hex(&self) -> String {
        self.0[..6].iter().map(|b| format!("{b:02x}")).collect()
    }
}

impl fmt::Debug for RecordId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RecordId({}..)", self.short_hex())
    }
}

impl fmt::Display for RecordId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn display_prefixes_distinguish_kinds() {
        assert_eq!(UserId::new(7).to_string(), "u7");
        assert_eq!(EntityId::new(7).to_string(), "e7");
        assert_eq!(DeviceId::new(7).to_string(), "d7");
        assert_eq!(QueryId::new(1).to_string(), "q1");
        assert_eq!(ReviewId::new(2).to_string(), "r2");
        assert_eq!(GroupId::new(3).to_string(), "g3");
        assert_eq!(TokenId::new(4).to_string(), "t4");
    }

    #[test]
    fn raw_round_trips() {
        let id = EntityId::from(42u64);
        assert_eq!(id.raw(), 42);
        assert_eq!(EntityId::new(id.raw()), id);
    }

    #[test]
    fn ids_are_hashable_and_ordered() {
        let mut set = HashSet::new();
        set.insert(UserId::new(1));
        set.insert(UserId::new(1));
        set.insert(UserId::new(2));
        assert_eq!(set.len(), 2);
        assert!(UserId::new(1) < UserId::new(2));
    }

    #[test]
    fn record_id_display_is_full_hex() {
        let id = RecordId::from_bytes([0xab; 32]);
        let s = id.to_string();
        assert_eq!(s.len(), 64);
        assert!(s.chars().all(|c| c == 'a' || c == 'b'));
    }

    #[test]
    fn record_id_short_hex_is_prefix() {
        let id = RecordId::from_bytes([0x01; 32]);
        assert_eq!(id.short_hex(), "010101010101");
        assert!(id.to_string().starts_with(&id.short_hex()));
    }

    #[test]
    fn record_id_debug_is_truncated() {
        let id = RecordId::from_bytes([0xff; 32]);
        let dbg = format!("{id:?}");
        assert!(dbg.starts_with("RecordId("));
        assert!(dbg.len() < 30);
    }
}

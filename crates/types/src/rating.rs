//! Ratings and opinion summaries.
//!
//! The paper's "effort is endorsement" classifier (§4.1) "outputs a
//! numerical rating between 0 and 5 or declares it infeasible to accurately
//! gauge the user's opinion". [`Rating`] is that 0–5 value; a
//! [`StarHistogram`] is the per-entity aggregate the RSP publishes so that
//! "no information about any individual user is revealed" (§4.2).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A rating in `[0.0, 5.0]`. Construction clamps into range, so a `Rating`
/// is always valid by construction.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Rating(f64);

impl Rating {
    /// The minimum rating.
    pub const MIN: Rating = Rating(0.0);
    /// The maximum rating.
    pub const MAX: Rating = Rating(5.0);

    /// Construct, clamping into `[0, 5]`. NaN becomes the midpoint 2.5 so
    /// a `Rating` never carries a NaN.
    ///
    /// ```
    /// use orsp_types::Rating;
    /// assert_eq!(Rating::new(7.2).value(), 5.0);
    /// assert_eq!(Rating::new(-1.0).value(), 0.0);
    /// assert!(Rating::new(4.0).is_positive());
    /// ```
    pub fn new(value: f64) -> Self {
        if value.is_nan() {
            Rating(2.5)
        } else {
            Rating(value.clamp(0.0, 5.0))
        }
    }

    /// Construct from whole stars (clamped to `0..=5`).
    pub fn stars(stars: u8) -> Self {
        Rating::new(stars as f64)
    }

    /// The underlying value.
    pub fn value(self) -> f64 {
        self.0
    }

    /// The nearest whole-star bucket, `0..=5`.
    pub fn rounded_stars(self) -> u8 {
        self.0.round() as u8
    }

    /// True iff this rating indicates endorsement (>= 3.5 stars).
    pub fn is_positive(self) -> bool {
        self.0 >= 3.5
    }

    /// Absolute error against another rating.
    pub fn abs_error(self, other: Rating) -> f64 {
        (self.0 - other.0).abs()
    }
}

impl fmt::Display for Rating {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}★", self.0)
    }
}

/// A histogram of ratings bucketed into whole stars 0–5: the
/// privacy-preserving aggregate the RSP exports (§4.2 "histograms of
/// inferred ratings").
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct StarHistogram {
    counts: [u64; 6],
}

impl StarHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one rating.
    pub fn add(&mut self, rating: Rating) {
        self.counts[rating.rounded_stars().min(5) as usize] += 1;
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &StarHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
    }

    /// Total number of ratings.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Count in a given star bucket (`0..=5`).
    pub fn count(&self, stars: u8) -> u64 {
        self.counts[(stars.min(5)) as usize]
    }

    /// Mean rating, or `None` if empty.
    pub fn mean(&self) -> Option<Rating> {
        let total = self.total();
        if total == 0 {
            return None;
        }
        let sum: f64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(stars, &n)| stars as f64 * n as f64)
            .sum();
        Some(Rating::new(sum / total as f64))
    }

    /// Fraction of ratings that are positive (4–5 stars), or `None` if
    /// empty.
    pub fn positive_fraction(&self) -> Option<f64> {
        let total = self.total();
        if total == 0 {
            return None;
        }
        Some((self.counts[4] + self.counts[5]) as f64 / total as f64)
    }

    /// Iterate `(stars, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u8, u64)> + '_ {
        self.counts.iter().enumerate().map(|(s, &n)| (s as u8, n))
    }

    /// The raw per-star counts (index = stars), e.g. for wire encoding.
    pub fn counts(&self) -> [u64; 6] {
        self.counts
    }

    /// Rebuild a histogram from raw per-star counts (the inverse of
    /// [`Self::counts`], e.g. off a wire message).
    pub fn from_counts(counts: [u64; 6]) -> Self {
        StarHistogram { counts }
    }
}

impl fmt::Display for StarHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (stars, count) in self.iter() {
            if stars > 0 {
                write!(f, " ")?;
            }
            write!(f, "{stars}★:{count}")?;
        }
        write!(f, "]")
    }
}

impl FromIterator<Rating> for StarHistogram {
    fn from_iter<I: IntoIterator<Item = Rating>>(iter: I) -> Self {
        let mut h = StarHistogram::new();
        for r in iter {
            h.add(r);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rating_clamps() {
        assert_eq!(Rating::new(-1.0).value(), 0.0);
        assert_eq!(Rating::new(9.0).value(), 5.0);
        assert_eq!(Rating::new(3.2).value(), 3.2);
        assert_eq!(Rating::new(f64::NAN).value(), 2.5);
    }

    #[test]
    fn rating_stars_and_rounding() {
        assert_eq!(Rating::stars(4).value(), 4.0);
        assert_eq!(Rating::stars(200).value(), 5.0);
        assert_eq!(Rating::new(3.5).rounded_stars(), 4);
        assert_eq!(Rating::new(3.49).rounded_stars(), 3);
    }

    #[test]
    fn positivity_threshold() {
        assert!(Rating::new(3.5).is_positive());
        assert!(!Rating::new(3.49).is_positive());
    }

    #[test]
    fn histogram_mean_matches_hand_computation() {
        let h: StarHistogram =
            [Rating::stars(5), Rating::stars(5), Rating::stars(2)].into_iter().collect();
        assert_eq!(h.total(), 3);
        assert_eq!(h.count(5), 2);
        assert_eq!(h.count(2), 1);
        assert!((h.mean().unwrap().value() - 4.0).abs() < 1e-12);
        assert!((h.positive_fraction().unwrap() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_has_no_mean() {
        let h = StarHistogram::new();
        assert_eq!(h.total(), 0);
        assert!(h.mean().is_none());
        assert!(h.positive_fraction().is_none());
    }

    #[test]
    fn merge_adds_counts() {
        let a: StarHistogram = [Rating::stars(1)].into_iter().collect();
        let mut b: StarHistogram = [Rating::stars(5)].into_iter().collect();
        b.merge(&a);
        assert_eq!(b.total(), 2);
        assert_eq!(b.count(1), 1);
        assert_eq!(b.count(5), 1);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Rating::new(4.25).to_string(), "4.2★");
        let h: StarHistogram = [Rating::stars(3)].into_iter().collect();
        assert_eq!(h.to_string(), "[0★:0 1★:0 2★:0 3★:1 4★:0 5★:0]");
    }

    proptest! {
        #[test]
        fn rating_always_in_range(v in proptest::num::f64::ANY) {
            let r = Rating::new(v);
            prop_assert!((0.0..=5.0).contains(&r.value()));
        }

        #[test]
        fn histogram_total_equals_inputs(ratings in proptest::collection::vec(0.0f64..=5.0, 0..100)) {
            let h: StarHistogram = ratings.iter().map(|&v| Rating::new(v)).collect();
            prop_assert_eq!(h.total(), ratings.len() as u64);
            if let Some(m) = h.mean() {
                prop_assert!((0.0..=5.0).contains(&m.value()));
            }
        }

        #[test]
        fn merge_is_commutative(
            a in proptest::collection::vec(0u8..=5, 0..50),
            b in proptest::collection::vec(0u8..=5, 0..50),
        ) {
            let ha: StarHistogram = a.iter().map(|&s| Rating::stars(s)).collect();
            let hb: StarHistogram = b.iter().map(|&s| Rating::stars(s)).collect();
            let mut ab = ha.clone();
            ab.merge(&hb);
            let mut ba = hb.clone();
            ba.merge(&ha);
            prop_assert_eq!(ab, ba);
        }
    }
}

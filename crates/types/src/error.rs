//! Error types shared across the workspace.

use crate::time::Timestamp;
use std::fmt;

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, OrspError>;

/// Errors that cross crate boundaries.
#[derive(Debug, Clone, PartialEq)]
pub enum OrspError {
    /// An interaction record failed basic validation (negative duration or
    /// distance, empty group).
    MalformedInteraction,
    /// An interaction was appended out of chronological order.
    OutOfOrderInteraction {
        /// Start of the latest stored record.
        last: Timestamp,
        /// Start of the rejected record.
        attempted: Timestamp,
    },
    /// A rate-limit token was missing, invalid, or already spent.
    InvalidToken(String),
    /// An upload was rejected by the server's admission checks.
    UploadRejected(String),
    /// A cryptographic operation failed (bad key, verification failure).
    Crypto(String),
    /// A requested object does not exist.
    NotFound(String),
    /// A configuration value is out of range or inconsistent.
    InvalidConfig(String),
    /// The durable storage tier failed (I/O error, corrupt segment,
    /// unrecoverable manifest).
    Storage(String),
}

impl fmt::Display for OrspError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OrspError::MalformedInteraction => write!(f, "malformed interaction record"),
            OrspError::OutOfOrderInteraction { last, attempted } => write!(
                f,
                "out-of-order interaction: attempted start {attempted} precedes last {last}"
            ),
            OrspError::InvalidToken(msg) => write!(f, "invalid token: {msg}"),
            OrspError::UploadRejected(msg) => write!(f, "upload rejected: {msg}"),
            OrspError::Crypto(msg) => write!(f, "crypto error: {msg}"),
            OrspError::NotFound(what) => write!(f, "not found: {what}"),
            OrspError::InvalidConfig(msg) => write!(f, "invalid config: {msg}"),
            OrspError::Storage(msg) => write!(f, "storage error: {msg}"),
        }
    }
}

impl std::error::Error for OrspError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = OrspError::OutOfOrderInteraction {
            last: Timestamp::from_seconds(100),
            attempted: Timestamp::from_seconds(50),
        };
        let msg = e.to_string();
        assert!(msg.contains("out-of-order"));
        assert!(OrspError::InvalidToken("spent".into()).to_string().contains("spent"));
        assert!(OrspError::NotFound("entity e9".into()).to_string().contains("e9"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&OrspError::MalformedInteraction);
    }
}

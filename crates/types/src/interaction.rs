//! The interaction data model.
//!
//! §4.2 of the paper: *"for every entity that a user has interacted with,
//! the RSP needs to store a sequence of interactions, with a number of
//! features associated with each interaction (e.g., duration of
//! interaction, time since last interaction, distance travelled since
//! previous stationary spot, etc.)"*.
//!
//! [`Interaction`] is one such observation; [`InteractionHistory`] is the
//! ordered sequence stored (anonymously) per (user, entity) pair. The same
//! types are used on-device by the client, in transit through the anonymity
//! network, and at rest in the server's history store — the record is
//! *already anonymous by content*: it carries no user id, device id, or
//! absolute location, only the features the inference engine needs.

use crate::time::{SimDuration, Timestamp};
use serde::{Deserialize, Serialize};
use std::fmt;

/// How the user interacted with the entity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum InteractionKind {
    /// A physical visit detected from location (restaurant, doctor's
    /// office).
    Visit,
    /// A phone call placed to the entity (plumber, electrician).
    PhoneCall,
    /// A payment made to the entity.
    Payment,
    /// Online engagement (app session, video view) — used by the Fig. 1c
    /// platforms.
    OnlineUse,
}

impl InteractionKind {
    /// All kinds, in declaration order.
    pub const ALL: [InteractionKind; 4] = [
        InteractionKind::Visit,
        InteractionKind::PhoneCall,
        InteractionKind::Payment,
        InteractionKind::OnlineUse,
    ];

    /// Short label for display.
    pub const fn label(self) -> &'static str {
        match self {
            InteractionKind::Visit => "visit",
            InteractionKind::PhoneCall => "call",
            InteractionKind::Payment => "payment",
            InteractionKind::OnlineUse => "online",
        }
    }
}

impl fmt::Display for InteractionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One observed interaction between a user and an entity.
///
/// The fields are exactly the per-interaction features §4.2 enumerates.
/// Deliberately absent: user id, entity id (the history's opaque
/// [`crate::RecordId`] stands for the pair), and absolute coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interaction {
    /// What kind of interaction.
    pub kind: InteractionKind,
    /// When the interaction began.
    pub start: Timestamp,
    /// How long it lasted ("duration of interaction").
    pub duration: SimDuration,
    /// Distance travelled since the previous stationary spot, meters
    /// ("distance travelled since previous stationary spot") — the paper's
    /// canonical *effort* feature.
    pub distance_travelled_m: f64,
    /// Number of users who interacted together; 1 means alone. Group
    /// interactions must not inflate aggregates (§4.1).
    pub group_size: u16,
}

impl Interaction {
    /// A solo interaction with the given parameters.
    pub fn solo(
        kind: InteractionKind,
        start: Timestamp,
        duration: SimDuration,
        distance_travelled_m: f64,
    ) -> Self {
        Interaction { kind, start, duration, distance_travelled_m, group_size: 1 }
    }

    /// When the interaction ended.
    pub fn end(&self) -> Timestamp {
        self.start + self.duration
    }

    /// Basic well-formedness: non-negative duration and distance, group of
    /// at least one.
    pub fn is_well_formed(&self) -> bool {
        !self.duration.is_negative()
            && self.distance_travelled_m >= 0.0
            && self.distance_travelled_m.is_finite()
            && self.group_size >= 1
    }
}

/// The ordered sequence of interactions for one (user, entity) pair.
///
/// ```
/// use orsp_types::{Interaction, InteractionHistory, InteractionKind, SimDuration, Timestamp};
/// let mut h = InteractionHistory::new();
/// h.push(Interaction::solo(
///     InteractionKind::Visit,
///     Timestamp::from_seconds(0),
///     SimDuration::minutes(45),
///     800.0,
/// )).unwrap();
/// assert_eq!(h.len(), 1);
/// ```
///
/// Invariant: records are sorted by `start` (ties allowed) and every record
/// is well-formed. [`InteractionHistory::push`] enforces this; out-of-order
/// appends are rejected rather than silently reordered, because an
/// out-of-order upload is exactly the kind of anomaly the fraud pipeline
/// wants to see (§4.3).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct InteractionHistory {
    records: Vec<Interaction>,
}

impl InteractionHistory {
    /// An empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from records, sorting them by start time. Returns `None` if
    /// any record is malformed.
    pub fn from_records(mut records: Vec<Interaction>) -> Option<Self> {
        if records.iter().any(|r| !r.is_well_formed()) {
            return None;
        }
        records.sort_by_key(|r| r.start);
        Some(InteractionHistory { records })
    }

    /// Append a record. Fails if the record is malformed or starts before
    /// the last recorded interaction.
    pub fn push(&mut self, record: Interaction) -> crate::Result<()> {
        if !record.is_well_formed() {
            return Err(crate::OrspError::MalformedInteraction);
        }
        if let Some(last) = self.records.last() {
            if record.start < last.start {
                return Err(crate::OrspError::OutOfOrderInteraction {
                    last: last.start,
                    attempted: record.start,
                });
            }
        }
        self.records.push(record);
        Ok(())
    }

    /// Number of interactions.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True iff there are no interactions.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The records, in start order.
    pub fn records(&self) -> &[Interaction] {
        &self.records
    }

    /// The most recent interaction.
    pub fn last(&self) -> Option<&Interaction> {
        self.records.last()
    }

    /// The first interaction.
    pub fn first(&self) -> Option<&Interaction> {
        self.records.first()
    }

    /// Gaps between consecutive interaction starts ("time since last
    /// interaction"); empty when fewer than two records.
    pub fn gaps(&self) -> Vec<SimDuration> {
        self.records.windows(2).map(|w| w[1].start - w[0].start).collect()
    }

    /// Total span from first start to last end.
    pub fn span(&self) -> SimDuration {
        match (self.records.first(), self.records.last()) {
            (Some(first), Some(last)) => last.end() - first.start,
            _ => SimDuration::ZERO,
        }
    }

    /// Total time spent interacting.
    pub fn total_duration(&self) -> SimDuration {
        self.records.iter().map(|r| r.duration).sum()
    }

    /// Mean distance travelled per interaction, or `None` if empty.
    pub fn mean_distance_m(&self) -> Option<f64> {
        if self.records.is_empty() {
            return None;
        }
        Some(
            self.records.iter().map(|r| r.distance_travelled_m).sum::<f64>()
                / self.records.len() as f64,
        )
    }

    /// Drop records that *ended* before `cutoff` (the client's bounded
    /// local store, §4.2: "purges an entry from the user's history once the
    /// entry is older than a configurable threshold"). Returns how many
    /// were purged.
    pub fn purge_older_than(&mut self, cutoff: Timestamp) -> usize {
        let before = self.records.len();
        self.records.retain(|r| r.end() >= cutoff);
        before - self.records.len()
    }

    /// Merge another history into this one, re-sorting by start time.
    pub fn merge(&mut self, other: &InteractionHistory) {
        self.records.extend_from_slice(&other.records);
        self.records.sort_by_key(|r| r.start);
    }

    /// Iterate over records.
    pub fn iter(&self) -> std::slice::Iter<'_, Interaction> {
        self.records.iter()
    }
}

impl<'a> IntoIterator for &'a InteractionHistory {
    type Item = &'a Interaction;
    type IntoIter = std::slice::Iter<'a, Interaction>;
    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn visit(start_s: i64, dur_s: i64, dist: f64) -> Interaction {
        Interaction::solo(
            InteractionKind::Visit,
            Timestamp::from_seconds(start_s),
            SimDuration::seconds(dur_s),
            dist,
        )
    }

    #[test]
    fn push_keeps_order() {
        let mut h = InteractionHistory::new();
        h.push(visit(0, 100, 500.0)).unwrap();
        h.push(visit(1_000, 100, 400.0)).unwrap();
        assert_eq!(h.len(), 2);
        assert!(h.push(visit(500, 10, 1.0)).is_err(), "out-of-order rejected");
        assert_eq!(h.len(), 2, "rejected record is not stored");
    }

    #[test]
    fn malformed_records_rejected() {
        let mut h = InteractionHistory::new();
        let neg_dur = Interaction::solo(
            InteractionKind::Visit,
            Timestamp::EPOCH,
            SimDuration::seconds(-5),
            1.0,
        );
        assert!(h.push(neg_dur).is_err());
        let neg_dist = visit(0, 10, -1.0);
        assert!(h.push(neg_dist).is_err());
        let mut zero_group = visit(0, 10, 1.0);
        zero_group.group_size = 0;
        assert!(h.push(zero_group).is_err());
        let nan_dist = visit(0, 10, f64::NAN);
        assert!(h.push(nan_dist).is_err());
    }

    #[test]
    fn gaps_between_starts() {
        let h = InteractionHistory::from_records(vec![
            visit(0, 60, 1.0),
            visit(3_600, 60, 1.0),
            visit(10_800, 60, 1.0),
        ])
        .unwrap();
        assert_eq!(h.gaps(), vec![SimDuration::hours(1), SimDuration::hours(2)]);
    }

    #[test]
    fn span_and_total_duration() {
        let h =
            InteractionHistory::from_records(vec![visit(0, 100, 1.0), visit(900, 100, 1.0)])
                .unwrap();
        assert_eq!(h.span(), SimDuration::seconds(1_000));
        assert_eq!(h.total_duration(), SimDuration::seconds(200));
    }

    #[test]
    fn from_records_sorts() {
        let h = InteractionHistory::from_records(vec![visit(500, 10, 1.0), visit(0, 10, 2.0)])
            .unwrap();
        assert_eq!(h.first().unwrap().start, Timestamp::EPOCH);
    }

    #[test]
    fn from_records_rejects_malformed() {
        assert!(InteractionHistory::from_records(vec![visit(0, -1, 1.0)]).is_none());
    }

    #[test]
    fn purge_drops_old_entries() {
        let mut h = InteractionHistory::from_records(vec![
            visit(0, 100, 1.0),
            visit(10_000, 100, 1.0),
            visit(20_000, 100, 1.0),
        ])
        .unwrap();
        let purged = h.purge_older_than(Timestamp::from_seconds(10_050));
        assert_eq!(purged, 1);
        assert_eq!(h.len(), 2);
        assert_eq!(h.first().unwrap().start, Timestamp::from_seconds(10_000));
    }

    #[test]
    fn purge_keeps_record_spanning_cutoff() {
        // A visit still in progress at the cutoff survives.
        let mut h = InteractionHistory::from_records(vec![visit(0, 1_000, 1.0)]).unwrap();
        assert_eq!(h.purge_older_than(Timestamp::from_seconds(500)), 0);
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn mean_distance() {
        let h =
            InteractionHistory::from_records(vec![visit(0, 10, 100.0), visit(100, 10, 300.0)])
                .unwrap();
        assert!((h.mean_distance_m().unwrap() - 200.0).abs() < 1e-12);
        assert!(InteractionHistory::new().mean_distance_m().is_none());
    }

    #[test]
    fn merge_resorts() {
        let mut a = InteractionHistory::from_records(vec![visit(0, 10, 1.0)]).unwrap();
        let b = InteractionHistory::from_records(vec![visit(5, 10, 1.0)]).unwrap();
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert!(a.records()[0].start <= a.records()[1].start);
    }

    #[test]
    fn empty_history_edge_cases() {
        let h = InteractionHistory::new();
        assert!(h.is_empty());
        assert_eq!(h.span(), SimDuration::ZERO);
        assert!(h.gaps().is_empty());
        assert!(h.first().is_none());
        assert!(h.last().is_none());
    }

    proptest! {
        #[test]
        fn from_records_always_sorted(
            starts in proptest::collection::vec(0i64..1_000_000, 0..50),
        ) {
            let records: Vec<_> = starts.iter().map(|&s| visit(s, 60, 10.0)).collect();
            let h = InteractionHistory::from_records(records).unwrap();
            for w in h.records().windows(2) {
                prop_assert!(w[0].start <= w[1].start);
            }
            prop_assert!(h.gaps().iter().all(|g| !g.is_negative()));
        }

        #[test]
        fn purge_is_idempotent(
            starts in proptest::collection::vec(0i64..1_000_000, 0..50),
            cutoff in 0i64..1_000_000,
        ) {
            let records: Vec<_> = starts.iter().map(|&s| visit(s, 60, 10.0)).collect();
            let mut h = InteractionHistory::from_records(records).unwrap();
            let cutoff = Timestamp::from_seconds(cutoff);
            h.purge_older_than(cutoff);
            let after_first = h.clone();
            prop_assert_eq!(h.purge_older_than(cutoff), 0);
            prop_assert_eq!(h, after_first);
        }
    }
}

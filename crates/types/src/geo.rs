//! Planar geography.
//!
//! The world simulator lays out entities and users on a flat plane measured
//! in meters. A real deployment would use WGS-84 coordinates; for the
//! behaviours the paper cares about — distance travelled as an *effort*
//! feature (§4.1), visit detection from location fixes, nearby-alternative
//! counting — a local tangent plane is an exact stand-in at city scale.
//!
//! A [`Zipcode`] is a disk-shaped neighbourhood with a population weight,
//! mirroring the paper's measurement methodology ("the most populous zipcode
//! in each of the 50 states" — §2).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A point on the simulation plane, in meters.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct GeoPoint {
    /// East-west coordinate, meters.
    pub x: f64,
    /// North-south coordinate, meters.
    pub y: f64,
}

impl GeoPoint {
    /// The origin.
    pub const ORIGIN: GeoPoint = GeoPoint { x: 0.0, y: 0.0 };

    /// Construct a point.
    pub const fn new(x: f64, y: f64) -> Self {
        GeoPoint { x, y }
    }

    /// Euclidean distance to another point, meters.
    pub fn distance_to(&self, other: &GeoPoint) -> f64 {
        (self.x - other.x).hypot(self.y - other.y)
    }

    /// Squared distance — cheaper when only comparing.
    pub fn distance_sq(&self, other: &GeoPoint) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// The point translated by `(dx, dy)` meters.
    pub fn offset(&self, dx: f64, dy: f64) -> GeoPoint {
        GeoPoint::new(self.x + dx, self.y + dy)
    }

    /// Linear interpolation toward `other`; `t = 0` is `self`, `t = 1` is
    /// `other`.
    pub fn lerp(&self, other: &GeoPoint, t: f64) -> GeoPoint {
        GeoPoint::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }

    /// The midpoint between two points.
    pub fn midpoint(&self, other: &GeoPoint) -> GeoPoint {
        self.lerp(other, 0.5)
    }
}

impl fmt::Display for GeoPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.1}m, {:.1}m)", self.x, self.y)
    }
}

/// An axis-aligned rectangle on the plane.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundingBox {
    /// Minimum corner (south-west).
    pub min: GeoPoint,
    /// Maximum corner (north-east).
    pub max: GeoPoint,
}

impl BoundingBox {
    /// Construct from two corners, normalizing so `min <= max` per axis.
    pub fn new(a: GeoPoint, b: GeoPoint) -> Self {
        BoundingBox {
            min: GeoPoint::new(a.x.min(b.x), a.y.min(b.y)),
            max: GeoPoint::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// The box centered at `center` extending `radius` meters in every
    /// direction.
    pub fn around(center: GeoPoint, radius: f64) -> Self {
        BoundingBox {
            min: center.offset(-radius, -radius),
            max: center.offset(radius, radius),
        }
    }

    /// Width in meters.
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height in meters.
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Geometric center.
    pub fn center(&self) -> GeoPoint {
        self.min.midpoint(&self.max)
    }

    /// True iff the point lies inside (inclusive of edges).
    pub fn contains(&self, p: &GeoPoint) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// True iff the two boxes overlap (inclusive of edges).
    pub fn intersects(&self, other: &BoundingBox) -> bool {
        self.min.x <= other.max.x
            && self.max.x >= other.min.x
            && self.min.y <= other.max.y
            && self.max.y >= other.min.y
    }

    /// The smallest box containing both.
    pub fn union(&self, other: &BoundingBox) -> BoundingBox {
        BoundingBox {
            min: GeoPoint::new(self.min.x.min(other.min.x), self.min.y.min(other.min.y)),
            max: GeoPoint::new(self.max.x.max(other.max.x), self.max.y.max(other.max.y)),
        }
    }
}

/// A zipcode: a disk-shaped neighbourhood with a population weight.
///
/// The paper issues queries as (zipcode, category) pairs over the most
/// populous zipcode in each of the 50 US states; the world generator places
/// one [`Zipcode`] per simulated region and scales entity density by
/// `population`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Zipcode {
    /// Five-digit-style numeric code (unique within a world).
    pub code: u32,
    /// Center of the neighbourhood.
    pub center: GeoPoint,
    /// Radius of the neighbourhood disk, meters.
    pub radius: f64,
    /// Resident population (drives entity and user density).
    pub population: u32,
}

impl Zipcode {
    /// Construct a zipcode.
    pub fn new(code: u32, center: GeoPoint, radius: f64, population: u32) -> Self {
        Zipcode { code, center, radius, population }
    }

    /// True iff the point falls within the neighbourhood disk.
    pub fn contains(&self, p: &GeoPoint) -> bool {
        self.center.distance_to(p) <= self.radius
    }

    /// The bounding box of the neighbourhood disk.
    pub fn bounds(&self) -> BoundingBox {
        BoundingBox::around(self.center, self.radius)
    }
}

impl fmt::Display for Zipcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:05}", self.code)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn distance_is_euclidean() {
        let a = GeoPoint::new(0.0, 0.0);
        let b = GeoPoint::new(3.0, 4.0);
        assert!((a.distance_to(&b) - 5.0).abs() < 1e-12);
        assert!((a.distance_sq(&b) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = GeoPoint::new(0.0, 0.0);
        let b = GeoPoint::new(10.0, -10.0);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        assert_eq!(a.midpoint(&b), GeoPoint::new(5.0, -5.0));
    }

    #[test]
    fn bbox_normalizes_corners() {
        let b = BoundingBox::new(GeoPoint::new(5.0, -1.0), GeoPoint::new(-5.0, 1.0));
        assert_eq!(b.min, GeoPoint::new(-5.0, -1.0));
        assert_eq!(b.max, GeoPoint::new(5.0, 1.0));
        assert!((b.width() - 10.0).abs() < 1e-12);
        assert!((b.height() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn bbox_contains_edges() {
        let b = BoundingBox::around(GeoPoint::ORIGIN, 10.0);
        assert!(b.contains(&GeoPoint::new(10.0, 10.0)));
        assert!(b.contains(&GeoPoint::ORIGIN));
        assert!(!b.contains(&GeoPoint::new(10.0, 10.1)));
    }

    #[test]
    fn bbox_intersection_cases() {
        let a = BoundingBox::around(GeoPoint::ORIGIN, 10.0);
        let b = BoundingBox::around(GeoPoint::new(15.0, 0.0), 10.0);
        let c = BoundingBox::around(GeoPoint::new(100.0, 100.0), 10.0);
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
    }

    #[test]
    fn bbox_union_covers_both() {
        let a = BoundingBox::around(GeoPoint::ORIGIN, 1.0);
        let b = BoundingBox::around(GeoPoint::new(10.0, 10.0), 1.0);
        let u = a.union(&b);
        assert!(u.contains(&a.min) && u.contains(&a.max));
        assert!(u.contains(&b.min) && u.contains(&b.max));
    }

    #[test]
    fn zipcode_membership() {
        let z = Zipcode::new(19120, GeoPoint::ORIGIN, 1_000.0, 70_000);
        assert!(z.contains(&GeoPoint::new(999.0, 0.0)));
        assert!(!z.contains(&GeoPoint::new(1_001.0, 0.0)));
        assert_eq!(z.to_string(), "19120");
        assert!(z.bounds().contains(&GeoPoint::new(999.0, 999.0)));
    }

    #[test]
    fn zipcode_display_pads() {
        let z = Zipcode::new(7, GeoPoint::ORIGIN, 1.0, 1);
        assert_eq!(z.to_string(), "00007");
    }

    proptest! {
        #[test]
        fn distance_symmetry(ax in -1e6f64..1e6, ay in -1e6f64..1e6, bx in -1e6f64..1e6, by in -1e6f64..1e6) {
            let a = GeoPoint::new(ax, ay);
            let b = GeoPoint::new(bx, by);
            prop_assert!((a.distance_to(&b) - b.distance_to(&a)).abs() < 1e-9);
        }

        #[test]
        fn triangle_inequality(
            ax in -1e5f64..1e5, ay in -1e5f64..1e5,
            bx in -1e5f64..1e5, by in -1e5f64..1e5,
            cx in -1e5f64..1e5, cy in -1e5f64..1e5,
        ) {
            let a = GeoPoint::new(ax, ay);
            let b = GeoPoint::new(bx, by);
            let c = GeoPoint::new(cx, cy);
            prop_assert!(a.distance_to(&c) <= a.distance_to(&b) + b.distance_to(&c) + 1e-6);
        }

        #[test]
        fn union_contains_center(
            ax in -1e5f64..1e5, ay in -1e5f64..1e5,
            bx in -1e5f64..1e5, by in -1e5f64..1e5,
        ) {
            let a = BoundingBox::around(GeoPoint::new(ax, ay), 5.0);
            let b = BoundingBox::around(GeoPoint::new(bx, by), 5.0);
            let u = a.union(&b);
            prop_assert!(u.contains(&a.center()));
            prop_assert!(u.contains(&b.center()));
        }
    }
}

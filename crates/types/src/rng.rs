//! Deterministic RNG derivation.
//!
//! Every stochastic component in `orsp` draws from a [`rand::rngs::StdRng`]
//! derived from a master seed plus a *label*, so that:
//!
//! * the whole simulation is reproducible from a single `--seed`,
//! * adding randomness to one subsystem never perturbs the stream consumed
//!   by another (no accidental coupling through a shared RNG), and
//! * per-user / per-entity streams can be derived independently and in any
//!   order.
//!
//! The derivation is a [SplitMix64](https://prng.di.unimi.it/splitmix64.c)
//! finalizer over a simple label hash — not cryptographic (the crypto crate
//! owns that), just well-mixed.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// SplitMix64 finalizer: a fast, well-distributed 64-bit mixer.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hash a label (byte string) into a u64 using an FNV-1a walk followed by a
/// SplitMix64 finalizer.
pub fn hash_label(label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in label.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    splitmix64(h)
}

/// Derive a child seed from a master seed and a label.
pub fn derive_seed(master: u64, label: &str) -> u64 {
    splitmix64(master ^ hash_label(label))
}

/// Derive a child seed from a master seed, a label, and an index (for
/// per-user / per-entity streams).
pub fn derive_seed_indexed(master: u64, label: &str, index: u64) -> u64 {
    splitmix64(derive_seed(master, label) ^ splitmix64(index))
}

/// A `StdRng` for a (master seed, label) pair.
pub fn rng_for(master: u64, label: &str) -> StdRng {
    StdRng::seed_from_u64(derive_seed(master, label))
}

/// A `StdRng` for a (master seed, label, index) triple.
pub fn rng_for_indexed(master: u64, label: &str, index: u64) -> StdRng {
    StdRng::seed_from_u64(derive_seed_indexed(master, label, index))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn derivation_is_deterministic() {
        assert_eq!(derive_seed(42, "world"), derive_seed(42, "world"));
        assert_eq!(derive_seed_indexed(42, "user", 7), derive_seed_indexed(42, "user", 7));
    }

    #[test]
    fn labels_separate_streams() {
        assert_ne!(derive_seed(42, "world"), derive_seed(42, "sensors"));
        assert_ne!(derive_seed(42, "a"), derive_seed(43, "a"));
        assert_ne!(derive_seed_indexed(42, "user", 0), derive_seed_indexed(42, "user", 1));
    }

    #[test]
    fn rngs_from_same_derivation_agree() {
        let mut a = rng_for(1, "x");
        let mut b = rng_for(1, "x");
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn splitmix_avalanche_spot_check() {
        // Flipping one input bit should flip roughly half the output bits.
        let a = splitmix64(0x1234_5678);
        let b = splitmix64(0x1234_5679);
        let flipped = (a ^ b).count_ones();
        assert!((16..=48).contains(&flipped), "poor avalanche: {flipped} bits");
    }

    #[test]
    fn hash_label_differs_on_small_edits() {
        assert_ne!(hash_label("abc"), hash_label("abd"));
        assert_ne!(hash_label(""), hash_label("a"));
    }

    #[test]
    fn indexed_rng_streams_differ() {
        let mut r0 = rng_for_indexed(9, "persona", 0);
        let mut r1 = rng_for_indexed(9, "persona", 1);
        let draws0: Vec<u64> = (0..8).map(|_| r0.gen()).collect();
        let draws1: Vec<u64> = (0..8).map(|_| r1.gen()).collect();
        assert_ne!(draws0, draws1);
    }
}

//! # orsp-types
//!
//! Shared domain types for the `orsp` workspace — a reproduction of
//! *"Towards Comprehensive Repositories of Opinions"* (HotNets 2016).
//!
//! This crate defines the vocabulary that every other crate speaks:
//!
//! * typed identifiers ([`UserId`], [`EntityId`], [`RecordId`], ...),
//! * simulated time ([`Timestamp`], [`SimDuration`]) — library code never
//!   touches the wall clock,
//! * planar geography ([`GeoPoint`], [`Zipcode`]) used by the world
//!   simulator and the client's entity mapper,
//! * the entity taxonomy of the paper's measurement study
//!   ([`Category`], [`Cuisine`], [`Specialty`], [`Trade`]),
//! * ratings and opinions ([`Rating`], [`StarHistogram`]),
//! * the interaction data model shared by the client, the server's
//!   anonymous history store, and the inference engine
//!   ([`Interaction`], [`InteractionHistory`]),
//! * deterministic RNG derivation helpers ([`rng`]).
//!
//! Everything here is deliberately free of business logic: these are the
//! nouns of the system, not its verbs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod category;
pub mod error;
pub mod geo;
pub mod id;
pub mod interaction;
pub mod rating;
pub mod rng;
pub mod time;

pub use category::{Category, Cuisine, ServiceKind, Specialty, Trade};
pub use error::{OrspError, Result};
pub use geo::{BoundingBox, GeoPoint, Zipcode};
pub use id::{DeviceId, EntityId, GroupId, QueryId, RecordId, ReviewId, TokenId, UserId};
pub use interaction::{Interaction, InteractionHistory, InteractionKind};
pub use rating::{Rating, StarHistogram};
pub use time::{SimDuration, Timestamp};

//! The entity taxonomy of the paper's measurement study (§2, Table 1).
//!
//! The paper crawls three services and two platforms:
//!
//! * **Yelp** — restaurants, queried by **9 popular cuisines**;
//! * **Healthgrades** — doctors, queried by **4 specialties** (dentists,
//!   family medicine, pediatrics, plastic surgery);
//! * **Angie's List** — **24 types of service providers**;
//! * **Google Play** (apps) and **YouTube** (videos) for the
//!   explicit-vs-implicit interaction comparison (Fig. 1c).
//!
//! This module encodes that taxonomy as exhaustive enums so the synthetic
//! catalogs, the crawler, the search index, and the harnesses all agree on
//! exactly the same query universe.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The recommendation services / platforms the paper measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ServiceKind {
    /// Yelp — restaurants.
    Yelp,
    /// Angie's List — home service providers.
    AngiesList,
    /// Healthgrades — doctors.
    Healthgrades,
    /// Google Play — mobile apps (Fig. 1c only).
    GooglePlay,
    /// YouTube — videos (Fig. 1c only).
    YouTube,
}

impl ServiceKind {
    /// The three review-centric services of Table 1 / Fig. 1(a,b).
    pub const REVIEW_SERVICES: [ServiceKind; 3] =
        [ServiceKind::Yelp, ServiceKind::AngiesList, ServiceKind::Healthgrades];

    /// The two interaction-count platforms of Fig. 1(c).
    pub const INTERACTION_PLATFORMS: [ServiceKind; 2] =
        [ServiceKind::GooglePlay, ServiceKind::YouTube];

    /// Human-readable name matching the paper.
    pub const fn name(self) -> &'static str {
        match self {
            ServiceKind::Yelp => "Yelp",
            ServiceKind::AngiesList => "Angie's List",
            ServiceKind::Healthgrades => "Healthgrades",
            ServiceKind::GooglePlay => "Google Play",
            ServiceKind::YouTube => "YouTube",
        }
    }

    /// Number of query categories the paper uses for this service
    /// (Table 1: Yelp 9, Angie's List 24, Healthgrades 4).
    pub fn category_count(self) -> usize {
        match self {
            ServiceKind::Yelp => Cuisine::ALL.len(),
            ServiceKind::AngiesList => Trade::ALL.len(),
            ServiceKind::Healthgrades => Specialty::ALL.len(),
            // Play/YouTube are sampled by entity, not queried by category.
            ServiceKind::GooglePlay | ServiceKind::YouTube => 0,
        }
    }

    /// The categories queried on this service.
    pub fn categories(self) -> Vec<Category> {
        match self {
            ServiceKind::Yelp => Cuisine::ALL.iter().copied().map(Category::Restaurant).collect(),
            ServiceKind::AngiesList => {
                Trade::ALL.iter().copied().map(Category::ServiceProvider).collect()
            }
            ServiceKind::Healthgrades => {
                Specialty::ALL.iter().copied().map(Category::Doctor).collect()
            }
            ServiceKind::GooglePlay => vec![Category::App],
            ServiceKind::YouTube => vec![Category::Video],
        }
    }
}

impl fmt::Display for ServiceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

macro_rules! simple_enum {
    (
        $(#[$doc:meta])*
        $name:ident { $($variant:ident => $label:expr),+ $(,)? }
    ) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
        pub enum $name {
            $(
                #[doc = $label]
                $variant,
            )+
        }

        impl $name {
            /// Every variant, in declaration order.
            pub const ALL: &'static [$name] = &[$($name::$variant),+];

            /// Human-readable label.
            pub const fn label(self) -> &'static str {
                match self {
                    $($name::$variant => $label),+
                }
            }

            /// Stable index of the variant within [`Self::ALL`].
            pub fn index(self) -> usize {
                Self::ALL.iter().position(|v| *v == self).expect("variant in ALL")
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(self.label())
            }
        }
    };
}

simple_enum! {
    /// The 9 popular cuisines the paper queries on Yelp.
    Cuisine {
        American => "American",
        Chinese => "Chinese",
        Italian => "Italian",
        Japanese => "Japanese",
        Mexican => "Mexican",
        Indian => "Indian",
        Thai => "Thai",
        Mediterranean => "Mediterranean",
        French => "French",
    }
}

simple_enum! {
    /// The 4 doctor specialties the paper queries on Healthgrades (§2).
    Specialty {
        Dentist => "Dentist",
        FamilyMedicine => "Family Medicine",
        Pediatrics => "Pediatrics",
        PlasticSurgery => "Plastic Surgery",
    }
}

simple_enum! {
    /// The 24 service-provider trades queried on Angie's List (§2 says
    /// "all 24 types of service providers listed on the site").
    Trade {
        Electrician => "Electrician",
        Plumber => "Plumber",
        Gardener => "Gardener",
        Handyman => "Handyman",
        HouseCleaner => "House Cleaner",
        Painter => "Painter",
        Roofer => "Roofer",
        Hvac => "HVAC",
        Landscaper => "Landscaper",
        PestControl => "Pest Control",
        Locksmith => "Locksmith",
        Mover => "Mover",
        Carpenter => "Carpenter",
        Flooring => "Flooring",
        WindowInstaller => "Window Installer",
        GarageDoor => "Garage Door",
        ApplianceRepair => "Appliance Repair",
        TreeService => "Tree Service",
        Fencing => "Fencing",
        Masonry => "Masonry",
        GutterCleaning => "Gutter Cleaning",
        PoolService => "Pool Service",
        SepticService => "Septic Service",
        Chimney => "Chimney Sweep",
    }
}

/// A query/entity category across all services.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Category {
    /// A restaurant of a given cuisine (Yelp).
    Restaurant(Cuisine),
    /// A doctor of a given specialty (Healthgrades).
    Doctor(Specialty),
    /// A home service provider of a given trade (Angie's List).
    ServiceProvider(Trade),
    /// A mobile app (Google Play; Fig. 1c).
    App,
    /// A video (YouTube; Fig. 1c).
    Video,
}

impl Category {
    /// The service this category belongs to.
    pub const fn service(self) -> ServiceKind {
        match self {
            Category::Restaurant(_) => ServiceKind::Yelp,
            Category::Doctor(_) => ServiceKind::Healthgrades,
            Category::ServiceProvider(_) => ServiceKind::AngiesList,
            Category::App => ServiceKind::GooglePlay,
            Category::Video => ServiceKind::YouTube,
        }
    }

    /// All *physical-world* categories — the ones an RSP's client can
    /// observe interactions with (restaurants, doctors, trades).
    pub fn all_physical() -> Vec<Category> {
        let mut v = Vec::new();
        v.extend(Cuisine::ALL.iter().copied().map(Category::Restaurant));
        v.extend(Specialty::ALL.iter().copied().map(Category::Doctor));
        v.extend(Trade::ALL.iter().copied().map(Category::ServiceProvider));
        v
    }

    /// True for categories a user physically visits (restaurants, dentists
    /// and other doctors) as opposed to calling to their home (trades).
    pub const fn is_visited_in_person(self) -> bool {
        matches!(self, Category::Restaurant(_) | Category::Doctor(_))
    }

    /// True for categories where the dominant observable is a phone call
    /// (home service trades: the provider comes to you).
    pub const fn is_phone_first(self) -> bool {
        matches!(self, Category::ServiceProvider(_))
    }

    /// Typical revisit cadence for a loyal user of this category; drives
    /// both the world simulator and the fraud detector's priors.
    ///
    /// Restaurants are visited weekly-ish; dentists twice a year; trades a
    /// few times a year; apps/videos are online-only.
    pub fn typical_gap_days(self) -> f64 {
        match self {
            Category::Restaurant(_) => 10.0,
            Category::Doctor(Specialty::Dentist) => 180.0,
            Category::Doctor(Specialty::FamilyMedicine) => 120.0,
            Category::Doctor(Specialty::Pediatrics) => 90.0,
            Category::Doctor(Specialty::PlasticSurgery) => 240.0,
            Category::ServiceProvider(_) => 75.0,
            Category::App => 2.0,
            Category::Video => 30.0,
        }
    }

    /// Typical dwell time for one interaction with this category.
    pub fn typical_visit_minutes(self) -> f64 {
        match self {
            Category::Restaurant(_) => 55.0,
            Category::Doctor(_) => 45.0,
            Category::ServiceProvider(_) => 8.0, // phone call
            Category::App => 15.0,
            Category::Video => 12.0,
        }
    }

    /// Stable small integer for hashing/indexing across all categories.
    pub fn stable_index(self) -> usize {
        match self {
            Category::Restaurant(c) => c.index(),
            Category::Doctor(s) => 100 + s.index(),
            Category::ServiceProvider(t) => 200 + t.index(),
            Category::App => 300,
            Category::Video => 301,
        }
    }

    /// Inverse of [`Self::stable_index`]: decode a category from its
    /// stable index (e.g. off a wire message). `None` for indices that
    /// no category maps to.
    pub fn from_stable_index(index: usize) -> Option<Category> {
        match index {
            300 => Some(Category::App),
            301 => Some(Category::Video),
            i if i >= 200 => Trade::ALL.get(i - 200).map(|t| Category::ServiceProvider(*t)),
            i if i >= 100 => Specialty::ALL.get(i - 100).map(|s| Category::Doctor(*s)),
            i => Cuisine::ALL.get(i).map(|c| Category::Restaurant(*c)),
        }
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Category::Restaurant(c) => write!(f, "{c} restaurant"),
            Category::Doctor(s) => write!(f, "{s}"),
            Category::ServiceProvider(t) => write!(f, "{t}"),
            Category::App => write!(f, "App"),
            Category::Video => write!(f, "Video"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn taxonomy_counts_match_table_1() {
        assert_eq!(Cuisine::ALL.len(), 9);
        assert_eq!(Specialty::ALL.len(), 4);
        assert_eq!(Trade::ALL.len(), 24);
        assert_eq!(ServiceKind::Yelp.category_count(), 9);
        assert_eq!(ServiceKind::AngiesList.category_count(), 24);
        assert_eq!(ServiceKind::Healthgrades.category_count(), 4);
    }

    #[test]
    fn stable_index_round_trips() {
        let mut all = Category::all_physical();
        all.push(Category::App);
        all.push(Category::Video);
        for cat in all {
            assert_eq!(Category::from_stable_index(cat.stable_index()), Some(cat));
        }
        assert_eq!(Category::from_stable_index(99), None);
        assert_eq!(Category::from_stable_index(302), None);
        assert_eq!(Category::from_stable_index(usize::MAX), None);
    }

    #[test]
    fn all_physical_is_union_of_taxonomies() {
        let all = Category::all_physical();
        assert_eq!(all.len(), 9 + 4 + 24);
        let set: HashSet<_> = all.iter().collect();
        assert_eq!(set.len(), all.len(), "no duplicates");
    }

    #[test]
    fn categories_round_trip_to_services() {
        for svc in ServiceKind::REVIEW_SERVICES {
            for cat in svc.categories() {
                assert_eq!(cat.service(), svc);
            }
        }
    }

    #[test]
    fn stable_indexes_are_unique() {
        let mut seen = HashSet::new();
        for cat in Category::all_physical() {
            assert!(seen.insert(cat.stable_index()), "dup index for {cat}");
        }
        assert!(seen.insert(Category::App.stable_index()));
        assert!(seen.insert(Category::Video.stable_index()));
    }

    #[test]
    fn interaction_mode_flags_are_exclusive_for_physical() {
        for cat in Category::all_physical() {
            assert!(
                cat.is_visited_in_person() ^ cat.is_phone_first(),
                "{cat} must be exactly one of visit/phone"
            );
        }
    }

    #[test]
    fn gaps_reflect_domain_cadence() {
        // Dentists are the paper's canonical "rarely used" provider: gaps
        // must be far longer than restaurants.
        assert!(
            Category::Doctor(Specialty::Dentist).typical_gap_days()
                > 10.0 * Category::Restaurant(Cuisine::Chinese).typical_gap_days()
        );
    }

    #[test]
    fn display_is_human_readable() {
        assert_eq!(Category::Restaurant(Cuisine::Chinese).to_string(), "Chinese restaurant");
        assert_eq!(Category::Doctor(Specialty::Dentist).to_string(), "Dentist");
        assert_eq!(ServiceKind::AngiesList.to_string(), "Angie's List");
    }

    #[test]
    fn index_matches_position() {
        for (i, c) in Cuisine::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        for (i, t) in Trade::ALL.iter().enumerate() {
            assert_eq!(t.index(), i);
        }
    }
}

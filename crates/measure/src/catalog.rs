//! Synthetic service catalogs.
//!
//! One catalog per review service, mirroring the paper's methodology:
//! queries are (zipcode × category) over "the most populous zipcode in
//! each of the 50 states", and each query returns the entities listed in
//! that cell. Cell sizes are log-normal around the per-service mean
//! implied by Table 1's totals, so per-query result counts vary the way
//! the paper's spot checks do (127 Chinese restaurants in one cell, 248
//! dentists in another).

use crate::reviews::ReviewDistribution;
use orsp_types::rng::rng_for;
use orsp_types::{Category, EntityId, ServiceKind};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Number of query zipcodes ("the most populous zipcode in each of the 50
/// states", §2).
pub const QUERY_ZIPCODES: usize = 50;

/// One listed entity in a catalog.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CatalogEntity {
    /// Id, unique within the catalog.
    pub id: EntityId,
    /// Category.
    pub category: Category,
    /// Zipcode cell the entity is listed under.
    pub zipcode: u32,
    /// Number of reviews the entity has accumulated.
    pub review_count: u32,
}

/// A synthetic catalog for one service.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceCatalog {
    /// Which service this models.
    pub service: ServiceKind,
    /// All entities.
    pub entities: Vec<CatalogEntity>,
    /// The 50 query zipcodes.
    pub zipcodes: Vec<u32>,
}

/// Mean entities per (zipcode, category) cell implied by Table 1.
fn mean_cell_size(service: ServiceKind) -> f64 {
    let (total, categories) = match service {
        ServiceKind::Yelp => (24_417.0, 9.0),
        ServiceKind::AngiesList => (26_066.0, 24.0),
        ServiceKind::Healthgrades => (24_922.0, 4.0),
        _ => (1_000.0, 1.0),
    };
    total / (QUERY_ZIPCODES as f64 * categories)
}

/// Log-space spread of cell sizes (drives the 127-vs-54 style variance the
/// paper's examples show).
const CELL_SIGMA: f64 = 0.55;

impl ServiceCatalog {
    /// Generate the catalog for a service. Deterministic per seed.
    pub fn generate(service: ServiceKind, seed: u64) -> ServiceCatalog {
        let mut rng = rng_for(seed, &format!("catalog.{service}"));
        let review_dist = ReviewDistribution::for_service(service);
        let zipcodes: Vec<u32> = (0..QUERY_ZIPCODES as u32).map(|i| 10_000 + i * 997).collect();
        let mean = mean_cell_size(service);
        // Log-normal with the configured *mean* (not median):
        // mean = exp(mu + sigma^2/2) ⇒ mu = ln(mean) - sigma^2/2.
        let mu = mean.ln() - CELL_SIGMA * CELL_SIGMA / 2.0;

        let mut entities = Vec::new();
        for &zipcode in &zipcodes {
            for category in service.categories() {
                let z = {
                    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                    let u2: f64 = rng.gen();
                    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
                };
                let cell = (mu + CELL_SIGMA * z).exp().round().max(1.0) as usize;
                for _ in 0..cell {
                    entities.push(CatalogEntity {
                        id: EntityId::new(entities.len() as u64),
                        category,
                        zipcode,
                        review_count: review_dist.sample(&mut rng),
                    });
                }
            }
        }
        ServiceCatalog { service, entities, zipcodes }
    }

    /// Entities matching one (zipcode, category) query.
    pub fn query(&self, zipcode: u32, category: Category) -> Vec<&CatalogEntity> {
        self.entities
            .iter()
            .filter(|e| e.zipcode == zipcode && e.category == category)
            .collect()
    }

    /// Total entities (Table 1's rightmost column).
    pub fn total_entities(&self) -> usize {
        self.entities.len()
    }

    /// Number of categories queried (Table 1's middle column).
    pub fn category_count(&self) -> usize {
        self.service.category_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = ServiceCatalog::generate(ServiceKind::Yelp, 7);
        let b = ServiceCatalog::generate(ServiceKind::Yelp, 7);
        assert_eq!(a.entities.len(), b.entities.len());
        assert_eq!(a.entities.first(), b.entities.first());
    }

    #[test]
    fn totals_approximate_table_1() {
        for (service, target) in [
            (ServiceKind::Yelp, 24_417.0),
            (ServiceKind::AngiesList, 26_066.0),
            (ServiceKind::Healthgrades, 24_922.0),
        ] {
            let catalog = ServiceCatalog::generate(service, 11);
            let total = catalog.total_entities() as f64;
            assert!(
                (total - target).abs() / target < 0.15,
                "{service}: {total} vs target {target}"
            );
        }
    }

    #[test]
    fn category_counts_match_table_1() {
        assert_eq!(ServiceCatalog::generate(ServiceKind::Yelp, 1).category_count(), 9);
        assert_eq!(ServiceCatalog::generate(ServiceKind::AngiesList, 1).category_count(), 24);
        assert_eq!(ServiceCatalog::generate(ServiceKind::Healthgrades, 1).category_count(), 4);
    }

    #[test]
    fn query_returns_matching_cell() {
        let catalog = ServiceCatalog::generate(ServiceKind::Healthgrades, 3);
        let zip = catalog.zipcodes[0];
        let cat = ServiceKind::Healthgrades.categories()[0];
        let hits = catalog.query(zip, cat);
        assert!(!hits.is_empty());
        assert!(hits.iter().all(|e| e.zipcode == zip && e.category == cat));
    }

    #[test]
    fn cell_sizes_vary_widely() {
        // The paper's examples: one Yelp cell with 127 results, a
        // Healthgrades cell with 248. Our cells must spread similarly.
        let catalog = ServiceCatalog::generate(ServiceKind::Yelp, 5);
        let sizes: Vec<usize> = catalog
            .zipcodes
            .iter()
            .flat_map(|&z| {
                ServiceKind::Yelp
                    .categories()
                    .into_iter()
                    .map(move |c| (z, c))
            })
            .map(|(z, c)| catalog.query(z, c).len())
            .collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max >= 3 * min.max(1), "spread {min}..{max}");
        assert!(max > 100, "some large cells exist: max {max}");
    }

    #[test]
    fn fifty_zipcodes() {
        let catalog = ServiceCatalog::generate(ServiceKind::AngiesList, 2);
        assert_eq!(catalog.zipcodes.len(), 50);
        let distinct: std::collections::HashSet<u32> =
            catalog.zipcodes.iter().copied().collect();
        assert_eq!(distinct.len(), 50);
    }
}

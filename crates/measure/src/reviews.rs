//! Review-count distributions, calibrated per service.
//!
//! Review counts on real services are famously heavy-tailed; a discretized
//! log-normal reproduces both the medians and the upper-tail fractions the
//! paper reports. Parameters were fitted so that:
//!
//! * the median review count matches Fig 1(a) (Yelp 25, Angie's 8,
//!   Healthgrades 5), and
//! * the fraction of entities with ≥50 reviews implies Fig 1(b)'s median
//!   per-query counts given each service's typical result-set size
//!   (Yelp ~22%, Angie's ~9%, Healthgrades ~1%).

use orsp_types::ServiceKind;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A discretized log-normal review-count generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReviewDistribution {
    /// Median review count (the log-normal's `exp(mu)`).
    pub median: f64,
    /// Log-space standard deviation.
    pub sigma: f64,
}

impl ReviewDistribution {
    /// The calibrated distribution for a review service.
    pub fn for_service(service: ServiceKind) -> ReviewDistribution {
        match service {
            // P(X >= 50) = 1 - Phi(ln(50/median)/sigma):
            ServiceKind::Yelp => ReviewDistribution { median: 25.0, sigma: 0.90 }, // ~22%
            ServiceKind::AngiesList => ReviewDistribution { median: 8.0, sigma: 1.37 }, // ~9%
            ServiceKind::Healthgrades => ReviewDistribution { median: 5.0, sigma: 0.96 }, // ~0.8%
            ServiceKind::GooglePlay | ServiceKind::YouTube => {
                // Not used for Fig 1(a); see `engagement`.
                ReviewDistribution { median: 30.0, sigma: 1.5 }
            }
        }
    }

    /// Sample one review count.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        let z = gaussian(rng);
        let value = (self.median.ln() + self.sigma * z).exp();
        value.floor().min(u32::MAX as f64) as u32
    }

    /// Theoretical fraction of entities at or above a threshold.
    pub fn fraction_at_least(&self, threshold: f64) -> f64 {
        if threshold <= 0.0 {
            return 1.0;
        }
        let z = (threshold / self.median).ln() / self.sigma;
        1.0 - phi(z)
    }
}

/// Standard normal draw (Box–Muller).
fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Standard normal CDF (Abramowitz–Stegun 7.1.26 via erf approximation).
fn phi(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    // Abramowitz & Stegun 7.1.26, max error 1.5e-7.
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_median(dist: ReviewDistribution, n: usize, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counts: Vec<u32> = (0..n).map(|_| dist.sample(&mut rng)).collect();
        counts.sort_unstable();
        counts[n / 2] as f64
    }

    #[test]
    fn medians_match_calibration_targets() {
        // Paper (Fig 1a): "The median number of reviews is 8, 5, and 25 on
        // Angie's List, Healthgrades, and Yelp."
        let yelp = sample_median(ReviewDistribution::for_service(ServiceKind::Yelp), 20_000, 1);
        let angies =
            sample_median(ReviewDistribution::for_service(ServiceKind::AngiesList), 20_000, 2);
        let hg =
            sample_median(ReviewDistribution::for_service(ServiceKind::Healthgrades), 20_000, 3);
        assert!((20.0..=30.0).contains(&yelp), "yelp median {yelp}");
        assert!((6.0..=10.0).contains(&angies), "angie's median {angies}");
        assert!((3.0..=7.0).contains(&hg), "healthgrades median {hg}");
    }

    #[test]
    fn tail_fractions_are_ordered() {
        let f = |s| ReviewDistribution::for_service(s).fraction_at_least(50.0);
        let yelp = f(ServiceKind::Yelp);
        let angies = f(ServiceKind::AngiesList);
        let hg = f(ServiceKind::Healthgrades);
        assert!(yelp > angies && angies > hg, "{yelp} {angies} {hg}");
        assert!((0.15..0.30).contains(&yelp), "yelp tail {yelp}");
        assert!((0.05..0.15).contains(&angies), "angie's tail {angies}");
        assert!(hg < 0.02, "healthgrades tail {hg}");
    }

    #[test]
    fn theoretical_and_empirical_tails_agree() {
        let dist = ReviewDistribution::for_service(ServiceKind::Yelp);
        let mut rng = StdRng::seed_from_u64(9);
        let n = 50_000;
        let empirical =
            (0..n).filter(|_| dist.sample(&mut rng) >= 50).count() as f64 / n as f64;
        let theory = dist.fraction_at_least(50.0);
        assert!(
            (empirical - theory).abs() < 0.02,
            "empirical {empirical} vs theory {theory}"
        );
    }

    #[test]
    fn erf_spot_values() {
        assert!((erf(0.0)).abs() < 1e-7);
        assert!((erf(1.0) - 0.8427).abs() < 1e-3);
        assert!((erf(-1.0) + 0.8427).abs() < 1e-3);
        assert!((phi(0.0) - 0.5).abs() < 1e-7);
        assert!((phi(1.96) - 0.975).abs() < 1e-3);
    }

    #[test]
    fn fraction_at_nonpositive_threshold_is_one() {
        let dist = ReviewDistribution::for_service(ServiceKind::Yelp);
        assert_eq!(dist.fraction_at_least(0.0), 1.0);
        assert_eq!(dist.fraction_at_least(-5.0), 1.0);
    }
}

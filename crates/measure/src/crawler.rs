//! The crawler: replays the paper's measurement methodology against the
//! synthetic catalogs and computes Figure 1(a,b) and Table 1 from what it
//! observes — never from the generator parameters.

use crate::catalog::ServiceCatalog;
use orsp_aggregate::EmpiricalCdf;
use orsp_types::ServiceKind;
use serde::Serialize;

/// The review threshold Fig 1(b) uses ("number of matching entities with
/// 50 or more reviews").
pub const REVIEW_THRESHOLD: u32 = 50;

/// Everything one crawl of one service produces.
#[derive(Debug, Clone, Serialize)]
pub struct CrawlReport {
    /// Which service was crawled.
    pub service: ServiceKind,
    /// Table 1 row: number of categories queried.
    pub categories: usize,
    /// Table 1 row: total entities discovered.
    pub entities: usize,
    /// Number of queries issued (zipcodes × categories).
    pub queries: usize,
    /// Fig 1(a): review count per discovered entity.
    pub reviews_per_entity: Vec<f64>,
    /// Fig 1(b): per query, how many results have ≥ 50 reviews.
    pub rich_results_per_query: Vec<f64>,
    /// Per query, total result count (for the "small fraction" claim).
    pub results_per_query: Vec<f64>,
}

impl CrawlReport {
    /// CDF over entities of review counts (Fig 1a's curve).
    pub fn reviews_cdf(&self) -> EmpiricalCdf {
        EmpiricalCdf::new(self.reviews_per_entity.clone())
    }

    /// CDF over queries of ≥50-review result counts (Fig 1b's curve).
    pub fn rich_results_cdf(&self) -> EmpiricalCdf {
        EmpiricalCdf::new(self.rich_results_per_query.clone())
    }

    /// Median reviews per entity.
    pub fn median_reviews(&self) -> f64 {
        self.reviews_cdf().median().unwrap_or(f64::NAN)
    }

    /// Median ≥50-review results per query.
    pub fn median_rich_results(&self) -> f64 {
        self.rich_results_cdf().median().unwrap_or(f64::NAN)
    }

    /// Fraction of the median query's results that have ≥50 reviews.
    pub fn median_rich_fraction(&self) -> f64 {
        let rich = self.median_rich_results();
        let total = EmpiricalCdf::new(self.results_per_query.clone())
            .median()
            .unwrap_or(f64::NAN);
        rich / total
    }
}

/// The crawler.
pub struct Crawler;

impl Crawler {
    /// Crawl one catalog: issue every (zipcode, category) query, dedup
    /// discovered entities, record the statistics.
    pub fn crawl(catalog: &ServiceCatalog) -> CrawlReport {
        let mut seen = std::collections::HashSet::new();
        let mut reviews_per_entity = Vec::new();
        let mut rich_results_per_query = Vec::new();
        let mut results_per_query = Vec::new();
        let categories = catalog.service.categories();

        for &zip in &catalog.zipcodes {
            for &category in &categories {
                let results = catalog.query(zip, category);
                results_per_query.push(results.len() as f64);
                rich_results_per_query.push(
                    results.iter().filter(|e| e.review_count >= REVIEW_THRESHOLD).count()
                        as f64,
                );
                for entity in results {
                    if seen.insert(entity.id) {
                        reviews_per_entity.push(entity.review_count as f64);
                    }
                }
            }
        }

        CrawlReport {
            service: catalog.service,
            categories: categories.len(),
            entities: seen.len(),
            queries: catalog.zipcodes.len() * categories.len(),
            reviews_per_entity,
            rich_results_per_query,
            results_per_query,
        }
    }

    /// Crawl all three review services (the full Table 1 / Fig 1a / Fig 1b
    /// study).
    pub fn crawl_all(seed: u64) -> Vec<CrawlReport> {
        ServiceKind::REVIEW_SERVICES
            .iter()
            .map(|&svc| Crawler::crawl(&ServiceCatalog::generate(svc, seed)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::ServiceCatalog;

    #[test]
    fn crawl_discovers_every_entity_once() {
        let catalog = ServiceCatalog::generate(ServiceKind::Yelp, 13);
        let report = Crawler::crawl(&catalog);
        assert_eq!(report.entities, catalog.total_entities());
        assert_eq!(report.reviews_per_entity.len(), report.entities);
        assert_eq!(report.queries, 50 * 9);
        assert_eq!(report.rich_results_per_query.len(), report.queries);
    }

    #[test]
    fn fig1a_medians_match_paper_shape() {
        // Paper: medians 25 (Yelp), 8 (Angie's), 5 (Healthgrades).
        let reports = Crawler::crawl_all(17);
        let median = |svc: ServiceKind| {
            reports.iter().find(|r| r.service == svc).unwrap().median_reviews()
        };
        let yelp = median(ServiceKind::Yelp);
        let angies = median(ServiceKind::AngiesList);
        let hg = median(ServiceKind::Healthgrades);
        assert!((18.0..=32.0).contains(&yelp), "yelp {yelp}");
        assert!((5.0..=11.0).contains(&angies), "angies {angies}");
        assert!((3.0..=7.0).contains(&hg), "hg {hg}");
        assert!(yelp > angies && angies > hg);
    }

    #[test]
    fn fig1b_medians_match_paper_shape() {
        // Paper: "the number of results with at least 50 reviews is 12 on
        // Yelp, 2 on Angie's List, and 1 on Healthgrades" for the median
        // query.
        let reports = Crawler::crawl_all(19);
        let median = |svc: ServiceKind| {
            reports.iter().find(|r| r.service == svc).unwrap().median_rich_results()
        };
        let yelp = median(ServiceKind::Yelp);
        let angies = median(ServiceKind::AngiesList);
        let hg = median(ServiceKind::Healthgrades);
        assert!((6.0..=20.0).contains(&yelp), "yelp {yelp}");
        assert!((1.0..=4.0).contains(&angies), "angies {angies}");
        assert!(hg <= 2.0, "hg {hg}");
        assert!(yelp > angies && angies >= hg);
    }

    #[test]
    fn rich_results_are_a_small_fraction() {
        // "all of which constitute a small fraction of the total number of
        // results that match the median query".
        let reports = Crawler::crawl_all(23);
        for report in &reports {
            let frac = report.median_rich_fraction();
            assert!(frac < 0.30, "{}: rich fraction {frac}", report.service);
        }
    }

    #[test]
    fn cdfs_are_well_formed() {
        let report = Crawler::crawl(&ServiceCatalog::generate(ServiceKind::Healthgrades, 29));
        let cdf = report.reviews_cdf();
        assert_eq!(cdf.len(), report.entities);
        assert!(cdf.fraction_at_or_below(f64::MAX) == 1.0);
        let series = cdf.log_series(1.0, 1024.0);
        assert_eq!(series.len(), 11);
    }
}

//! The Fig 1(c) study: explicit vs. implicit interaction on Google Play
//! and YouTube.
//!
//! §2: *"We randomly selected 1000 apps on Google Play and 1000 videos on
//! YouTube. For every selected entity, we crawled the number of users who
//! have explicitly contributed feedback ... and the number who have
//! interacted with the entity. ... the discrepancy ... is more than an
//! order of magnitude."*
//!
//! The generator builds the discrepancy from first principles rather than
//! hard-coding it: popularity is Pareto-distributed (a few blockbusters,
//! a long tail), and each user who interacts leaves explicit feedback
//! with a small per-platform probability (participation inequality — the
//! same 1/9/90 behaviour the world simulator gives its personas).

use orsp_aggregate::EmpiricalCdf;
use orsp_types::rng::rng_for;
use orsp_types::ServiceKind;
use rand::Rng;
use serde::Serialize;

/// Sample size per platform, matching the paper.
pub const SAMPLE_SIZE: usize = 1_000;

/// One sampled app or video.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct PlatformEntity {
    /// Users who interacted (installed the app / viewed the video).
    pub implicit: u64,
    /// Users who left explicit feedback (review, comment, rating, like).
    pub explicit: u64,
}

impl PlatformEntity {
    /// The implicit : explicit ratio (∞-safe).
    pub fn discrepancy(&self) -> f64 {
        self.implicit as f64 / (self.explicit.max(1)) as f64
    }
}

/// The generated study for one platform.
#[derive(Debug, Clone, Serialize)]
pub struct EngagementStudy {
    /// Which platform.
    pub platform: ServiceKind,
    /// The sampled entities.
    pub entities: Vec<PlatformEntity>,
}

impl EngagementStudy {
    /// Generate the study. Deterministic per seed.
    pub fn generate(platform: ServiceKind, seed: u64) -> EngagementStudy {
        assert!(
            ServiceKind::INTERACTION_PLATFORMS.contains(&platform),
            "engagement study is for Play/YouTube"
        );
        let mut rng = rng_for(seed, &format!("engagement.{platform}"));
        // Popularity: Pareto with shape ~1.1 over a platform-specific
        // floor. YouTube videos have more views than apps have installs.
        let (floor, shape) = match platform {
            ServiceKind::GooglePlay => (1_000.0, 1.1),
            _ => (5_000.0, 1.05),
        };
        // Feedback propensity: a small per-user probability, itself
        // varying per entity (some content begs for comments).
        let entities = (0..SAMPLE_SIZE)
            .map(|_| {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                let implicit = (floor * u.powf(-1.0 / shape)).min(5e8) as u64;
                let propensity = rng.gen_range(0.002..0.04);
                let explicit = ((implicit as f64) * propensity).round() as u64;
                PlatformEntity { implicit, explicit }
            })
            .collect();
        EngagementStudy { platform, entities }
    }

    /// CDF of implicit interaction counts.
    pub fn implicit_cdf(&self) -> EmpiricalCdf {
        EmpiricalCdf::new(self.entities.iter().map(|e| e.implicit as f64).collect())
    }

    /// CDF of explicit feedback counts.
    pub fn explicit_cdf(&self) -> EmpiricalCdf {
        EmpiricalCdf::new(self.entities.iter().map(|e| e.explicit as f64).collect())
    }

    /// Median per-entity discrepancy ratio.
    pub fn median_discrepancy(&self) -> f64 {
        EmpiricalCdf::new(self.entities.iter().map(|e| e.discrepancy()).collect())
            .median()
            .unwrap_or(f64::NAN)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn study_has_paper_sample_size() {
        let s = EngagementStudy::generate(ServiceKind::GooglePlay, 1);
        assert_eq!(s.entities.len(), SAMPLE_SIZE);
    }

    #[test]
    fn discrepancy_exceeds_an_order_of_magnitude() {
        // The Fig 1(c) takeaway, for both platforms.
        for platform in ServiceKind::INTERACTION_PLATFORMS {
            let s = EngagementStudy::generate(platform, 3);
            let d = s.median_discrepancy();
            assert!(d >= 10.0, "{platform}: median discrepancy {d}");
            // Medians of the two CDFs are also an order of magnitude
            // apart (the visual form of the figure).
            let mi = s.implicit_cdf().median().unwrap();
            let me = s.explicit_cdf().median().unwrap();
            assert!(mi >= 10.0 * me.max(1.0), "{platform}: {mi} vs {me}");
        }
    }

    #[test]
    fn popularity_is_heavy_tailed() {
        let s = EngagementStudy::generate(ServiceKind::YouTube, 5);
        let cdf = s.implicit_cdf();
        let median = cdf.median().unwrap();
        let p99 = cdf.quantile(0.99).unwrap();
        assert!(p99 > 20.0 * median, "blockbusters exist: p99 {p99} vs median {median}");
    }

    #[test]
    fn explicit_never_exceeds_implicit() {
        for platform in ServiceKind::INTERACTION_PLATFORMS {
            let s = EngagementStudy::generate(platform, 7);
            for e in &s.entities {
                assert!(e.explicit <= e.implicit);
            }
        }
    }

    #[test]
    #[should_panic(expected = "engagement study is for Play/YouTube")]
    fn review_services_are_rejected() {
        EngagementStudy::generate(ServiceKind::Yelp, 1);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = EngagementStudy::generate(ServiceKind::GooglePlay, 9);
        let b = EngagementStudy::generate(ServiceKind::GooglePlay, 9);
        assert_eq!(a.entities, b.entities);
    }
}

//! # orsp-measure
//!
//! The measurement-study substrate. The paper's §2 evidence comes from
//! live crawls of Yelp, Angie's List, Healthgrades, Google Play, and
//! YouTube; those sites cannot be crawled here, so this crate builds
//! *synthetic catalogs whose generators are calibrated to the statistics
//! the paper reports*, plus the crawler that recomputes those statistics
//! from the generated data. The harnesses never print paper constants —
//! they crawl and measure, exactly as the authors did.
//!
//! Calibration targets (from the paper):
//!
//! | Statistic | Yelp | Angie's List | Healthgrades |
//! |---|---|---|---|
//! | Total entities (Table 1) | 24,417 | 26,066 | 24,922 |
//! | Categories queried | 9 | 24 | 4 |
//! | Median reviews per entity (Fig 1a) | 25 | 8 | 5 |
//! | Median per-query results with ≥50 reviews (Fig 1b) | 12 | 2 | 1 |
//!
//! And for Fig 1(c): explicit feedback on Google Play / YouTube runs *at
//! least an order of magnitude* below implicit interaction counts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod crawler;
pub mod engagement;
pub mod reviews;

pub use catalog::{CatalogEntity, ServiceCatalog};
pub use crawler::{CrawlReport, Crawler};
pub use engagement::{EngagementStudy, PlatformEntity};
pub use reviews::ReviewDistribution;

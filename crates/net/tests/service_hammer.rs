//! Concurrency hammer for the domain-partitioned service core.
//!
//! The router (PR 5) splits service state into a mint domain, a read
//! domain, and a sharded ingest domain. These tests drive all three at
//! once and assert the properties the decomposition promises:
//!
//! * exact counters under contention — no lost or double-counted
//!   uploads when many threads hit distinct shards simultaneously;
//! * reads never wait for ingest — search, stats, and token issuance
//!   all complete while an upload's (artificially slow) fsync is in
//!   flight, and an upload to a *different* shard overtakes it;
//! * no `Busy` shedding below saturation over real TCP when the
//!   concurrent connection count matches the worker count;
//! * monotonic registry snapshots — counters observed mid-hammer never
//!   go backwards;
//! * shard routing identical to the seed formula (proptest).

use orsp_crypto::{BlindedMessage, BlindSignature, TokenIssuer, TokenMint, TokenWallet};
use orsp_net::{
    ClientConfig, NetClient, NetServer, Request, Response, RspService, ServerConfig,
    ServiceConfig,
};
use orsp_search::{Listing, Ranker, SearchIndex, SearchQuery};
use orsp_server::{shard_index, wal::WalEntry, GroupCommitConfig, WalBatchItem, WalSink};
use orsp_types::rng::rng_for;
use orsp_types::{
    Category, Cuisine, DeviceId, EntityId, GeoPoint, Interaction, InteractionKind, RecordId,
    SimDuration, Timestamp,
};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

const ZIP: u32 = 94107;
const SHARDS: usize = 8;

fn hammer_service(tokens_per_window: u32) -> RspService {
    let mut rng = rng_for(51, "service-hammer");
    let mint = TokenMint::new(&mut rng, 256, tokens_per_window, SimDuration::DAY);
    let listings = vec![
        Listing {
            id: EntityId::new(1),
            name: "Shard House".into(),
            category: Category::Restaurant(Cuisine::Mexican),
            location: GeoPoint::new(10.0, 10.0),
            zipcode: ZIP,
        },
        Listing {
            id: EntityId::new(2),
            name: "Lock Free Grill".into(),
            category: Category::Restaurant(Cuisine::Mexican),
            location: GeoPoint::new(20.0, 20.0),
            zipcode: ZIP,
        },
    ];
    RspService::new(
        mint,
        SearchIndex::build(listings),
        HashMap::new(),
        Ranker::default(),
        ServiceConfig { ingest_shards: SHARDS, ..ServiceConfig::default() },
    )
}

/// Issue tokens by calling the service directly (no transport): the
/// hammer pre-mints its budget so the concurrent phase measures ingest,
/// not RSA.
struct ServiceIssuer<'a>(&'a RspService);

impl TokenIssuer for ServiceIssuer<'_> {
    fn issue(
        &mut self,
        device: DeviceId,
        blinded: &BlindedMessage,
        now: Timestamp,
    ) -> orsp_types::Result<BlindSignature> {
        match self.0.handle(Request::IssueToken { device, blinded: blinded.clone(), now }) {
            Response::TokenIssued { signature } => Ok(signature),
            Response::TokenDenied { reason } => {
                Err(orsp_types::OrspError::InvalidToken(reason))
            }
            other => {
                Err(orsp_types::OrspError::Crypto(format!("unexpected response: {other:?}")))
            }
        }
    }
}

fn mint_tokens(service: &RspService, device: DeviceId, n: usize) -> Vec<orsp_crypto::Token> {
    let mut rng = rng_for(52 + device.raw(), "service-hammer-wallet");
    let mut wallet = TokenWallet::new(device, service.mint_public_key());
    let mut issuer = ServiceIssuer(service);
    (0..n)
        .map(|_| {
            wallet.request_token(&mut rng, &mut issuer, Timestamp::EPOCH).expect("mint");
            wallet.take_token().expect("token")
        })
        .collect()
}

/// Record ids that the service routes to `shard`, found by asking the
/// service itself (`shard_of`) rather than restating the hash — the
/// proptest below pins the formula; the hammer only needs targeting.
fn records_for_shard(service: &RspService, shard: usize, n: usize) -> Vec<RecordId> {
    let mut out = Vec::with_capacity(n);
    let mut counter: u64 = 0;
    while out.len() < n {
        let mut bytes = [0u8; 32];
        bytes[..8].copy_from_slice(&counter.to_le_bytes());
        bytes[8] = shard as u8; // disambiguate across shards at equal counters
        let rid = RecordId::from_bytes(bytes);
        if service.shard_of(&rid) == shard {
            out.push(rid);
        }
        counter += 1;
    }
    out
}

fn upload_for(rid: RecordId, entity: EntityId, token: orsp_crypto::Token) -> Request {
    Request::Upload {
        upload: orsp_client::UploadRequest {
            record_id: rid,
            entity,
            interaction: Interaction::solo(
                InteractionKind::Visit,
                Timestamp::EPOCH,
                SimDuration::minutes(30),
                500.0,
            ),
            token,
            release_at: Timestamp::EPOCH,
        },
        now: Timestamp::EPOCH,
    }
}

fn snapshot_counter(service: &RspService, name: &str) -> u64 {
    match service.handle(Request::Stats) {
        Response::Stats { snapshot } => snapshot.counter(name).unwrap_or(0),
        other => panic!("stats rpc: {other:?}"),
    }
}

/// Four uploader threads on four distinct shards, two reader threads
/// spinning search + stats: after the dust settles every counter is
/// exact, and no reader ever saw one go backwards.
#[test]
fn concurrent_uploads_keep_exact_counters_and_snapshots_monotonic() {
    const UPLOADERS: usize = 4;
    const PER_THREAD: usize = 32;
    let service = hammer_service(PER_THREAD as u32);

    // Pre-mint (sequential, per-device rate accounting) and pre-route
    // (each uploader owns one shard) so the concurrent phase is pure
    // ingest contention.
    let work: Vec<(Vec<RecordId>, Vec<orsp_crypto::Token>)> = (0..UPLOADERS)
        .map(|t| {
            (
                records_for_shard(&service, t, PER_THREAD),
                mint_tokens(&service, DeviceId::new(t as u64 + 1), PER_THREAD),
            )
        })
        .collect();

    let done = AtomicBool::new(false);
    std::thread::scope(|s| {
        for (t, (records, tokens)) in work.into_iter().enumerate() {
            let service = &service;
            s.spawn(move || {
                let entity = EntityId::new(1 + (t as u64 % 2));
                for (rid, token) in records.into_iter().zip(tokens) {
                    assert_eq!(
                        service.handle(upload_for(rid, entity, token)),
                        Response::UploadAccepted,
                        "uploader {t} had a rejection"
                    );
                }
            });
        }
        for _ in 0..2 {
            let service = &service;
            let done = &done;
            s.spawn(move || {
                let mut last_accepted = 0u64;
                let mut last_searches = 0u64;
                while !done.load(Ordering::Acquire) {
                    let hits = match service.handle(Request::Search {
                        query: SearchQuery {
                            zipcode: ZIP,
                            category: Category::Restaurant(Cuisine::Mexican),
                        },
                    }) {
                        Response::SearchResults { hits } => hits.len(),
                        other => panic!("search: {other:?}"),
                    };
                    assert_eq!(hits, 2, "index snapshot stays intact mid-hammer");
                    let (accepted, searches) = match service.handle(Request::Stats) {
                        Response::Stats { snapshot } => (
                            snapshot.counter("ingest_accepted_total").unwrap_or(0),
                            snapshot
                                .histogram("rpc_search_us")
                                .map(|h| h.count)
                                .unwrap_or(0),
                        ),
                        other => panic!("stats: {other:?}"),
                    };
                    assert!(accepted >= last_accepted, "accepted went backwards");
                    assert!(searches >= last_searches, "search count went backwards");
                    last_accepted = accepted;
                    last_searches = searches;
                }
            });
        }
        // The scope joins uploaders only after `done` flips, so flip it
        // from a watcher thread keyed on the exact accepted count.
        let service = &service;
        let done = &done;
        s.spawn(move || {
            let total = (UPLOADERS * PER_THREAD) as u64;
            while service.ingest_stats().accepted < total {
                std::thread::sleep(Duration::from_millis(2));
            }
            done.store(true, Ordering::Release);
        });
    });

    let total = (UPLOADERS * PER_THREAD) as u64;
    let stats = service.ingest_stats();
    assert_eq!(stats.accepted, total, "every upload counted exactly once");
    assert_eq!(stats.bad_token, 0);
    assert_eq!(stats.double_spend, 0);
    assert_eq!(stats.bad_record, 0);
    assert_eq!(stats.entity_mismatch, 0);
    assert_eq!(
        snapshot_counter(&service, "ingest_accepted_total"),
        total,
        "registry counter agrees with the atomic stats"
    );
    assert_eq!(snapshot_counter(&service, "mint_issued_total"), total);
    assert_eq!(service.tokens_issued(), total);

    // Both entities got half the uploads: well over the k-anonymity
    // floor, and gathered across shards without losing a history when
    // the aggregates are published into the read snapshot.
    service.publish_aggregates();
    let locks_after_publish = service.store_lock_acquisitions();
    for entity in [EntityId::new(1), EntityId::new(2)] {
        match service.handle(Request::FetchAggregate { entity }) {
            Response::Aggregate { aggregate: Some(agg) } => {
                assert_eq!(agg.histories, total as usize / 2, "entity {entity:?}")
            }
            other => panic!("aggregate for {entity:?}: {other:?}"),
        }
    }
    // Served reads are pure snapshot work: a burst of aggregate
    // fetches, searches, and stats moves no store-shard lock.
    for _ in 0..25 {
        service.handle(Request::FetchAggregate { entity: EntityId::new(1) });
        service.handle(Request::Search {
            query: SearchQuery {
                zipcode: ZIP,
                category: Category::Restaurant(Cuisine::Mexican),
            },
        });
        service.handle(Request::Stats);
    }
    assert_eq!(
        service.store_lock_acquisitions(),
        locks_after_publish,
        "the served read path took a store-shard lock"
    );
}

/// A WAL sink that stalls on one chosen record id, so a test can hold a
/// shard's durability handoff open and watch what still makes progress.
struct SlowSink {
    slow_record: RecordId,
    stall: Duration,
    in_flight: AtomicBool,
    logged: Mutex<Vec<RecordId>>,
}

impl WalSink for SlowSink {
    fn log_append(&self, entry: &WalEntry) -> orsp_types::Result<()> {
        if entry.record_id == self.slow_record {
            self.in_flight.store(true, Ordering::Release);
            std::thread::sleep(self.stall);
            self.in_flight.store(false, Ordering::Release);
        }
        self.logged.lock().unwrap().push(entry.record_id);
        Ok(())
    }
}

/// While one shard's fsync is (artificially) stuck, searches, stats,
/// token issuance, and an upload to a different shard all complete.
/// This is the "no RPC path holds a lock beyond its domain" claim made
/// observable: under the old global service lock every one of these
/// would queue behind the stalled upload.
#[test]
fn reads_and_other_shards_proceed_while_fsync_is_in_flight() {
    let service = hammer_service(8);
    let slow_rid = records_for_shard(&service, 0, 1)[0];
    let fast_rid = records_for_shard(&service, 1, 1)[0];
    assert_ne!(service.shard_of(&slow_rid), service.shard_of(&fast_rid));

    let sink = Arc::new(SlowSink {
        slow_record: slow_rid,
        stall: Duration::from_millis(400),
        in_flight: AtomicBool::new(false),
        logged: Mutex::new(Vec::new()),
    });
    service.set_durability(Arc::clone(&sink) as Arc<dyn WalSink>);

    let mut tokens = mint_tokens(&service, DeviceId::new(9), 2);
    let fast_token = tokens.pop().unwrap();
    let slow_token = tokens.pop().unwrap();

    std::thread::scope(|s| {
        let service = &service;
        let sink = &sink;
        s.spawn(move || {
            assert_eq!(
                service.handle(upload_for(slow_rid, EntityId::new(1), slow_token)),
                Response::UploadAccepted,
                "the stalled upload still succeeds, just slowly"
            );
        });

        // Wait for the stalled append to actually be in flight.
        while !sink.in_flight.load(Ordering::Acquire) {
            std::thread::sleep(Duration::from_millis(1));
        }

        // Everything below runs to completion while shard 0's WAL
        // handoff is held open.
        let mut completed = 0u32;
        while sink.in_flight.load(Ordering::Acquire) && completed < 3 {
            match service.handle(Request::Search {
                query: SearchQuery {
                    zipcode: ZIP,
                    category: Category::Restaurant(Cuisine::Mexican),
                },
            }) {
                Response::SearchResults { .. } => {}
                other => panic!("search during fsync: {other:?}"),
            }
            match service.handle(Request::Stats) {
                Response::Stats { .. } => {}
                other => panic!("stats during fsync: {other:?}"),
            }
            if sink.in_flight.load(Ordering::Acquire) {
                completed += 1;
            }
        }
        assert!(completed >= 1, "reads completed while the fsync was in flight");

        // Mint domain: issuance is untouched by a stalled ingest shard.
        let issued_before = service.tokens_issued();
        let _ = mint_tokens(service, DeviceId::new(10), 1);
        assert_eq!(service.tokens_issued(), issued_before + 1);

        // Ingest domain, different shard: overtakes the stalled one.
        assert!(sink.in_flight.load(Ordering::Acquire), "stall window still open");
        assert_eq!(
            service.handle(upload_for(fast_rid, EntityId::new(2), fast_token)),
            Response::UploadAccepted
        );
        assert!(
            sink.in_flight.load(Ordering::Acquire),
            "the fast shard's upload finished before the slow shard's fsync"
        );
    });

    let logged = sink.logged.lock().unwrap();
    assert_eq!(logged.len(), 2, "both uploads reached the WAL");
    assert_eq!(logged[0], fast_rid, "the unstalled shard logged first");
    assert_eq!(logged[1], slow_rid);
    assert_eq!(service.ingest_stats().accepted, 2);
}

/// A batch-aware sink that stalls while committing any group containing
/// the chosen record, recording every group it commits.
struct SlowBatchSink {
    slow_record: RecordId,
    stall: Duration,
    in_flight: AtomicBool,
    batches: Mutex<Vec<Vec<RecordId>>>,
}

impl WalSink for SlowBatchSink {
    fn log_append(&self, entry: &WalEntry) -> orsp_types::Result<()> {
        self.log_upload_batch(&[WalBatchItem { spend: None, entry: *entry }])
    }

    fn log_upload_batch(&self, items: &[WalBatchItem]) -> orsp_types::Result<()> {
        if items.iter().any(|i| i.entry.record_id == self.slow_record) {
            self.in_flight.store(true, Ordering::Release);
            std::thread::sleep(self.stall);
            self.in_flight.store(false, Ordering::Release);
        }
        self.batches
            .lock()
            .unwrap()
            .push(items.iter().map(|i| i.entry.record_id).collect());
        Ok(())
    }
}

/// Group commit under a held-open fsync: uploaders landing on the SAME
/// shard while its leader is stuck in the sink must enqueue, ride the
/// next leader's single batch once the stall clears, and ack — while an
/// upload to a different shard overtakes the whole affair.
#[test]
fn same_shard_uploaders_group_behind_a_held_open_fsync() {
    const FOLLOWERS: usize = 4;
    let service = hammer_service(16);
    let shard0 = records_for_shard(&service, 0, FOLLOWERS + 1);
    let slow_rid = shard0[0];
    let follower_rids = &shard0[1..];
    let fast_rid = records_for_shard(&service, 1, 1)[0];

    let sink = Arc::new(SlowBatchSink {
        slow_record: slow_rid,
        stall: Duration::from_millis(500),
        in_flight: AtomicBool::new(false),
        batches: Mutex::new(Vec::new()),
    });
    service.set_durability_with(
        Arc::clone(&sink) as Arc<dyn WalSink>,
        GroupCommitConfig { batch_max: 16, window_us: 0 },
    );

    let mut tokens = mint_tokens(&service, DeviceId::new(11), FOLLOWERS + 2);

    std::thread::scope(|s| {
        let (service, sink) = (&service, &sink);
        let slow_token = tokens.pop().unwrap();
        s.spawn(move || {
            assert_eq!(
                service.handle(upload_for(slow_rid, EntityId::new(1), slow_token)),
                Response::UploadAccepted,
                "the stalled leader's own upload still acks"
            );
        });
        while !sink.in_flight.load(Ordering::Acquire) {
            std::thread::sleep(Duration::from_millis(1));
        }

        // Same-shard followers arrive while the leader is stuck: they
        // enqueue and block awaiting durability.
        for rid in follower_rids.iter().copied() {
            let token = tokens.pop().unwrap();
            s.spawn(move || {
                assert_eq!(
                    service.handle(upload_for(rid, EntityId::new(1), token)),
                    Response::UploadAccepted,
                    "follower behind the stall still acks"
                );
            });
        }
        std::thread::sleep(Duration::from_millis(60));
        assert!(
            sink.in_flight.load(Ordering::Acquire),
            "stall window must outlast the followers' enqueue"
        );

        // A different shard is unaffected by shard 0's held-open fsync.
        let fast_token = tokens.pop().unwrap();
        assert_eq!(
            service.handle(upload_for(fast_rid, EntityId::new(2), fast_token)),
            Response::UploadAccepted
        );
        assert!(
            sink.in_flight.load(Ordering::Acquire),
            "the other shard's upload finished before the stalled fsync"
        );
    });

    let batches = sink.batches.lock().unwrap();
    let committed: Vec<RecordId> = batches.iter().flatten().copied().collect();
    assert_eq!(committed.len(), FOLLOWERS + 2, "every upload committed exactly once");
    assert!(
        batches.iter().any(|b| b.len() >= 2),
        "followers queued behind the stall must share a commit group, got {batches:?}"
    );
    for rid in follower_rids {
        assert!(committed.contains(rid));
    }
    assert_eq!(service.ingest_stats().accepted, (FOLLOWERS + 2) as u64);
}

/// Real TCP: six concurrent connections against six workers — four
/// hammering uploads, two scraping search + stats — must produce zero
/// `Busy` sheds and exact request/accept totals.
#[test]
fn tcp_hammer_sheds_nothing_below_saturation() {
    const UPLOADERS: usize = 4;
    const PER_THREAD: usize = 24;
    const READER_ITERS: usize = 20;
    let service = Arc::new(hammer_service(PER_THREAD as u32));

    let work: Vec<(Vec<RecordId>, Vec<orsp_crypto::Token>)> = (0..UPLOADERS)
        .map(|t| {
            (
                records_for_shard(&service, t, PER_THREAD),
                mint_tokens(&service, DeviceId::new(t as u64 + 1), PER_THREAD),
            )
        })
        .collect();

    // "Below saturation" = the offered load fits: one worker per
    // concurrent connection, and enough queue for the initial connect
    // burst (all six clients connect before the workers have drained
    // the accept queue — without headroom the burst itself would shed).
    let config = ServerConfig {
        workers: UPLOADERS + 2,
        queue_depth: UPLOADERS + 2,
        read_timeout: Duration::from_secs(5),
        write_timeout: Duration::from_secs(5),
        ..ServerConfig::default()
    };
    let server =
        NetServer::bind("127.0.0.1:0", service.clone(), config).expect("bind");
    let addr = server.local_addr();
    let client_config = ClientConfig {
        connect_timeout: Duration::from_secs(5),
        read_timeout: Duration::from_secs(5),
        write_timeout: Duration::from_secs(5),
        max_retries: 0, // a single shed would surface as a hard Busy error
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(8),
        ..ClientConfig::default()
    };

    std::thread::scope(|s| {
        for (t, (records, tokens)) in work.into_iter().enumerate() {
            let client_config = client_config.clone();
            s.spawn(move || {
                let mut client = NetClient::connect(addr, client_config).expect("connect");
                let entity = EntityId::new(1 + (t as u64 % 2));
                for (rid, token) in records.into_iter().zip(tokens) {
                    let upload = orsp_client::UploadRequest {
                        record_id: rid,
                        entity,
                        interaction: Interaction::solo(
                            InteractionKind::Visit,
                            Timestamp::EPOCH,
                            SimDuration::minutes(30),
                            500.0,
                        ),
                        token,
                        release_at: Timestamp::EPOCH,
                    };
                    let verdict =
                        client.upload(upload, Timestamp::EPOCH).expect("upload rpc");
                    assert_eq!(verdict, Ok(()), "uploader {t}");
                }
            });
        }
        for _ in 0..2 {
            let client_config = client_config.clone();
            s.spawn(move || {
                let mut client = NetClient::connect(addr, client_config).expect("connect");
                let mut last_requests = 0u64;
                let mut last_accepted = 0u64;
                for _ in 0..READER_ITERS {
                    let hits = client
                        .search(SearchQuery {
                            zipcode: ZIP,
                            category: Category::Restaurant(Cuisine::Mexican),
                        })
                        .expect("search rpc");
                    assert_eq!(hits.len(), 2);
                    let snapshot = client.stats().expect("stats rpc");
                    let requests = snapshot.counter("net_requests_total").unwrap_or(0);
                    let accepted = snapshot.counter("ingest_accepted_total").unwrap_or(0);
                    assert!(requests >= last_requests, "request counter went backwards");
                    assert!(accepted >= last_accepted, "accepted counter went backwards");
                    last_requests = requests;
                    last_accepted = accepted;
                }
            });
        }
    });

    let total_uploads = (UPLOADERS * PER_THREAD) as u64;
    assert_eq!(service.ingest_stats().accepted, total_uploads);
    let stats = server.shutdown();
    assert_eq!(stats.shed, 0, "no Busy below saturation");
    assert_eq!(stats.protocol_errors, 0);
    assert_eq!(
        stats.requests,
        total_uploads + 2 * READER_ITERS as u64 * 2,
        "uploads + (search, stats) pairs, nothing lost or duplicated"
    );
    assert_eq!(stats.accepted, (UPLOADERS + 2) as u64, "one connection per thread");
}

proptest! {
    /// Shard routing is the seed's formula, byte for byte: the first
    /// eight bytes of the key as a little-endian word, mod the shard
    /// count. A routing change would silently orphan every record in an
    /// existing data directory, so the formula is pinned here
    /// independently of the implementation.
    #[test]
    fn shard_routing_matches_the_seed_formula(
        bytes in proptest::collection::vec(any::<u8>(), 32..33),
        shards in 1usize..64,
    ) {
        let mut key = [0u8; 32];
        key.copy_from_slice(&bytes);
        let word = u64::from_le_bytes([
            key[0], key[1], key[2], key[3], key[4], key[5], key[6], key[7],
        ]);
        prop_assert_eq!(shard_index(&key, shards), (word as usize) % shards);
        // The routing ignores everything past the first eight bytes.
        let mut tail_flipped = key;
        for b in &mut tail_flipped[8..] {
            *b = !*b;
        }
        prop_assert_eq!(shard_index(&tail_flipped, shards), shard_index(&key, shards));
    }
}

/// The service routes records with the same function the seed used —
/// checked against the public `shard_index` for a spread of ids, so the
/// hammer's shard targeting above is targeting what production targets.
#[test]
fn service_shard_of_agrees_with_shard_index() {
    let service = hammer_service(1);
    let mut rng = rng_for(53, "service-hammer-routing");
    use rand::Rng;
    for _ in 0..256 {
        let mut bytes = [0u8; 32];
        rng.fill(&mut bytes);
        let rid = RecordId::from_bytes(bytes);
        assert_eq!(service.shard_of(&rid), shard_index(&bytes, SHARDS));
    }
}

//! Integration tests for the TCP path: a real listener on a loopback
//! ephemeral port, the blocking client against it, explicit `Busy`
//! shedding under saturation, protocol-error reporting, and graceful
//! drain on shutdown.

use orsp_crypto::{BlindingSession, TokenMint, TokenWallet};
use orsp_net::{
    ClientConfig, NetClient, NetError, NetServer, RemoteIssuer, Request, Response, RspService,
    ServerConfig, ServiceConfig, TcpTransport, Transport,
};
use orsp_search::{Listing, Ranker, SearchIndex, SearchQuery};
use orsp_types::rng::rng_for;
use orsp_types::{
    Category, Cuisine, DeviceId, EntityId, GeoPoint, Interaction, InteractionKind, Rating,
    RecordId, SimDuration, StarHistogram, Timestamp,
};
use rand::Rng;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

const ZIP: u32 = 94107;

fn test_service() -> Arc<RspService> {
    let mut rng = rng_for(41, "tcp-roundtrip");
    let mint = TokenMint::new(&mut rng, 256, 64, SimDuration::DAY);
    let listings = vec![
        Listing {
            id: EntityId::new(1),
            name: "Taqueria Uno".into(),
            category: Category::Restaurant(Cuisine::Mexican),
            location: GeoPoint::new(10.0, 10.0),
            zipcode: ZIP,
        },
        Listing {
            id: EntityId::new(2),
            name: "Taqueria Dos".into(),
            category: Category::Restaurant(Cuisine::Mexican),
            location: GeoPoint::new(20.0, 20.0),
            zipcode: ZIP,
        },
    ];
    let mut explicit = HashMap::new();
    let mut hist = StarHistogram::default();
    hist.add(Rating::new(5.0));
    hist.add(Rating::new(4.0));
    explicit.insert(EntityId::new(1), hist);
    Arc::new(RspService::new(
        mint,
        SearchIndex::build(listings),
        explicit,
        Ranker::default(),
        ServiceConfig::default(),
    ))
}

fn fast_client() -> ClientConfig {
    ClientConfig {
        connect_timeout: Duration::from_secs(2),
        read_timeout: Duration::from_secs(2),
        write_timeout: Duration::from_secs(2),
        max_retries: 0,
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(8),
        ..ClientConfig::default()
    }
}

#[test]
fn full_rpc_round_trip_over_tcp() {
    let service = test_service();
    let server = NetServer::bind("127.0.0.1:0", service.clone(), ServerConfig::default())
        .expect("bind");
    let addr = server.local_addr();

    let mut client = NetClient::connect(addr, fast_client()).expect("connect");
    client.ping().expect("ping");

    // Token issue + spend, all through the wire.
    let device = DeviceId::new(7);
    let mut rng = rng_for(42, "tcp-roundtrip-client");
    let transport = TcpTransport::connect(addr, fast_client()).expect("transport");
    let mut wallet = TokenWallet::new(device, service.mint_public_key());
    let mut issuer = RemoteIssuer::new(&transport);
    wallet
        .request_token(&mut rng, &mut issuer, Timestamp::EPOCH)
        .expect("token issued over TCP");
    assert_eq!(wallet.balance(), 1);

    let upload = orsp_client::UploadRequest {
        record_id: RecordId::from_bytes([3; 32]),
        entity: EntityId::new(1),
        interaction: Interaction {
            kind: InteractionKind::Visit,
            start: Timestamp::EPOCH,
            duration: SimDuration::minutes(40),
            distance_travelled_m: 1200.0,
            group_size: 2,
        },
        token: wallet.take_token().expect("token"),
        release_at: Timestamp::EPOCH,
    };
    let verdict = client.upload(upload, Timestamp::EPOCH).expect("upload rpc");
    assert_eq!(verdict, Ok(()), "valid token accepted");
    assert_eq!(service.ingest_stats().accepted, 1);

    // One upload is below the k-anonymity floor: aggregate suppressed.
    assert_eq!(client.fetch_aggregate(EntityId::new(1)).expect("agg rpc"), None);

    // Search sees both listings; the reviewed one ranks first.
    let hits = client
        .search(SearchQuery { zipcode: ZIP, category: Category::Restaurant(Cuisine::Mexican) })
        .expect("search rpc");
    assert_eq!(hits.len(), 2);
    assert_eq!(hits[0].entity, EntityId::new(1));
    assert!(hits[0].score > hits[1].score);

    let stats = server.shutdown();
    assert!(stats.requests >= 5, "served {} requests", stats.requests);
    assert_eq!(stats.protocol_errors, 0);
    assert_eq!(stats.shed, 0);
}

#[test]
fn saturated_server_sheds_with_busy_not_silence() {
    let service = test_service();
    let config = ServerConfig {
        workers: 1,
        queue_depth: 1,
        // Short read deadline so the pinned connections free the worker
        // well inside the patient client's retry budget.
        read_timeout: Duration::from_millis(700),
        write_timeout: Duration::from_millis(700),
        ..ServerConfig::default()
    };
    let server = NetServer::bind("127.0.0.1:0", service, config).expect("bind");
    let addr = server.local_addr();

    // Pin the lone worker with an idle connection, then park a second in
    // the queue. Short sleeps let the acceptor hand each one off before
    // the next arrives.
    let pin_worker = TcpStream::connect(addr).expect("pin connection");
    std::thread::sleep(Duration::from_millis(150));
    let fill_queue = TcpStream::connect(addr).expect("queue connection");
    std::thread::sleep(Duration::from_millis(150));

    // The next caller must be told, not dropped: the client sees an
    // explicit Busy frame, surfaced as NetError::Busy once retries run out.
    let mut client = NetClient::connect(addr, fast_client()).expect("connect");
    match client.ping() {
        Err(NetError::Busy) => {}
        other => panic!("expected Busy, got {other:?}"),
    }
    assert!(server.stats().shed >= 1, "shed counter records the Busy");

    // With retries enabled the client rides out the saturation window:
    // the pinned connections idle out (read deadline) and free the worker.
    let patient = ClientConfig {
        max_retries: 8,
        backoff_base: Duration::from_millis(50),
        backoff_cap: Duration::from_millis(400),
        ..fast_client()
    };
    let mut retrying = NetClient::connect(addr, patient).expect("connect");
    retrying.ping().expect("retry succeeds after the deadline frees the worker");
    assert!(retrying.retries() >= 1, "success came via the retry path");
    let retry_stats = retrying.retry_stats();
    assert!(retry_stats.attempts >= 2, "at least the failed try plus the success");
    assert!(retry_stats.busy >= 1, "the shed was recorded as a Busy");
    assert!(retry_stats.backoff_us > 0, "backoff sleep time was accounted");
    assert_eq!(retry_stats.exhausted, 0, "the call ultimately succeeded");

    drop(pin_worker);
    drop(fill_queue);
    let stats = server.shutdown();
    assert!(stats.shed >= 1);
}

#[test]
fn malformed_bytes_get_a_typed_error_response() {
    let service = test_service();
    let server = NetServer::bind("127.0.0.1:0", service, ServerConfig::default()).expect("bind");
    let addr = server.local_addr();

    let mut raw = TcpStream::connect(addr).expect("connect");
    raw.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
    // Exactly one magic+version prefix's worth of junk: the server
    // consumes it all before rejecting, so the close is a clean FIN
    // rather than an RST.
    raw.write_all(b"XXXX!").expect("write");
    // The server answers with an encoded Error response, then closes.
    let mut reply = Vec::new();
    raw.read_to_end(&mut reply).expect("read reply");
    match Response::decode(&reply) {
        Ok(Response::Error { detail }) => {
            assert!(detail.contains("magic"), "detail names the failure: {detail}")
        }
        other => panic!("expected Error response, got {other:?}"),
    }

    // Wait until the counter lands (the worker races `read_to_end`).
    let mut tries = 0;
    while server.stats().protocol_errors == 0 && tries < 50 {
        std::thread::sleep(Duration::from_millis(10));
        tries += 1;
    }
    let stats = server.shutdown();
    assert_eq!(stats.protocol_errors, 1);
    assert_eq!(stats.requests, 0);
}

#[test]
fn corrupted_crc_is_rejected_not_executed() {
    let service = test_service();
    let server =
        NetServer::bind("127.0.0.1:0", service.clone(), ServerConfig::default())
            .expect("bind");
    let addr = server.local_addr();

    // A real IssueToken frame with one payload byte flipped: the CRC
    // catches it, the mint never sees the request.
    let mut rng = rng_for(43, "tcp-corrupt");
    let public = service.mint_public_key();
    let mut message = [0u8; 32];
    rng.fill(&mut message);
    let (_, blinded) = BlindingSession::blind(&mut rng, &public, &message);
    let mut frame = Request::IssueToken {
        device: DeviceId::new(9),
        blinded,
        now: Timestamp::EPOCH,
    }
    .encode();
    let last = frame.len() - 1;
    frame[last] ^= 0xFF;

    let mut raw = TcpStream::connect(addr).expect("connect");
    raw.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
    raw.write_all(&frame).expect("write");
    let mut reply = Vec::new();
    raw.read_to_end(&mut reply).expect("read reply");
    assert!(matches!(Response::decode(&reply), Ok(Response::Error { .. })));
    assert_eq!(service.tokens_issued(), 0, "corrupted request never reached the mint");

    server.shutdown();
}

#[test]
fn shutdown_drains_and_joins() {
    let service = test_service();
    let config = ServerConfig {
        workers: 2,
        queue_depth: 4,
        read_timeout: Duration::from_millis(500),
        write_timeout: Duration::from_millis(500),
        ..ServerConfig::default()
    };
    let server = NetServer::bind("127.0.0.1:0", service, config).expect("bind");
    let addr = server.local_addr();

    let mut client = NetClient::connect(addr, fast_client()).expect("connect");
    client.ping().expect("ping before shutdown");

    let start = std::time::Instant::now();
    let stats = server.shutdown();
    // The open idle client connection must not wedge the drain: workers
    // close after at most one read deadline.
    assert!(start.elapsed() < Duration::from_secs(5), "shutdown joined promptly");
    assert_eq!(stats.requests, 1);
    assert_eq!(stats.accepted, 1);

    // After shutdown the port no longer accepts service: a fresh call fails.
    match NetClient::connect(addr, fast_client()) {
        Ok(mut dead) => assert!(dead.ping().is_err(), "no server behind the port any more"),
        Err(_) => {} // refused outright: equally fine
    }
}

#[test]
fn stats_rpc_reports_live_counters() {
    let service = test_service();
    let server = NetServer::bind("127.0.0.1:0", service.clone(), ServerConfig::default())
        .expect("bind");
    let addr = server.local_addr();

    let mut client = NetClient::connect(addr, fast_client()).expect("connect");
    client.ping().expect("ping");
    client
        .search(SearchQuery { zipcode: ZIP, category: Category::Restaurant(Cuisine::Mexican) })
        .expect("search rpc");

    // The snapshot rides the same wire as every other RPC, and by the
    // time the Stats request dispatches, the ping and search spans have
    // already landed in the registry.
    let first = client.stats().expect("stats rpc");
    assert!(
        first.counter("net_requests_total").unwrap_or(0) >= 2,
        "ping and search were counted: {:?}",
        first.counter("net_requests_total")
    );
    let ping_hist = first.histogram("rpc_ping_us").expect("ping histogram exists");
    assert_eq!(ping_hist.count, 1, "exactly one ping timed");
    assert!(ping_hist.p50 <= ping_hist.max, "quantiles are ordered");
    let search_hist = first.histogram("rpc_search_us").expect("search histogram exists");
    assert_eq!(search_hist.count, 1, "exactly one search timed");

    // A second scrape is monotonic and sees the first Stats call itself.
    let second = client.stats().expect("second stats rpc");
    assert!(
        second.counter("net_requests_total").unwrap_or(0)
            >= first.counter("net_requests_total").unwrap_or(0),
        "request counter never goes backwards"
    );
    let stats_hist = second.histogram("rpc_stats_us").expect("stats histogram exists");
    assert!(stats_hist.count >= 1, "the first Stats RPC was itself timed");
    assert!(
        second.histogram("rpc_ping_us").expect("still present").count >= ping_hist.count,
        "histogram counts never go backwards"
    );

    let stats = server.shutdown();
    assert!(stats.requests >= 4);
    assert_eq!(stats.protocol_errors, 0);
}

#[test]
fn protocol_error_kinds_are_counted() {
    let service = test_service();
    let server = NetServer::bind("127.0.0.1:0", service, ServerConfig::default()).expect("bind");
    let addr = server.local_addr();

    let send = |bytes: &[u8], expect_reply: bool| {
        let mut raw = TcpStream::connect(addr).expect("connect");
        raw.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        raw.write_all(bytes).expect("write");
        if expect_reply {
            // Half-close so a server that keeps the connection open after
            // replying (decode errors are per-request, not fatal) sees a
            // clean end-of-conversation and closes its side too.
            raw.shutdown(std::net::Shutdown::Write).expect("half-close");
            let mut reply = Vec::new();
            raw.read_to_end(&mut reply).expect("read reply");
            assert!(
                matches!(Response::decode(&reply), Ok(Response::Error { .. })),
                "malformed input earns a typed Error response"
            );
        }
        // Dropping the stream closes it; for the truncation case that
        // close IS the malformation (EOF mid-frame).
    };

    // 1. Truncation: a valid header promising one payload byte, then FIN.
    let ping = Request::Ping.encode();
    send(&ping[..orsp_net::wire::HEADER_LEN_V2], false);

    // 2. Corrupt CRC: a full Ping frame with the payload byte flipped.
    let mut bad_crc = ping.clone();
    let last = bad_crc.len() - 1;
    bad_crc[last] ^= 0xFF;
    send(&bad_crc, true);

    // 3. Oversized: the declared length exceeds the 1 MiB payload cap.
    // Header only — the server rejects on the length field and closes
    // without reading a payload, so unsent bytes would become an RST.
    let mut oversized = ping[..orsp_net::wire::HEADER_LEN_V2].to_vec();
    oversized[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
    send(&oversized, true);

    // 4. Unknown tag: a perfectly framed payload with a tag from the future.
    send(&orsp_net::wire::frame(&[0x7F]), true);

    // 5. Bad magic: prefix-sized junk, classified as "other". (Exactly
    // the prefix, so the server's reject leaves no unread bytes and the
    // close is a clean FIN.)
    send(b"XXXX!", true);

    // Wait until all five counters land (workers race our socket closes).
    let mut tries = 0;
    while server.stats().protocol_errors < 5 && tries < 100 {
        std::thread::sleep(Duration::from_millis(10));
        tries += 1;
    }
    let stats = server.shutdown();
    assert_eq!(stats.protocol_errors, 5, "every malformation counted once");
    assert_eq!(stats.proto_truncated, 1);
    assert_eq!(stats.proto_bad_crc, 1);
    assert_eq!(stats.proto_oversized, 1);
    assert_eq!(stats.proto_unknown_tag, 1);
    assert_eq!(stats.proto_other, 1);
    assert_eq!(
        stats.proto_truncated
            + stats.proto_bad_crc
            + stats.proto_oversized
            + stats.proto_unknown_tag
            + stats.proto_other,
        stats.protocol_errors,
        "the breakdown sums to the total"
    );
    assert_eq!(stats.requests, 0, "nothing malformed was ever executed");
}

#[test]
fn transport_trait_is_shared_across_threads() {
    let service = test_service();
    let server = NetServer::bind("127.0.0.1:0", service, ServerConfig::default()).expect("bind");
    let addr = server.local_addr();

    let transport = Arc::new(TcpTransport::connect(addr, fast_client()).expect("transport"));
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let transport = Arc::clone(&transport);
            std::thread::spawn(move || {
                for _ in 0..8 {
                    match transport.call(&Request::Ping) {
                        Ok(Response::Pong) => {}
                        other => panic!("ping failed: {other:?}"),
                    }
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("worker thread");
    }
    let stats = server.shutdown();
    assert_eq!(stats.requests, 32);
    assert_eq!(stats.protocol_errors, 0);
}

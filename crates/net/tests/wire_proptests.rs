//! Property tests for the wire codec: every message type round-trips,
//! and hostile bytes — truncations, corrupted CRCs, oversized lengths,
//! arbitrary flips — always come back as typed errors, never a panic.

use orsp_client::UploadRequest;
use orsp_crypto::{BigUint, BlindSignature, BlindedMessage, Token};
use orsp_net::wire::{
    decode_frame, decode_frame_traced, frame, frame_traced, frame_v1, HEADER_LEN,
    HEADER_LEN_V2, MAX_PAYLOAD, TRACE_CTX_LEN,
};
use orsp_net::{Request, Response, SearchHit, WireError};
use orsp_obs::{EventSnapshot, HistogramSnapshot, StatsSnapshot, TraceContext};
use orsp_search::SearchQuery;
use orsp_server::{AggregateParts, EntityAggregate, RejectReason};
use orsp_types::{
    Category, DeviceId, EntityId, Interaction, InteractionKind, RecordId, SimDuration,
    StarHistogram, Timestamp,
};
use proptest::prelude::*;

fn category_from(raw: usize) -> Category {
    let mut all = Category::all_physical();
    all.push(Category::App);
    all.push(Category::Video);
    all[raw % all.len()]
}

fn kind_from(raw: usize) -> InteractionKind {
    InteractionKind::ALL[raw % InteractionKind::ALL.len()]
}

fn array32(bytes: &[u8]) -> [u8; 32] {
    let mut out = [0u8; 32];
    for (i, b) in bytes.iter().take(32).enumerate() {
        out[i] = *b;
    }
    out
}

fn upload_from(
    record: &[u8],
    entity: u64,
    kind: usize,
    start: i64,
    duration: i64,
    distance: f64,
    group: u16,
    token_msg: &[u8],
    sig: &[u8],
    release: i64,
) -> UploadRequest {
    UploadRequest {
        record_id: RecordId::from_bytes(array32(record)),
        entity: EntityId::new(entity),
        interaction: Interaction {
            kind: kind_from(kind),
            start: Timestamp::from_seconds(start),
            duration: SimDuration::seconds(duration),
            distance_travelled_m: distance,
            group_size: group,
        },
        token: Token { message: array32(token_msg), signature: BigUint::from_bytes_be(sig) },
        release_at: Timestamp::from_seconds(release),
    }
}

proptest! {
    #[test]
    fn every_request_type_round_trips(
        device in 0u64..u64::MAX,
        blinded in proptest::collection::vec(0u8..=255, 1..64),
        now in -1_000_000_000i64..1_000_000_000,
        record in proptest::collection::vec(0u8..=255, 32..33),
        entity in 0u64..u64::MAX,
        kind in 0usize..16,
        start in -1_000_000i64..1_000_000_000,
        duration in 0i64..100_000,
        distance in 0.0f64..1e7,
        group in 0u16..2000,
        token_msg in proptest::collection::vec(0u8..=255, 32..33),
        sig in proptest::collection::vec(0u8..=255, 1..64),
        zipcode in 0u32..100_000,
        cat in 0usize..1000,
    ) {
        let requests = [
            Request::Ping,
            Request::IssueToken {
                device: DeviceId::new(device),
                blinded: BlindedMessage(BigUint::from_bytes_be(&blinded)),
                now: Timestamp::from_seconds(now),
            },
            Request::Upload {
                upload: upload_from(
                    &record, entity, kind, start, duration, distance, group,
                    &token_msg, &sig, now,
                ),
                now: Timestamp::from_seconds(now),
            },
            Request::FetchAggregate { entity: EntityId::new(entity) },
            Request::AggregateParts { entity: EntityId::new(entity) },
            Request::AggregatePartsBatch { entities: vec![] },
            Request::AggregatePartsBatch {
                entities: vec![EntityId::new(entity), EntityId::new(entity ^ 1)],
            },
            Request::Search {
                query: SearchQuery { zipcode, category: category_from(cat) },
            },
            Request::Stats,
        ];
        for request in requests {
            let encoded = request.encode();
            prop_assert_eq!(Request::decode(&encoded).unwrap(), request);
        }
    }

    #[test]
    fn every_response_type_round_trips(
        sig in proptest::collection::vec(0u8..=255, 1..64),
        reason in proptest::collection::vec(0u8..=255, 0..40),
        reject in 0usize..4,
        entity in 0u64..u64::MAX,
        histories in 0u64..10_000,
        interactions in 0u64..100_000,
        dwell in 0.0f64..10_000.0,
        repeat in 0.0f64..=1.0,
        visits in proptest::collection::vec(0u64..1_000_000, 0..24),
        efforts in proptest::collection::vec((0u64..10_000, 0.0f64..1e6), 0..40),
        hist_a in proptest::collection::vec(0u64..1_000_000, 6..7),
        hist_b in proptest::collection::vec(0u64..1_000_000, 6..7),
        score in 0.0f64..5.0,
    ) {
        let reason = String::from_utf8_lossy(&reason).into_owned();
        let rejects = [
            RejectReason::BadToken,
            RejectReason::DoubleSpend,
            RejectReason::BadRecord,
            RejectReason::EntityMismatch,
        ];
        let aggregate = EntityAggregate {
            entity: EntityId::new(entity),
            histories: histories as usize,
            interactions: interactions as usize,
            visits_per_user: visits.iter().map(|&v| v as usize).collect(),
            effort_points: efforts.iter().map(|&(c, d)| (c as usize, d)).collect(),
            mean_dwell_min: dwell,
            repeat_fraction: repeat,
        };
        let mut counts_a = [0u64; 6];
        counts_a.copy_from_slice(&hist_a);
        let mut counts_b = [0u64; 6];
        counts_b.copy_from_slice(&hist_b);
        let hit = SearchHit {
            entity: EntityId::new(entity),
            score,
            explicit: StarHistogram::from_counts(counts_a),
            inferred: StarHistogram::from_counts(counts_b),
            histories,
            repeat_fraction: repeat,
        };
        let parts = AggregateParts {
            entity: EntityId::new(entity),
            histories,
            interactions,
            visits_per_user: visits.clone(),
            repeats: histories / 2,
            dwell_secs: dwell as i64,
            dwell_n: interactions,
            effort_points: efforts.clone(),
        };
        let responses = [
            Response::Pong,
            Response::TokenIssued { signature: BlindSignature(BigUint::from_bytes_be(&sig)) },
            Response::TokenDenied { reason: reason.clone() },
            Response::UploadAccepted,
            Response::UploadRejected { reason: rejects[reject] },
            Response::Aggregate { aggregate: None },
            Response::Aggregate { aggregate: Some(aggregate) },
            Response::AggregateParts { parts: None },
            Response::AggregateParts { parts: Some(parts.clone()) },
            Response::AggregatePartsBatch { parts: vec![] },
            Response::AggregatePartsBatch { parts: vec![Some(parts), None] },
            Response::SearchResults { hits: vec![] },
            Response::SearchResults { hits: vec![hit.clone(), hit] },
            Response::Busy,
            Response::Error { detail: reason },
        ];
        for response in responses {
            let encoded = response.encode();
            prop_assert_eq!(Response::decode(&encoded).unwrap(), response);
        }
    }

    #[test]
    fn stats_snapshot_round_trips(
        counter_names in proptest::collection::vec(
            proptest::collection::vec(0u8..26, 1..16), 0..8),
        counter_vals in proptest::collection::vec(0u64..u64::MAX, 8..9),
        gauge_names in proptest::collection::vec(
            proptest::collection::vec(0u8..26, 1..16), 0..8),
        gauge_vals in proptest::collection::vec(i64::MIN..i64::MAX, 8..9),
        hist_names in proptest::collection::vec(
            proptest::collection::vec(0u8..26, 1..16), 0..6),
        hist_vals in proptest::collection::vec(
            (0u64..u64::MAX, 0u64..u64::MAX, 0u64..u64::MAX, 0u64..u64::MAX), 6..7),
    ) {
        // The shim has no string strategy: derive names from letter bytes.
        let name_of = |bytes: &Vec<u8>| -> String {
            bytes.iter().map(|b| (b'a' + b) as char).collect()
        };
        let snapshot = StatsSnapshot {
            counters: counter_names
                .iter()
                .zip(&counter_vals)
                .map(|(n, v)| (name_of(n), *v))
                .collect(),
            gauges: gauge_names
                .iter()
                .zip(&gauge_vals)
                .map(|(n, v)| (name_of(n), *v))
                .collect(),
            histograms: hist_names
                .iter()
                .zip(&hist_vals)
                .map(|(n, &(count, sum, max, p50))| HistogramSnapshot {
                    name: name_of(n),
                    count,
                    sum,
                    max,
                    p50,
                    p90: p50.max(max / 2),
                    p99: max,
                })
                .collect(),
            events: counter_names
                .iter()
                .zip(&counter_vals)
                .map(|(n, v)| EventSnapshot {
                    at_micros: *v,
                    kind: name_of(n),
                    detail: format!("detail for {}", name_of(n)),
                })
                .collect(),
        };
        let response = Response::Stats { snapshot };
        let encoded = response.encode();
        prop_assert_eq!(Response::decode(&encoded).unwrap(), response);
    }

    #[test]
    fn truncated_stats_snapshot_is_a_typed_error(
        n_counters in 1usize..5,
        value in 0u64..u64::MAX,
    ) {
        let snapshot = StatsSnapshot {
            counters: (0..n_counters).map(|i| (format!("c{i}"), value)).collect(),
            gauges: vec![("g".into(), -1)],
            histograms: vec![HistogramSnapshot {
                name: "h".into(), count: 1, sum: value, max: value,
                p50: value, p90: value, p99: value,
            }],
            events: vec![EventSnapshot {
                at_micros: value,
                kind: "shed".into(),
                detail: "peer".into(),
            }],
        };
        let encoded = Response::Stats { snapshot }.encode();
        for cut in 0..encoded.len() {
            match Response::decode(&encoded[..cut]) {
                Err(_) => {}
                Ok(other) => prop_assert!(false, "cut {} decoded as {:?}", cut, other),
            }
        }
    }

    #[test]
    fn truncation_at_every_cut_is_a_typed_error(
        device in 0u64..u64::MAX,
        blinded in proptest::collection::vec(0u8..=255, 1..48),
        now in 0i64..1_000_000,
    ) {
        let request = Request::IssueToken {
            device: DeviceId::new(device),
            blinded: BlindedMessage(BigUint::from_bytes_be(&blinded)),
            now: Timestamp::from_seconds(now),
        };
        let encoded = request.encode();
        for cut in 0..encoded.len() {
            // Never panics, never succeeds, always typed.
            match Request::decode(&encoded[..cut]) {
                Err(WireError::Truncated { .. }) | Err(WireError::Malformed(_)) => {}
                other => prop_assert!(false, "cut {} gave {:?}", cut, other),
            }
        }
    }

    #[test]
    fn single_byte_corruption_never_decodes_silently(
        zipcode in 0u32..100_000,
        cat in 0usize..1000,
        pos_seed in 0usize..10_000,
        flip in 1u8..=255,
    ) {
        let request = Request::Search {
            query: SearchQuery { zipcode, category: category_from(cat) },
        };
        let mut encoded = request.encode();
        let pos = pos_seed % encoded.len();
        encoded[pos] ^= flip;
        // A flip in the payload is caught by the CRC; a flip in the
        // header by magic/version/length/CRC validation. Either way:
        // a typed error, never a wrong message and never a panic.
        prop_assert!(Request::decode(&encoded).is_err(), "flip at {} undetected", pos);
    }

    #[test]
    fn hostile_lengths_are_rejected_before_allocation(
        declared in (MAX_PAYLOAD as u32 + 1)..u32::MAX,
    ) {
        let mut encoded = Request::Ping.encode();
        encoded[6..10].copy_from_slice(&declared.to_le_bytes());
        prop_assert_eq!(
            decode_frame(&encoded).unwrap_err(),
            WireError::Oversized { len: declared as usize }
        );
    }

    #[test]
    fn random_soup_never_panics(
        soup in proptest::collection::vec(0u8..=255, 0..256),
    ) {
        // Arbitrary bytes must always produce a clean result.
        let _ = Request::decode(&soup);
        let _ = Response::decode(&soup);
        let _ = decode_frame(&soup);
        // Same soup wearing a valid frame: payload decoding alone must
        // also hold the no-panic property.
        let framed = frame(&soup);
        let _ = Request::decode(&framed);
        let _ = Response::decode(&framed);
    }

    #[test]
    fn frame_parse_is_consistent_with_header_len(
        payload in proptest::collection::vec(0u8..=255, 0..128),
    ) {
        let framed = frame(&payload);
        prop_assert_eq!(framed.len(), HEADER_LEN_V2 + payload.len());
        let (decoded, consumed) = decode_frame(&framed).unwrap();
        prop_assert_eq!(decoded, &payload[..]);
        prop_assert_eq!(consumed, framed.len());
    }

    #[test]
    fn v1_frames_from_old_peers_decode_on_a_v2_decoder(
        payload in proptest::collection::vec(0u8..=255, 0..128),
    ) {
        // An un-upgraded peer frames without a flags byte or trace
        // context. The v2 decoder must accept it byte-for-byte and
        // report "no context" — and every truncation of it must stay a
        // typed error.
        let framed = frame_v1(&payload);
        prop_assert_eq!(framed.len(), HEADER_LEN + payload.len());
        let (decoded, ctx, consumed) = decode_frame_traced(&framed).unwrap();
        prop_assert_eq!(decoded, &payload[..]);
        prop_assert_eq!(ctx, None);
        prop_assert_eq!(consumed, framed.len());
        for cut in 0..framed.len() {
            prop_assert!(decode_frame_traced(&framed[..cut]).is_err(), "cut {}", cut);
        }
    }

    #[test]
    fn untraced_v2_frames_look_contextless_to_the_reader(
        payload in proptest::collection::vec(0u8..=255, 0..128),
    ) {
        // The other direction of the skew: a v2 sender that has nothing
        // to propagate (tracing off, unsampled request) must be
        // indistinguishable-in-content from a v1 peer — same payload
        // out, no context.
        let framed = frame(&payload);
        let (decoded, ctx, _) = decode_frame_traced(&framed).unwrap();
        prop_assert_eq!(decoded, &payload[..]);
        prop_assert_eq!(ctx, None);
    }

    #[test]
    fn traced_frames_round_trip_and_every_truncation_is_typed(
        payload in proptest::collection::vec(0u8..=255, 0..96),
        trace_hi in 0u64..u64::MAX,
        trace_lo in 0u64..u64::MAX,
        span in 0u64..u64::MAX,
        sampled in 0u8..2,
    ) {
        let ctx = TraceContext {
            trace_id: (trace_hi as u128) << 64 | trace_lo as u128,
            span_id: span,
            sampled: sampled == 1,
        };
        let framed = frame_traced(&payload, Some(&ctx));
        prop_assert_eq!(framed.len(), HEADER_LEN_V2 + TRACE_CTX_LEN + payload.len());
        let (decoded, got, consumed) = decode_frame_traced(&framed).unwrap();
        prop_assert_eq!(decoded, &payload[..]);
        prop_assert_eq!(got, Some(ctx));
        prop_assert_eq!(consumed, framed.len());
        // Truncation across the header, the trace block, and the
        // payload: typed errors at every cut, never a panic, never a
        // wrong decode.
        for cut in 0..framed.len() {
            prop_assert!(decode_frame_traced(&framed[..cut]).is_err(), "cut {}", cut);
        }
    }
}

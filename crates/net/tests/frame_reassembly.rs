//! Property tests for the incremental frame reassembly state machine
//! ([`FrameAssembler`]) that backs both the blocking reader and the
//! reactor's non-blocking connections.
//!
//! The invariant under test: however the transport chunks the bytes —
//! every possible prefix split, one byte at a time, random fragmentings —
//! the assembler yields exactly the frames the one-shot
//! [`decode_frame_traced`] decodes from the same stream, in the same
//! order, with the same payloads and trace contexts. Hostile inputs must
//! fail with the same typed error the one-shot decoder reports, at a
//! point where no payload allocation has happened.

use orsp_net::wire::{
    decode_frame_traced, frame, frame_traced, frame_v1, HEADER_LEN_V2, MAX_PAYLOAD,
};
use orsp_net::{AssembledFrame, FrameAssembler, WireError};
use orsp_obs::TraceContext;
use proptest::prelude::*;

/// Encode one frame: `kind` selects v1 / v2-untraced / v2-traced.
fn encode_kind(kind: u8, payload: &[u8], trace_id: u64, span_id: u64, sampled: bool) -> Vec<u8> {
    match kind % 3 {
        0 => frame_v1(payload),
        1 => frame(payload),
        _ => frame_traced(
            payload,
            Some(&TraceContext { trace_id: trace_id.into(), span_id, sampled }),
        ),
    }
}

/// One-shot reference decode of a whole stream of concatenated frames.
fn oneshot_all(mut buf: &[u8]) -> Vec<AssembledFrame> {
    let mut out = Vec::new();
    while !buf.is_empty() {
        let (payload, ctx, consumed) = decode_frame_traced(buf).expect("valid stream");
        out.push(AssembledFrame { payload: payload.to_vec(), ctx });
        buf = &buf[consumed..];
    }
    out
}

/// Feed a stream through the assembler split at the given cut points.
fn assemble_chunked(stream: &[u8], cuts: &[usize]) -> Vec<AssembledFrame> {
    let mut asm = FrameAssembler::new();
    let mut out = Vec::new();
    let mut start = 0usize;
    let bounds: Vec<usize> = cuts.iter().copied().chain(std::iter::once(stream.len())).collect();
    for end in bounds {
        let mut chunk = &stream[start..end];
        while !chunk.is_empty() {
            let (consumed, msg) = asm.feed(chunk).expect("valid stream");
            if let Some(m) = msg {
                out.push(m);
            }
            chunk = &chunk[consumed..];
        }
        start = end;
    }
    // A trailing zero-length payload completes on empty input.
    if let (_, Some(m)) = asm.feed(&[]).expect("flush") {
        out.push(m);
    }
    assert!(asm.at_boundary(), "stream ends on a frame boundary");
    out
}

/// Zip the generated ingredient vectors into an encoded frame stream.
fn encode_stream(kinds: &[u8], payloads: &[Vec<u8>], ids: &[u64]) -> Vec<u8> {
    let n = kinds.len().min(payloads.len());
    let mut stream = Vec::new();
    for i in 0..n {
        let payload = payloads.get(i).map(Vec::as_slice).unwrap_or(b"fallback");
        let tid = ids.get(i).copied().unwrap_or(1);
        stream.extend_from_slice(&encode_kind(
            kinds[i],
            payload,
            tid,
            tid.rotate_left(17) | 1,
            tid & 1 == 1,
        ));
    }
    stream
}

proptest! {
    /// Every prefix split of a single frame: feed `stream[..cut]`, then
    /// `stream[cut..]` — equals the one-shot decode, for every cut point.
    /// (Exhaustive over cuts, not sampled: the loop walks all of them.)
    #[test]
    fn every_prefix_split_equals_one_shot(
        kind in any::<u8>(),
        payload in proptest::collection::vec(any::<u8>(), 0..300),
        trace_id in any::<u64>(),
        span_id in any::<u64>(),
        sampled in any::<bool>(),
    ) {
        let stream = encode_kind(kind, &payload, trace_id, span_id, sampled);
        let expected = oneshot_all(&stream);
        prop_assert_eq!(expected.len(), 1);
        for cut in 0..=stream.len() {
            let got = assemble_chunked(&stream, &[cut]);
            prop_assert_eq!(&got, &expected, "split at {}", cut);
        }
    }

    /// Multi-frame streams, one byte at a time.
    #[test]
    fn byte_at_a_time_equals_one_shot(
        kinds in proptest::collection::vec(any::<u8>(), 1..5),
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..300), 1..5),
        ids in proptest::collection::vec(any::<u64>(), 1..5),
    ) {
        let stream = encode_stream(&kinds, &payloads, &ids);
        let expected = oneshot_all(&stream);
        let cuts: Vec<usize> = (1..stream.len()).collect();
        let got = assemble_chunked(&stream, &cuts);
        prop_assert_eq!(got, expected);
    }

    /// Multi-frame streams in random chunkings.
    #[test]
    fn random_chunkings_equal_one_shot(
        kinds in proptest::collection::vec(any::<u8>(), 1..5),
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..300), 1..5),
        ids in proptest::collection::vec(any::<u64>(), 1..5),
        raw_cuts in proptest::collection::vec(any::<usize>(), 0..12),
    ) {
        let stream = encode_stream(&kinds, &payloads, &ids);
        let expected = oneshot_all(&stream);
        let mut cuts: Vec<usize> = raw_cuts.iter().map(|c| c % (stream.len() + 1)).collect();
        cuts.sort_unstable();
        let got = assemble_chunked(&stream, &cuts);
        prop_assert_eq!(got, expected);
    }

    /// A hostile declared length fails as `Oversized` the moment the
    /// header's last byte arrives — before one payload byte exists, so
    /// before anything could have been allocated for it — no matter
    /// where the header is split.
    #[test]
    fn hostile_lengths_are_typed_without_allocation(
        declared in (MAX_PAYLOAD as u32 + 1)..=u32::MAX,
        cut in 0usize..HEADER_LEN_V2,
    ) {
        let mut framed = frame(b"x");
        framed[6..10].copy_from_slice(&declared.to_le_bytes());
        let header = &framed[..HEADER_LEN_V2];
        let mut asm = FrameAssembler::new();
        let (consumed, msg) = asm.feed(&header[..cut]).expect("incomplete header is fine");
        prop_assert_eq!(consumed, cut);
        prop_assert!(msg.is_none());
        let err = asm.feed(&header[cut..]).expect_err("oversized length");
        prop_assert!(matches!(err, WireError::Oversized { .. }), "got {:?}", err);
        // Matches the one-shot decoder's verdict on the same bytes.
        prop_assert!(matches!(
            decode_frame_traced(&framed), Err(WireError::Oversized { .. })
        ));
        // And the stream is poisoned for good.
        prop_assert!(asm.feed(b"anything").is_err());
    }

    /// Corrupting any single byte of a one-frame stream: the assembler
    /// and the one-shot decoder reach the same verdict — both accept
    /// with identical payload/context, or both reject.
    #[test]
    fn corruption_agrees_with_one_shot(
        kind in any::<u8>(),
        payload in proptest::collection::vec(any::<u8>(), 0..300),
        trace_id in any::<u64>(),
        pos_seed in any::<usize>(),
        flip in 1u8..=255,
    ) {
        let mut stream =
            encode_kind(kind, &payload, trace_id, trace_id ^ 0x5a5a, trace_id & 1 == 0);
        let pos = pos_seed % stream.len();
        stream[pos] ^= flip;
        let oneshot: Result<_, WireError> =
            decode_frame_traced(&stream).map(|(p, ctx, used)| (p.to_vec(), ctx, used));
        let mut asm = FrameAssembler::new();
        let mut rest: &[u8] = &stream;
        let mut got: Result<Option<AssembledFrame>, WireError> = Ok(None);
        while !rest.is_empty() {
            match asm.feed(rest) {
                Ok((_, Some(m))) => {
                    got = Ok(Some(m));
                    break;
                }
                Ok((consumed, None)) => {
                    prop_assert!(consumed > 0, "no progress on non-empty input");
                    rest = &rest[consumed..];
                }
                Err(e) => {
                    got = Err(e);
                    break;
                }
            }
        }
        if let Ok(None) = got {
            got = asm.feed(&[]).map(|(_, m)| m);
        }
        match (oneshot, got) {
            (Ok((p, ctx, _used)), Ok(Some(m))) => {
                prop_assert_eq!(m.payload, p);
                prop_assert_eq!(m.ctx, ctx);
            }
            // A flip that grew the declared length leaves both sides
            // seeing an incomplete frame — the one-shot decoder (whole
            // buffer in hand) calls it `Truncated`, the incremental one
            // (a stream that could still grow) just stays hungry. Same
            // verdict, different vantage.
            (Err(WireError::Truncated { .. }), Ok(None)) => {}
            (Ok(_), Ok(None)) => {
                prop_assert!(false, "one-shot accepted but assembler still hungry");
            }
            (Err(_), Err(_)) => {} // both reject: agreement
            (Err(e), Ok(m)) => {
                prop_assert!(false, "one-shot said {:?} but assembler said {:?}", e, m);
            }
            (Ok(_), Err(e)) => {
                prop_assert!(false, "one-shot accepted but assembler rejected ({:?})", e);
            }
        }
    }
}

//! The service router: one `handle(Request) -> Response` facade over the
//! server-side substrates (token mint, ingest shards, aggregate
//! publisher, search index).
//!
//! Server state is partitioned into three independently synchronized
//! domains, so no RPC ever takes a lock wider than what it touches:
//!
//! * **Mint domain** — the token mint behind its own lock; only the
//!   issue path's per-device accounting runs under it (RSA signing is
//!   pure and happens outside). The verifying key is cached at
//!   construction, so upload-path signature checks and
//!   [`RspService::mint_public_key`] take no lock at all.
//! * **Read domain** — search index, ranker, explicit/inferred review
//!   histograms, *and the published entity aggregates*, immutable
//!   behind an `Arc` snapshot. Readers clone the `Arc` (one brief cell
//!   lock) and work lock-free: `FetchAggregate` and per-hit search
//!   detail never touch a store-shard lock.
//!   [`RspService::publish_inferred`] and
//!   [`RspService::publish_aggregates`] each swap in a fresh snapshot.
//! * **Ingest domain** — [`ShardedIngest`]: spend ledger sharded by
//!   token ledger key, history store sharded by `shard_index(record_id)`,
//!   and per-shard group commit so concurrent uploads on a shard share
//!   one fsync and no flush ever blocks reads, token issuance, or
//!   other shards.
//!
//! Request handling stays deterministic given each device's request
//! sequence: rate-limit accounting is per-device, RSA signing and
//! verification are pure functions, double-spend is first-presentation-
//! wins on a single ledger shard, and every counter is an
//! order-independent sum — now per shard, which is the property the
//! served pipeline's digest-equality test leans on.
//!
//! Lock order (debug-asserted via `orsp_server::lockorder`): mint →
//! ledger shard → store shard → group commit → group queue, never
//! reversed.

use crate::wire::{Request, Response, SearchHit};
use orsp_crypto::blind::{sign_blinded, verify_unblinded};
use orsp_crypto::{RsaPublicKey, TokenMint};
use orsp_obs::{trace, Counter, Histogram, Registry, TraceContext};
use orsp_search::{InferredSummary, Ranker, ReviewSummary, SearchIndex};
use orsp_server::{
    lockorder::{self, rank},
    AggregateParts, AggregatePublisher, EntityAggregate, GroupCommitConfig, IngestOutcome,
    IngestService,
    IngestStats, RejectReason, ShardedIngest, WalBatchItem, WalSink, MIN_AGGREGATE_SUPPORT,
};
use orsp_types::{EntityId, RecordId, StarHistogram};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Router tunables.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// k-anonymity floor: aggregates (and per-hit support detail) for
    /// entities with fewer anonymous histories are suppressed.
    pub min_aggregate_support: usize,
    /// Cap on search hits per response.
    pub max_search_results: usize,
    /// Shard count for the ingest domain (spend ledger + history store).
    /// Align with the storage engine's shard count so each ingest shard
    /// appends to exactly its own on-disk segment log.
    pub ingest_shards: usize,
}

/// Most completed traces one `Traces` RPC returns (the tracer's
/// completed queue is itself bounded; draining moves records out, so a
/// poller sees each trace exactly once).
const TRACES_RPC_LIMIT: usize = 16;

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            min_aggregate_support: MIN_AGGREGATE_SUPPORT,
            max_search_results: 20,
            ingest_shards: 8,
        }
    }
}

/// How a [`ReplicaHook`] answered a cluster-internal `Replicate` batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplicateOutcome {
    /// The batch (or promotion) was durably applied.
    Applied {
        /// The hook's epoch for the range after applying.
        epoch: u64,
        /// Entries applied from this batch.
        applied: u64,
        /// The node just became primary for the range — the router
        /// republishes aggregates so the absorbed range is servable.
        promoted: bool,
    },
    /// Refused: the hook holds a strictly higher epoch for the range.
    /// The fencing signal a stale rejoining primary demotes itself on.
    Stale {
        /// The hook's current epoch.
        current: u64,
    },
    /// The hook could not apply the batch (I/O failure on the range's
    /// engine). Surfaced as a `Response::Error`, never swallowed.
    Failed(String),
}

/// Replication integration points, implemented by `orsp-replica`'s node
/// runtime and attached via [`RspService::set_replica`]. The router owns
/// dispatch and the ingest domain; the hook owns per-range epochs,
/// follower engines, and the catch-up scanner — it receives the ingest
/// domain by reference at call time so promotion can fold a followed
/// range's records into the serving store.
pub trait ReplicaHook: Send + Sync {
    /// Gate the public upload path: refuse writes for a range this node
    /// no longer serves as primary (demoted after a fenced rejoin),
    /// *before* the token is spent. `Err` carries the refusal to send.
    fn pre_upload(&self, record_id: &RecordId) -> Result<(), Response>;

    /// Apply one cluster-internal `Replicate` batch (or promotion).
    fn apply_replicate(
        &self,
        ingest: &ShardedIngest,
        range: u32,
        epoch: u64,
        promote: bool,
        items: &[WalBatchItem],
    ) -> ReplicateOutcome;

    /// Serve one chunk of a `CatchUp` stream for a range this node
    /// holds (as primary or follower — the reply says which).
    fn serve_catch_up(&self, ingest: &ShardedIngest, range: u32, cursor: u64) -> Response;
}

/// The read domain: everything search needs, immutable behind one `Arc`.
/// Queries run against whichever snapshot they grabbed; publishing new
/// inferences builds the next snapshot and swaps the cell.
struct ReadState {
    index: SearchIndex,
    ranker: Ranker,
    explicit: HashMap<EntityId, StarHistogram>,
    inferred: HashMap<EntityId, StarHistogram>,
    /// Entity aggregates as of the last [`RspService::publish_aggregates`]
    /// call, floor-unfiltered (the k-anonymity floor is applied at read
    /// time, so retuning the floor needs no republish) and kept in the
    /// mergeable [`AggregateParts`] form so the cluster-internal
    /// `AggregateParts` RPC can export exact partials for a front-door
    /// proxy to merge. Empty until the first publish — aggregates are a
    /// published product, like inferences, not a live view of the store.
    aggregates: HashMap<EntityId, AggregateParts>,
}

/// Pre-resolved metric handles for the request hot path: one registry
/// lock at construction, lock-free recording per RPC thereafter.
struct RouterMetrics {
    rpc_ping_us: Histogram,
    rpc_issue_token_us: Histogram,
    rpc_upload_us: Histogram,
    rpc_fetch_aggregate_us: Histogram,
    rpc_search_us: Histogram,
    rpc_stats_us: Histogram,
    rpc_traces_us: Histogram,
    rpc_aggregate_parts_us: Histogram,
    rpc_aggregate_parts_batch_us: Histogram,
    rpc_replicate_us: Histogram,
    rpc_catch_up_us: Histogram,
    mint_issued_total: Counter,
    mint_denied_total: Counter,
    ingest_accepted_total: Counter,
    ingest_bad_token_total: Counter,
    ingest_double_spend_total: Counter,
    ingest_bad_record_total: Counter,
    ingest_entity_mismatch_total: Counter,
    durability_errors_total: Counter,
}

impl RouterMetrics {
    fn resolve(obs: &Registry) -> Self {
        RouterMetrics {
            rpc_ping_us: obs.histogram("rpc_ping_us"),
            rpc_issue_token_us: obs.histogram("rpc_issue_token_us"),
            rpc_upload_us: obs.histogram("rpc_upload_us"),
            rpc_fetch_aggregate_us: obs.histogram("rpc_fetch_aggregate_us"),
            rpc_search_us: obs.histogram("rpc_search_us"),
            rpc_stats_us: obs.histogram("rpc_stats_us"),
            rpc_traces_us: obs.histogram("rpc_traces_us"),
            rpc_aggregate_parts_us: obs.histogram("rpc_aggregate_parts_us"),
            rpc_aggregate_parts_batch_us: obs.histogram("rpc_aggregate_parts_batch_us"),
            rpc_replicate_us: obs.histogram("rpc_replicate_us"),
            rpc_catch_up_us: obs.histogram("rpc_catch_up_us"),
            mint_issued_total: obs.counter("mint_issued_total"),
            mint_denied_total: obs.counter("mint_denied_total"),
            ingest_accepted_total: obs.counter("ingest_accepted_total"),
            ingest_bad_token_total: obs.counter("ingest_bad_token_total"),
            ingest_double_spend_total: obs.counter("ingest_double_spend_total"),
            ingest_bad_record_total: obs.counter("ingest_bad_record_total"),
            ingest_entity_mismatch_total: obs.counter("ingest_entity_mismatch_total"),
            durability_errors_total: obs.counter("durability_errors_total"),
        }
    }

    fn reject_counter(&self, reason: RejectReason) -> &Counter {
        match reason {
            RejectReason::BadToken => &self.ingest_bad_token_total,
            RejectReason::DoubleSpend => &self.ingest_double_spend_total,
            RejectReason::BadRecord => &self.ingest_bad_record_total,
            RejectReason::EntityMismatch => &self.ingest_entity_mismatch_total,
        }
    }
}

/// The wire-facing RSP service: every RPC lands here.
pub struct RspService {
    /// Mint domain: per-device issuance accounting. RSA signing happens
    /// outside this lock via the mint's shared keypair handle.
    mint: Mutex<TokenMint>,
    /// The mint's verifying key, cached so the upload path and
    /// [`Self::mint_public_key`] never touch the mint lock.
    mint_public: RsaPublicKey,
    /// Read domain snapshot cell: locked only long enough to clone or
    /// swap the `Arc`, never while any other lock is held.
    read: Mutex<Arc<ReadState>>,
    /// Ingest domain: sharded admission, per-shard WAL-order handoff.
    ingest: ShardedIngest,
    /// Replication integration, when an `orsp-replica` runtime is
    /// attached: cell-locked only long enough to clone the `Arc`.
    replica: Mutex<Option<Arc<dyn ReplicaHook>>>,
    config: ServiceConfig,
    obs: Arc<Registry>,
    metrics: RouterMetrics,
}

impl RspService {
    /// A service over a token mint, a search index, and the explicit
    /// review histograms the index ranks with. The history store starts
    /// empty — it fills from `Upload` requests.
    pub fn new(
        mint: TokenMint,
        index: SearchIndex,
        explicit: HashMap<EntityId, StarHistogram>,
        ranker: Ranker,
        config: ServiceConfig,
    ) -> Self {
        Self::with_ingest(mint, index, explicit, ranker, config, IngestService::new())
    }

    /// A service whose history store starts from `ingest` — how a
    /// daemon resumes serving after crash recovery rebuilt its state
    /// from the durable log.
    pub fn with_ingest(
        mint: TokenMint,
        index: SearchIndex,
        explicit: HashMap<EntityId, StarHistogram>,
        ranker: Ranker,
        config: ServiceConfig,
        ingest: IngestService,
    ) -> Self {
        let obs = Arc::new(Registry::new());
        obs.tracer().set_process("server");
        let metrics = RouterMetrics::resolve(&obs);
        let mint_public = mint.public_key().clone();
        RspService {
            mint: Mutex::new(mint),
            mint_public,
            read: Mutex::new(Arc::new(ReadState {
                index,
                ranker,
                explicit,
                inferred: HashMap::new(),
                aggregates: HashMap::new(),
            })),
            ingest: ShardedIngest::from_service(ingest, config.ingest_shards),
            replica: Mutex::new(None),
            config,
            obs,
            metrics,
        }
    }

    /// Attach a replication runtime: the upload path gains the demoted-
    /// range gate and the cluster-internal `Replicate`/`CatchUp` RPCs
    /// start being served instead of refused.
    pub fn set_replica(&self, hook: Arc<dyn ReplicaHook>) {
        *self.replica.lock() = Some(hook);
    }

    fn replica_hook(&self) -> Option<Arc<dyn ReplicaHook>> {
        self.replica.lock().clone()
    }

    /// Grab the current read-domain snapshot (one brief cell lock, then
    /// lock-free use).
    fn read_snapshot(&self) -> Arc<ReadState> {
        Arc::clone(&self.read.lock())
    }

    /// Attach a durability sink: from now on every accepted upload is
    /// logged through it before the `UploadAccepted` response exists.
    ///
    /// Failure semantics: a sink error after admission produces
    /// `Response::Error` meaning *applied but possibly not durable* —
    /// the token is spent and the interaction is stored in memory, so a
    /// client retrying with a fresh token would append the interaction
    /// twice. The error is a durability warning, not a rejection.
    pub fn set_durability(&self, sink: Arc<dyn WalSink>) {
        self.ingest.set_wal(sink);
    }

    /// [`Self::set_durability`] with explicit group-commit tuning — the
    /// daemon threads its `--group-commit*` flags through here.
    pub fn set_durability_with(&self, sink: Arc<dyn WalSink>, config: GroupCommitConfig) {
        self.ingest.set_wal_with(sink, config);
    }

    /// Seed the spend ledger with keys recovered from the durable log
    /// (see [`ShardedIngest::seed_spent_tokens`]).
    pub fn seed_spent_tokens<I: IntoIterator<Item = [u8; 32]>>(&self, keys: I) {
        self.ingest.seed_spent_tokens(keys);
    }

    /// Snapshot of every spent-token ledger key — folded into the
    /// checkpoint at drain so spends stay durable past log truncation.
    pub fn spent_tokens(&self) -> HashSet<[u8; 32]> {
        self.ingest.spent_tokens()
    }

    /// Times any store-shard lock has been acquired (ingest and publish
    /// paths; the served read path must never move this).
    pub fn store_lock_acquisitions(&self) -> u64 {
        self.ingest.store_lock_acquisitions()
    }

    /// This service's metric registry. The `NetServer` fronting the
    /// service records its accept/shed/protocol counters here too, so a
    /// `Stats` RPC reports the whole daemon in one snapshot.
    pub fn obs(&self) -> &Arc<Registry> {
        &self.obs
    }

    /// Publish inferred-opinion histograms (e.g. after an inference pass)
    /// so search ranking blends them in. Builds the next read snapshot
    /// and swaps it; in-flight searches finish against the old one.
    pub fn publish_inferred(&self, inferred: HashMap<EntityId, StarHistogram>) {
        let _span = trace::child("publish_snapshot");
        let mut cell = self.read.lock();
        let next = ReadState {
            index: cell.index.clone(),
            ranker: cell.ranker,
            explicit: cell.explicit.clone(),
            inferred,
            aggregates: cell.aggregates.clone(),
        };
        *cell = Arc::new(next);
    }

    /// Rebuild every entity's aggregate from the ingest shards and swap
    /// it into the read snapshot. This is the only path that computes
    /// aggregates from the store: `FetchAggregate` and search hits read
    /// the snapshot, so serving them costs zero store-shard locks. Run
    /// after ingest bursts (the daemon does, alongside inference) —
    /// uploads between publishes are visible in stats but not in
    /// aggregates, exactly like inferences.
    ///
    /// Shard by shard the publish takes brief store locks, then one
    /// brief cell lock for the swap; in-flight reads finish against the
    /// old snapshot.
    pub fn publish_aggregates(&self) {
        let _span = trace::child("publish_snapshot");
        let aggregates: HashMap<EntityId, AggregateParts> = self
            .ingest
            .histories_by_entity()
            .into_iter()
            .map(|(entity, histories)| {
                (entity, AggregatePublisher::parts_from_histories(entity, histories))
            })
            .collect();
        let mut cell = self.read.lock();
        let next = ReadState {
            index: cell.index.clone(),
            ranker: cell.ranker,
            explicit: cell.explicit.clone(),
            inferred: cell.inferred.clone(),
            aggregates,
        };
        *cell = Arc::new(next);
    }

    /// Handle one decoded request, recording per-RPC latency and outcome
    /// counters into the service registry.
    pub fn handle(&self, request: Request) -> Response {
        self.handle_traced(request, None)
    }

    /// [`Self::handle`] continuing the caller's distributed trace: the
    /// whole RPC becomes a `server/<kind>` span parented under the
    /// context the frame arrived with (or a new root for direct calls,
    /// subject to the tracer's sampling).
    pub fn handle_traced(&self, request: Request, ctx: Option<TraceContext>) -> Response {
        let (hist, name) = match &request {
            Request::Ping => (&self.metrics.rpc_ping_us, "server/ping"),
            Request::IssueToken { .. } => {
                (&self.metrics.rpc_issue_token_us, "server/issue_token")
            }
            Request::Upload { .. } => (&self.metrics.rpc_upload_us, "server/upload"),
            Request::FetchAggregate { .. } => {
                (&self.metrics.rpc_fetch_aggregate_us, "server/fetch_aggregate")
            }
            Request::Search { .. } => (&self.metrics.rpc_search_us, "server/search"),
            Request::Stats => (&self.metrics.rpc_stats_us, "server/stats"),
            Request::Traces => (&self.metrics.rpc_traces_us, "server/traces"),
            Request::AggregateParts { .. } => {
                (&self.metrics.rpc_aggregate_parts_us, "server/aggregate_parts")
            }
            Request::AggregatePartsBatch { .. } => {
                (&self.metrics.rpc_aggregate_parts_batch_us, "server/aggregate_parts_batch")
            }
            Request::Replicate { .. } => (&self.metrics.rpc_replicate_us, "server/replicate"),
            Request::CatchUp { .. } => (&self.metrics.rpc_catch_up_us, "server/catch_up"),
        };
        let span = self.obs.span_into(hist);
        let trace_span = self.obs.tracer().root_or_remote(ctx, name);
        let response = self.dispatch(request);
        trace_span.end();
        span.end();
        response
    }

    fn dispatch(&self, request: Request) -> Response {
        match request {
            Request::Ping => Response::Pong,
            Request::IssueToken { device, blinded, now } => {
                // Mint domain only: per-device accounting under the lock,
                // the (expensive, pure) RSA signing outside it.
                let keypair = {
                    let _rank = lockorder::enter(rank::MINT);
                    let mut mint = self.mint.lock();
                    match mint.authorize(device, now) {
                        Ok(()) => mint.keypair_handle(),
                        Err(e) => {
                            drop(mint);
                            drop(_rank);
                            self.metrics.mint_denied_total.inc();
                            return Response::TokenDenied { reason: e.to_string() };
                        }
                    }
                };
                let signature = sign_blinded(&keypair, &blinded);
                self.metrics.mint_issued_total.inc();
                Response::TokenIssued { signature }
            }
            Request::Upload { upload, now: _ } => {
                // A demoted range refuses writes *before* the token is
                // spent — a client hitting a fenced stale primary loses
                // nothing and retries against the current one.
                if let Some(hook) = self.replica_hook() {
                    if let Err(refusal) = hook.pre_upload(&upload.record_id) {
                        return refusal;
                    }
                }
                // No lock for the signature check (pure RSA against the
                // cached key), then the ingest domain routes to the
                // token's ledger shard and the record's store shard.
                let valid = verify_unblinded(
                    &self.mint_public,
                    &upload.token.message,
                    &upload.token.signature,
                );
                match self.ingest.ingest_verified(&upload, valid) {
                    IngestOutcome::Accepted => {
                        self.metrics.ingest_accepted_total.inc();
                        Response::UploadAccepted
                    }
                    IngestOutcome::AcceptedNotDurable(e) => {
                        // The upload is applied in memory (the token is
                        // spent, the interaction is stored) but may not
                        // survive a restart. Surface that honestly; the
                        // client must NOT retry with a fresh token — the
                        // retry would be a second append, not a
                        // replacement.
                        self.metrics.ingest_accepted_total.inc();
                        self.metrics.durability_errors_total.inc();
                        Response::Error {
                            detail: format!(
                                "durability failure (upload applied but \
                                 possibly not durable; do not retry): {e}"
                            ),
                        }
                    }
                    IngestOutcome::Rejected(reason) => {
                        self.metrics.reject_counter(reason).inc();
                        Response::UploadRejected { reason }
                    }
                }
            }
            Request::FetchAggregate { entity } => {
                let snapshot = self.read_snapshot();
                Response::Aggregate { aggregate: self.aggregate_from(&snapshot, entity) }
            }
            Request::Search { query } => {
                let snapshot = self.read_snapshot();
                let candidates: Vec<(EntityId, ReviewSummary, InferredSummary)> = snapshot
                    .index
                    .query(&query)
                    .into_iter()
                    .map(|listing| {
                        let explicit = ReviewSummary {
                            histogram: snapshot
                                .explicit
                                .get(&listing.id)
                                .cloned()
                                .unwrap_or_default(),
                        };
                        let mut inferred = InferredSummary {
                            histogram: snapshot
                                .inferred
                                .get(&listing.id)
                                .cloned()
                                .unwrap_or_default(),
                            ..InferredSummary::default()
                        };
                        if let Some(agg) = self.aggregate_from(&snapshot, listing.id) {
                            inferred = inferred.with_aggregate(&agg);
                        }
                        (listing.id, explicit, inferred)
                    })
                    .collect();
                let mut ranked = snapshot.ranker.rank(candidates);
                ranked.truncate(self.config.max_search_results);
                Response::SearchResults {
                    hits: ranked
                        .into_iter()
                        .map(|r| SearchHit {
                            entity: r.entity,
                            score: r.score,
                            explicit: r.explicit.histogram,
                            inferred: r.inferred.histogram,
                            histories: r.inferred.histories as u64,
                            repeat_fraction: r.inferred.repeat_fraction,
                        })
                        .collect(),
                }
            }
            Request::Stats => Response::Stats { snapshot: self.obs.snapshot() },
            Request::Traces => Response::Traces {
                traces: self.obs.tracer().drain_completed(TRACES_RPC_LIMIT),
            },
            Request::AggregateParts { entity } => {
                // Cluster-internal scatter-gather leg: deliberately
                // floor-unfiltered — the proxy applies the k-anonymity
                // floor to the *merged* support, the only place the true
                // total is known. Deployments restrict this RPC to the
                // proxy tier.
                let snapshot = self.read_snapshot();
                Response::AggregateParts {
                    parts: snapshot.aggregates.get(&entity).cloned(),
                }
            }
            Request::AggregatePartsBatch { entities } => {
                // One snapshot for the whole batch: every answered
                // entity comes from the same publish generation, so the
                // proxy's per-hit merges cannot mix generations.
                let snapshot = self.read_snapshot();
                Response::AggregatePartsBatch {
                    parts: entities
                        .iter()
                        .map(|entity| snapshot.aggregates.get(entity).cloned())
                        .collect(),
                }
            }
            Request::Replicate { range, epoch, promote, items } => {
                let Some(hook) = self.replica_hook() else {
                    return Response::Error { detail: "replication not enabled".into() };
                };
                match hook.apply_replicate(&self.ingest, range, epoch, promote, &items) {
                    ReplicateOutcome::Applied { epoch, applied, promoted } => {
                        if promoted {
                            // The hook folded the followed range into the
                            // ingest domain; republish so reads serve it.
                            self.publish_aggregates();
                        }
                        Response::ReplicateAck { epoch, applied }
                    }
                    ReplicateOutcome::Stale { current } => {
                        Response::StaleEpoch { range, current }
                    }
                    ReplicateOutcome::Failed(detail) => Response::Error { detail },
                }
            }
            Request::CatchUp { range, cursor } => {
                let Some(hook) = self.replica_hook() else {
                    return Response::Error { detail: "replication not enabled".into() };
                };
                hook.serve_catch_up(&self.ingest, range, cursor)
            }
        }
    }

    /// Handle one encoded frame: decode, dispatch, encode. Decode
    /// failures come back as an encoded `Error` response — a server never
    /// answers a sound frame with silence.
    pub fn handle_frame(&self, frame: &[u8]) -> Vec<u8> {
        match Request::decode(frame) {
            Ok(request) => self.handle(request).encode(),
            Err(e) => Response::Error { detail: e.to_string() }.encode(),
        }
    }

    /// The entity's published aggregate if it clears the k-anonymity
    /// floor — a snapshot read, no store lock. Aggregates in the
    /// snapshot were accumulated in record-id order at publish time, so
    /// they are bit-identical to computing over a merged store.
    fn aggregate_from(
        &self,
        snapshot: &ReadState,
        entity: EntityId,
    ) -> Option<EntityAggregate> {
        snapshot
            .aggregates
            .get(&entity)
            .filter(|parts| parts.histories as usize >= self.config.min_aggregate_support)
            .map(AggregateParts::finalize)
    }

    /// The mint's public (verifying) key — distributed to devices out of
    /// band in a deployment; exposed here so wallets and examples can
    /// bootstrap. Reads the cached copy; no lock.
    pub fn mint_public_key(&self) -> orsp_crypto::RsaPublicKey {
        self.mint_public.clone()
    }

    /// Ingest counters so far (atomic sums; no lock).
    pub fn ingest_stats(&self) -> IngestStats {
        self.ingest.stats()
    }

    /// Number of ingest shards (matches `ServiceConfig::ingest_shards`).
    pub fn ingest_shards(&self) -> usize {
        self.ingest.shard_count()
    }

    /// Which ingest shard owns a record id — exposed so tests can build
    /// shard-targeted workloads.
    pub fn shard_of(&self, record_id: &orsp_types::RecordId) -> usize {
        self.ingest.shard_of(record_id)
    }

    /// Total blind signatures issued.
    pub fn tokens_issued(&self) -> u64 {
        let _rank = lockorder::enter(rank::MINT);
        self.mint.lock().issued_total()
    }

    /// Tear the service down into its mint and ingest service — the state
    /// a served pipeline needs back to finish its analytics stages. The
    /// ingest shards collapse back into one store.
    pub fn into_parts(self) -> (TokenMint, IngestService) {
        let mint = self.mint.into_inner();
        let (store, stats) = self.ingest.into_merged();
        (mint, IngestService::from_parts(store, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orsp_crypto::{BlindingSession, Token, TokenWallet};
    use orsp_types::rng::rng_for;
    use rand::Rng;
    use orsp_types::{DeviceId, SimDuration, Timestamp};

    fn service(tokens_per_window: u32) -> RspService {
        let mut rng = rng_for(7, "router-test");
        let mint = TokenMint::new(&mut rng, 256, tokens_per_window, SimDuration::DAY);
        RspService::new(
            mint,
            SearchIndex::build(Vec::new()),
            HashMap::new(),
            Ranker::default(),
            ServiceConfig::default(),
        )
    }

    #[test]
    fn ping_pong() {
        let svc = service(4);
        assert_eq!(svc.handle(Request::Ping), Response::Pong);
    }

    #[test]
    fn issue_until_rate_limited() {
        let svc = service(2);
        let mut rng = rng_for(8, "router-test-client");
        let device = DeviceId::new(1);
        let public = svc.mint_public_key();
        for attempt in 0..3 {
            let mut message = [0u8; 32];
            rng.fill(&mut message);
            let (session, blinded) = BlindingSession::blind(&mut rng, &public, &message);
            let response = svc.handle(Request::IssueToken {
                device,
                blinded,
                now: Timestamp::EPOCH,
            });
            match response {
                Response::TokenIssued { signature } if attempt < 2 => {
                    session.unblind(&signature).expect("signature verifies");
                }
                Response::TokenDenied { .. } if attempt == 2 => {}
                other => panic!("attempt {attempt}: unexpected {other:?}"),
            }
        }
        assert_eq!(svc.tokens_issued(), 2);
    }

    #[test]
    fn upload_rejects_forged_token() {
        let svc = service(4);
        let upload = orsp_client::UploadRequest {
            record_id: orsp_types::RecordId::from_bytes([9; 32]),
            entity: EntityId::new(1),
            interaction: orsp_types::Interaction {
                kind: orsp_types::InteractionKind::Visit,
                start: Timestamp::EPOCH,
                duration: SimDuration::minutes(30),
                distance_travelled_m: 100.0,
                group_size: 1,
            },
            token: Token {
                message: [0; 32],
                signature: orsp_crypto::BigUint::from_u64(12345),
            },
            release_at: Timestamp::EPOCH,
        };
        assert_eq!(
            svc.handle(Request::Upload { upload, now: Timestamp::EPOCH }),
            Response::UploadRejected { reason: orsp_server::RejectReason::BadToken }
        );
        assert_eq!(svc.ingest_stats().bad_token, 1);
    }

    #[test]
    fn valid_upload_lands_in_store_and_aggregate_floor_holds() {
        let svc = service(16);
        let public = svc.mint_public_key();
        let mut rng = rng_for(9, "router-test-upload");
        let device = DeviceId::new(3);
        let mut wallet = TokenWallet::new(device, public);
        let entity = EntityId::new(77);
        // One upload: below the k-anonymity floor, so no aggregate.
        let mut issuer = ServiceIssuer(&svc);
        wallet.request_token(&mut rng, &mut issuer, Timestamp::EPOCH).unwrap();
        let upload = orsp_client::UploadRequest {
            record_id: orsp_types::RecordId::from_bytes([1; 32]),
            entity,
            interaction: orsp_types::Interaction {
                kind: orsp_types::InteractionKind::Visit,
                start: Timestamp::EPOCH,
                duration: SimDuration::minutes(45),
                distance_travelled_m: 900.0,
                group_size: 2,
            },
            token: wallet.take_token().unwrap(),
            release_at: Timestamp::EPOCH,
        };
        assert_eq!(
            svc.handle(Request::Upload { upload, now: Timestamp::EPOCH }),
            Response::UploadAccepted
        );
        assert_eq!(svc.ingest_stats().accepted, 1);
        svc.publish_aggregates();
        assert_eq!(
            svc.handle(Request::FetchAggregate { entity }),
            Response::Aggregate { aggregate: None },
            "one history is below the k-anonymity floor even once published"
        );
    }

    #[test]
    fn aggregates_serve_from_the_snapshot_without_store_locks() {
        let svc = service(64);
        let public = svc.mint_public_key();
        let mut rng = rng_for(11, "router-test-aggregate");
        let device = DeviceId::new(5);
        let mut wallet = TokenWallet::new(device, public);
        let entity = EntityId::new(42);
        for i in 0..MIN_AGGREGATE_SUPPORT as u8 {
            let mut issuer = ServiceIssuer(&svc);
            wallet.request_token(&mut rng, &mut issuer, Timestamp::EPOCH).unwrap();
            let upload = orsp_client::UploadRequest {
                record_id: orsp_types::RecordId::from_bytes([i + 1; 32]),
                entity,
                interaction: orsp_types::Interaction {
                    kind: orsp_types::InteractionKind::Visit,
                    start: Timestamp::from_seconds(i as i64 * 3600),
                    duration: SimDuration::minutes(20),
                    distance_travelled_m: 250.0,
                    group_size: 1,
                },
                token: wallet.take_token().unwrap(),
                release_at: Timestamp::EPOCH,
            };
            assert_eq!(
                svc.handle(Request::Upload { upload, now: Timestamp::EPOCH }),
                Response::UploadAccepted
            );
        }
        // Not published yet: the snapshot has no aggregates, however many
        // histories the store holds.
        assert_eq!(
            svc.handle(Request::FetchAggregate { entity }),
            Response::Aggregate { aggregate: None }
        );
        svc.publish_aggregates();
        let locks_after_publish = svc.store_lock_acquisitions();
        let aggregate = match svc.handle(Request::FetchAggregate { entity }) {
            Response::Aggregate { aggregate: Some(agg) } => agg,
            other => panic!("expected a published aggregate, got {other:?}"),
        };
        assert_eq!(aggregate.histories, MIN_AGGREGATE_SUPPORT);
        // Serving aggregates (and searches) is pure snapshot work.
        for _ in 0..50 {
            svc.handle(Request::FetchAggregate { entity });
            svc.handle(Request::Search {
                query: orsp_search::parse_query("dentist near 19120").unwrap(),
            });
        }
        assert_eq!(
            svc.store_lock_acquisitions(),
            locks_after_publish,
            "read path must not take store-shard locks"
        );
    }

    /// Issue tokens by calling the service directly (no transport).
    struct ServiceIssuer<'a>(&'a RspService);

    impl orsp_crypto::TokenIssuer for ServiceIssuer<'_> {
        fn issue(
            &mut self,
            device: DeviceId,
            blinded: &orsp_crypto::BlindedMessage,
            now: Timestamp,
        ) -> orsp_types::Result<orsp_crypto::BlindSignature> {
            match self.0.handle(Request::IssueToken {
                device,
                blinded: blinded.clone(),
                now,
            }) {
                Response::TokenIssued { signature } => Ok(signature),
                Response::TokenDenied { reason } => {
                    Err(orsp_types::OrspError::InvalidToken(reason))
                }
                other => Err(orsp_types::OrspError::Crypto(format!(
                    "unexpected response: {other:?}"
                ))),
            }
        }
    }
}

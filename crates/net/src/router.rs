//! The service router: one `handle(Request) -> Response` facade over the
//! server-side substrates (token mint, ingest service, aggregate
//! publisher, search index).
//!
//! The router owns all mutable server state behind one lock. Request
//! handling is deterministic given the request sequence; cross-device
//! interleavings cannot change any device's outcome because rate-limit
//! accounting is per-device and RSA signing is a pure function — the
//! property the served pipeline's digest-equality test leans on.

use crate::wire::{Request, Response, SearchHit};
use orsp_crypto::TokenMint;
use orsp_obs::{Counter, Histogram, Registry};
use orsp_search::{InferredSummary, Ranker, ReviewSummary, SearchIndex};
use orsp_server::{
    AggregatePublisher, EntityAggregate, IngestService, IngestStats, RejectReason, WalEntry,
    WalSink, MIN_AGGREGATE_SUPPORT,
};
use orsp_types::{EntityId, StarHistogram};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Router tunables.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// k-anonymity floor: aggregates (and per-hit support detail) for
    /// entities with fewer anonymous histories are suppressed.
    pub min_aggregate_support: usize,
    /// Cap on search hits per response.
    pub max_search_results: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            min_aggregate_support: MIN_AGGREGATE_SUPPORT,
            max_search_results: 20,
        }
    }
}

struct ServiceState {
    mint: TokenMint,
    ingest: IngestService,
    index: SearchIndex,
    ranker: Ranker,
    explicit: HashMap<EntityId, StarHistogram>,
    inferred: HashMap<EntityId, StarHistogram>,
    /// Durability hook: every accepted upload is logged here before the
    /// response is sent, so a crash after `UploadAccepted` cannot lose
    /// the record (with `FsyncPolicy::Always`). If the log append
    /// *fails*, the upload is already applied in memory and the client
    /// receives an `Error` that says so — "applied but possibly not
    /// durable", not "rejected".
    wal: Option<Arc<dyn WalSink>>,
}

/// Pre-resolved metric handles for the request hot path: one registry
/// lock at construction, lock-free recording per RPC thereafter.
struct RouterMetrics {
    rpc_ping_us: Histogram,
    rpc_issue_token_us: Histogram,
    rpc_upload_us: Histogram,
    rpc_fetch_aggregate_us: Histogram,
    rpc_search_us: Histogram,
    rpc_stats_us: Histogram,
    mint_issued_total: Counter,
    mint_denied_total: Counter,
    ingest_accepted_total: Counter,
    ingest_bad_token_total: Counter,
    ingest_double_spend_total: Counter,
    ingest_bad_record_total: Counter,
    ingest_entity_mismatch_total: Counter,
    durability_errors_total: Counter,
}

impl RouterMetrics {
    fn resolve(obs: &Registry) -> Self {
        RouterMetrics {
            rpc_ping_us: obs.histogram("rpc_ping_us"),
            rpc_issue_token_us: obs.histogram("rpc_issue_token_us"),
            rpc_upload_us: obs.histogram("rpc_upload_us"),
            rpc_fetch_aggregate_us: obs.histogram("rpc_fetch_aggregate_us"),
            rpc_search_us: obs.histogram("rpc_search_us"),
            rpc_stats_us: obs.histogram("rpc_stats_us"),
            mint_issued_total: obs.counter("mint_issued_total"),
            mint_denied_total: obs.counter("mint_denied_total"),
            ingest_accepted_total: obs.counter("ingest_accepted_total"),
            ingest_bad_token_total: obs.counter("ingest_bad_token_total"),
            ingest_double_spend_total: obs.counter("ingest_double_spend_total"),
            ingest_bad_record_total: obs.counter("ingest_bad_record_total"),
            ingest_entity_mismatch_total: obs.counter("ingest_entity_mismatch_total"),
            durability_errors_total: obs.counter("durability_errors_total"),
        }
    }

    fn reject_counter(&self, reason: RejectReason) -> &Counter {
        match reason {
            RejectReason::BadToken => &self.ingest_bad_token_total,
            RejectReason::DoubleSpend => &self.ingest_double_spend_total,
            RejectReason::BadRecord => &self.ingest_bad_record_total,
            RejectReason::EntityMismatch => &self.ingest_entity_mismatch_total,
        }
    }
}

/// The wire-facing RSP service: every RPC lands here.
pub struct RspService {
    state: Mutex<ServiceState>,
    /// Serializes WAL appends in admission order without holding the
    /// service lock across the disk fsync: an upload acquires this
    /// *before* releasing `state`, so the log order equals the apply
    /// order (replay would reject same-record appends out of order),
    /// while search/ping/token RPCs proceed during the fsync.
    wal_order: Mutex<()>,
    config: ServiceConfig,
    obs: Arc<Registry>,
    metrics: RouterMetrics,
}

impl RspService {
    /// A service over a token mint, a search index, and the explicit
    /// review histograms the index ranks with. The history store starts
    /// empty — it fills from `Upload` requests.
    pub fn new(
        mint: TokenMint,
        index: SearchIndex,
        explicit: HashMap<EntityId, StarHistogram>,
        ranker: Ranker,
        config: ServiceConfig,
    ) -> Self {
        Self::with_ingest(mint, index, explicit, ranker, config, IngestService::new())
    }

    /// A service whose history store starts from `ingest` — how a
    /// daemon resumes serving after crash recovery rebuilt its state
    /// from the durable log.
    pub fn with_ingest(
        mint: TokenMint,
        index: SearchIndex,
        explicit: HashMap<EntityId, StarHistogram>,
        ranker: Ranker,
        config: ServiceConfig,
        ingest: IngestService,
    ) -> Self {
        let obs = Arc::new(Registry::new());
        let metrics = RouterMetrics::resolve(&obs);
        RspService {
            state: Mutex::new(ServiceState {
                mint,
                ingest,
                index,
                ranker,
                explicit,
                inferred: HashMap::new(),
                wal: None,
            }),
            wal_order: Mutex::new(()),
            config,
            obs,
            metrics,
        }
    }

    /// Attach a durability sink: from now on every accepted upload is
    /// logged through it before the `UploadAccepted` response exists.
    ///
    /// Failure semantics: a sink error after admission produces
    /// `Response::Error` meaning *applied but possibly not durable* —
    /// the token is spent and the interaction is stored in memory, so a
    /// client retrying with a fresh token would append the interaction
    /// twice. The error is a durability warning, not a rejection.
    pub fn set_durability(&self, sink: Arc<dyn WalSink>) {
        self.state.lock().wal = Some(sink);
    }

    /// This service's metric registry. The `NetServer` fronting the
    /// service records its accept/shed/protocol counters here too, so a
    /// `Stats` RPC reports the whole daemon in one snapshot.
    pub fn obs(&self) -> &Arc<Registry> {
        &self.obs
    }

    /// Publish inferred-opinion histograms (e.g. after an inference pass)
    /// so search ranking blends them in.
    pub fn publish_inferred(&self, inferred: HashMap<EntityId, StarHistogram>) {
        self.state.lock().inferred = inferred;
    }

    /// Handle one decoded request, recording per-RPC latency and outcome
    /// counters into the service registry.
    pub fn handle(&self, request: Request) -> Response {
        let hist = match &request {
            Request::Ping => &self.metrics.rpc_ping_us,
            Request::IssueToken { .. } => &self.metrics.rpc_issue_token_us,
            Request::Upload { .. } => &self.metrics.rpc_upload_us,
            Request::FetchAggregate { .. } => &self.metrics.rpc_fetch_aggregate_us,
            Request::Search { .. } => &self.metrics.rpc_search_us,
            Request::Stats => &self.metrics.rpc_stats_us,
        };
        let span = self.obs.span_into(hist);
        let response = self.dispatch(request);
        span.end();
        response
    }

    fn dispatch(&self, request: Request) -> Response {
        match request {
            Request::Ping => Response::Pong,
            Request::IssueToken { device, blinded, now } => {
                let mut state = self.state.lock();
                match state.mint.issue(device, &blinded, now) {
                    Ok(signature) => {
                        self.metrics.mint_issued_total.inc();
                        Response::TokenIssued { signature }
                    }
                    Err(e) => {
                        self.metrics.mint_denied_total.inc();
                        Response::TokenDenied { reason: e.to_string() }
                    }
                }
            }
            Request::Upload { upload, now } => {
                let mut guard = self.state.lock();
                let state = &mut *guard;
                match state.ingest.ingest(&upload, &mut state.mint, now) {
                    Ok(()) => {
                        self.metrics.ingest_accepted_total.inc();
                        let wal = state.wal.clone();
                        if let Some(wal) = wal {
                            let entry = WalEntry {
                                record_id: upload.record_id,
                                entity: upload.entity,
                                interaction: upload.interaction,
                            };
                            // Lock handoff: take the WAL order lock,
                            // then release the service lock, so the
                            // fsync (under FsyncPolicy::Always, one per
                            // accepted upload) stalls only other
                            // uploads' logging — never search, ping, or
                            // token issuance.
                            let order = self.wal_order.lock();
                            drop(guard);
                            let logged = wal.log_append(&entry);
                            drop(order);
                            if let Err(e) = logged {
                                // The upload is applied in memory (the
                                // token is spent, the interaction is
                                // stored) but may not survive a
                                // restart. Surface that honestly; the
                                // client must NOT retry with a fresh
                                // token — the retry would be a second
                                // append, not a replacement.
                                self.metrics.durability_errors_total.inc();
                                return Response::Error {
                                    detail: format!(
                                        "durability failure (upload applied but \
                                         possibly not durable; do not retry): {e}"
                                    ),
                                };
                            }
                        }
                        Response::UploadAccepted
                    }
                    Err(reason) => {
                        self.metrics.reject_counter(reason).inc();
                        Response::UploadRejected { reason }
                    }
                }
            }
            Request::FetchAggregate { entity } => {
                let state = self.state.lock();
                Response::Aggregate { aggregate: self.published_aggregate(&state, entity) }
            }
            Request::Search { query } => {
                let state = self.state.lock();
                let candidates: Vec<(EntityId, ReviewSummary, InferredSummary)> = state
                    .index
                    .query(&query)
                    .into_iter()
                    .map(|listing| {
                        let explicit = ReviewSummary {
                            histogram: state
                                .explicit
                                .get(&listing.id)
                                .cloned()
                                .unwrap_or_default(),
                        };
                        let mut inferred = InferredSummary {
                            histogram: state
                                .inferred
                                .get(&listing.id)
                                .cloned()
                                .unwrap_or_default(),
                            ..InferredSummary::default()
                        };
                        if let Some(agg) = self.published_aggregate(&state, listing.id) {
                            inferred = inferred.with_aggregate(&agg);
                        }
                        (listing.id, explicit, inferred)
                    })
                    .collect();
                let mut ranked = state.ranker.rank(candidates);
                ranked.truncate(self.config.max_search_results);
                Response::SearchResults {
                    hits: ranked
                        .into_iter()
                        .map(|r| SearchHit {
                            entity: r.entity,
                            score: r.score,
                            explicit: r.explicit.histogram,
                            inferred: r.inferred.histogram,
                            histories: r.inferred.histories as u64,
                            repeat_fraction: r.inferred.repeat_fraction,
                        })
                        .collect(),
                }
            }
            Request::Stats => Response::Stats { snapshot: self.obs.snapshot() },
        }
    }

    /// Handle one encoded frame: decode, dispatch, encode. Decode
    /// failures come back as an encoded `Error` response — a server never
    /// answers a sound frame with silence.
    pub fn handle_frame(&self, frame: &[u8]) -> Vec<u8> {
        match Request::decode(frame) {
            Ok(request) => self.handle(request).encode(),
            Err(e) => Response::Error { detail: e.to_string() }.encode(),
        }
    }

    /// The entity's aggregate if it clears the k-anonymity floor.
    fn published_aggregate(
        &self,
        state: &ServiceState,
        entity: EntityId,
    ) -> Option<EntityAggregate> {
        let agg = AggregatePublisher::for_entity(state.ingest.store(), entity);
        if agg.histories >= self.config.min_aggregate_support {
            Some(agg)
        } else {
            None
        }
    }

    /// The mint's public (verifying) key — distributed to devices out of
    /// band in a deployment; exposed here so wallets and examples can
    /// bootstrap.
    pub fn mint_public_key(&self) -> orsp_crypto::RsaPublicKey {
        self.state.lock().mint.public_key().clone()
    }

    /// Ingest counters so far.
    pub fn ingest_stats(&self) -> IngestStats {
        self.state.lock().ingest.stats()
    }

    /// Total blind signatures issued.
    pub fn tokens_issued(&self) -> u64 {
        self.state.lock().mint.issued_total()
    }

    /// Tear the service down into its mint and ingest service — the state
    /// a served pipeline needs back to finish its analytics stages.
    pub fn into_parts(self) -> (TokenMint, IngestService) {
        let state = self.state.into_inner();
        (state.mint, state.ingest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orsp_crypto::{BlindingSession, Token, TokenWallet};
    use orsp_types::rng::rng_for;
    use rand::Rng;
    use orsp_types::{DeviceId, SimDuration, Timestamp};

    fn service(tokens_per_window: u32) -> RspService {
        let mut rng = rng_for(7, "router-test");
        let mint = TokenMint::new(&mut rng, 256, tokens_per_window, SimDuration::DAY);
        RspService::new(
            mint,
            SearchIndex::build(Vec::new()),
            HashMap::new(),
            Ranker::default(),
            ServiceConfig::default(),
        )
    }

    #[test]
    fn ping_pong() {
        let svc = service(4);
        assert_eq!(svc.handle(Request::Ping), Response::Pong);
    }

    #[test]
    fn issue_until_rate_limited() {
        let svc = service(2);
        let mut rng = rng_for(8, "router-test-client");
        let device = DeviceId::new(1);
        let public = {
            // Grab the mint's public key through a round trip: issue one
            // token and verify the wallet accepts the signature.
            svc.state.lock().mint.public_key().clone()
        };
        for attempt in 0..3 {
            let mut message = [0u8; 32];
            rng.fill(&mut message);
            let (session, blinded) = BlindingSession::blind(&mut rng, &public, &message);
            let response = svc.handle(Request::IssueToken {
                device,
                blinded,
                now: Timestamp::EPOCH,
            });
            match response {
                Response::TokenIssued { signature } if attempt < 2 => {
                    session.unblind(&signature).expect("signature verifies");
                }
                Response::TokenDenied { .. } if attempt == 2 => {}
                other => panic!("attempt {attempt}: unexpected {other:?}"),
            }
        }
        assert_eq!(svc.tokens_issued(), 2);
    }

    #[test]
    fn upload_rejects_forged_token() {
        let svc = service(4);
        let upload = orsp_client::UploadRequest {
            record_id: orsp_types::RecordId::from_bytes([9; 32]),
            entity: EntityId::new(1),
            interaction: orsp_types::Interaction {
                kind: orsp_types::InteractionKind::Visit,
                start: Timestamp::EPOCH,
                duration: SimDuration::minutes(30),
                distance_travelled_m: 100.0,
                group_size: 1,
            },
            token: Token {
                message: [0; 32],
                signature: orsp_crypto::BigUint::from_u64(12345),
            },
            release_at: Timestamp::EPOCH,
        };
        assert_eq!(
            svc.handle(Request::Upload { upload, now: Timestamp::EPOCH }),
            Response::UploadRejected { reason: orsp_server::RejectReason::BadToken }
        );
        assert_eq!(svc.ingest_stats().bad_token, 1);
    }

    #[test]
    fn valid_upload_lands_in_store_and_aggregate_floor_holds() {
        let svc = service(16);
        let public = svc.state.lock().mint.public_key().clone();
        let mut rng = rng_for(9, "router-test-upload");
        let device = DeviceId::new(3);
        let mut wallet = TokenWallet::new(device, public);
        let entity = EntityId::new(77);
        // One upload: below the k-anonymity floor, so no aggregate.
        let mut issuer = ServiceIssuer(&svc);
        wallet.request_token(&mut rng, &mut issuer, Timestamp::EPOCH).unwrap();
        let upload = orsp_client::UploadRequest {
            record_id: orsp_types::RecordId::from_bytes([1; 32]),
            entity,
            interaction: orsp_types::Interaction {
                kind: orsp_types::InteractionKind::Visit,
                start: Timestamp::EPOCH,
                duration: SimDuration::minutes(45),
                distance_travelled_m: 900.0,
                group_size: 2,
            },
            token: wallet.take_token().unwrap(),
            release_at: Timestamp::EPOCH,
        };
        assert_eq!(
            svc.handle(Request::Upload { upload, now: Timestamp::EPOCH }),
            Response::UploadAccepted
        );
        assert_eq!(svc.ingest_stats().accepted, 1);
        assert_eq!(
            svc.handle(Request::FetchAggregate { entity }),
            Response::Aggregate { aggregate: None },
            "one history is below the k-anonymity floor"
        );
    }

    /// Issue tokens by calling the service directly (no transport).
    struct ServiceIssuer<'a>(&'a RspService);

    impl orsp_crypto::TokenIssuer for ServiceIssuer<'_> {
        fn issue(
            &mut self,
            device: DeviceId,
            blinded: &orsp_crypto::BlindedMessage,
            now: Timestamp,
        ) -> orsp_types::Result<orsp_crypto::BlindSignature> {
            match self.0.handle(Request::IssueToken {
                device,
                blinded: blinded.clone(),
                now,
            }) {
                Response::TokenIssued { signature } => Ok(signature),
                Response::TokenDenied { reason } => {
                    Err(orsp_types::OrspError::InvalidToken(reason))
                }
                other => Err(orsp_types::OrspError::Crypto(format!(
                    "unexpected response: {other:?}"
                ))),
            }
        }
    }
}

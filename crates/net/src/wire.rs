//! The RSP wire protocol: length-prefixed, CRC-checked binary frames.
//!
//! One frame carries one message:
//!
//! ```text
//! magic "ORSP" (4) | version (1) | payload len (4, LE) | crc32 (4, LE) | payload
//! ```
//!
//! The CRC covers the payload (same polynomial as the server WAL). The
//! payload's first byte is the message tag; all integers are little
//! endian; `BigUint`s travel as `u16` length + big-endian magnitude;
//! strings as `u16` length + UTF-8. Decoding a hostile buffer returns a
//! typed [`WireError`] — it never panics, never over-allocates beyond the
//! frame cap, and never reads past the declared length.
//!
//! The four RPCs mirror the paper's API surface: blind-token issue,
//! anonymous record upload (update-only — there is deliberately no
//! "fetch record" request), aggregate fetch, and search. `Busy` is the
//! server's explicit load-shed response.

use crate::error::WireError;
use bytes::{BufMut, BytesMut};
use orsp_client::UploadRequest;
use orsp_crypto::{BigUint, BlindSignature, BlindedMessage, Token};
use orsp_obs::{
    EventSnapshot, HistogramSnapshot, SpanRecord, StatsSnapshot, TraceContext, TraceRecord,
};
use orsp_search::SearchQuery;
use orsp_server::{crc32, AggregateParts, EntityAggregate, RejectReason, WalBatchItem, WalEntry};
use orsp_types::{
    Category, DeviceId, EntityId, Interaction, InteractionKind, RecordId, SimDuration,
    StarHistogram, Timestamp,
};

/// Frame magic: "ORSP".
pub const MAGIC: [u8; 4] = *b"ORSP";
/// The original frame version: fixed 13-byte header, no flags.
pub const V1: u8 = 1;
/// Protocol version this endpoint speaks: v2 adds a flags byte and an
/// optional trace-context block. Inbound v1 frames are still accepted.
pub const VERSION: u8 = 2;
/// v1 header bytes: magic, version, length, CRC.
pub const HEADER_LEN: usize = 13;
/// v2 header bytes: magic, version, flags, length, CRC.
pub const HEADER_LEN_V2: usize = 14;
/// Magic + version — the prefix shared by every frame version.
pub const PREFIX_LEN: usize = 5;
/// The optional trace-context block: trace id (16) + span id (8) +
/// sampled flag (1).
pub const TRACE_CTX_LEN: usize = 25;
/// v2 flags bit: a trace-context block follows the header.
pub const FLAG_TRACE: u8 = 0x01;
/// Hard cap on payload size. Anything larger is rejected before any
/// allocation happens — a hostile length prefix cannot balloon memory.
pub const MAX_PAYLOAD: usize = 1 << 20;

// ---------------------------------------------------------------- frames

/// Wrap a payload in a v2 frame (no trace context).
///
/// Payloads built by this crate are far below [`MAX_PAYLOAD`]; this is
/// debug-asserted rather than returned as an error because an oversized
/// *outgoing* frame is a bug in the encoder, not a runtime condition.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    frame_traced(payload, None)
}

/// Wrap a payload in a v2 frame, stamping a trace context between the
/// header and the payload when one is given. The CRC covers the payload
/// only — the context is routing metadata, corruption there cannot
/// corrupt a request.
pub fn frame_traced(payload: &[u8], ctx: Option<&TraceContext>) -> Vec<u8> {
    debug_assert!(payload.len() <= MAX_PAYLOAD);
    let extra = if ctx.is_some() { TRACE_CTX_LEN } else { 0 };
    let mut buf = BytesMut::with_capacity(HEADER_LEN_V2 + extra + payload.len());
    buf.put_slice(&MAGIC);
    buf.put_u8(VERSION);
    buf.put_u8(if ctx.is_some() { FLAG_TRACE } else { 0 });
    buf.put_u32_le(payload.len() as u32);
    buf.put_u32_le(crc32(payload));
    if let Some(ctx) = ctx {
        buf.put_slice(&ctx.trace_id.to_le_bytes());
        buf.put_u64_le(ctx.span_id);
        buf.put_u8(ctx.sampled as u8);
    }
    buf.put_slice(payload);
    buf.freeze().to_vec()
}

/// Wrap a payload in a v1 frame — what a pre-trace peer sends. Kept so
/// compatibility tests (and any old client) exercise the v1 decode path.
pub fn frame_v1(payload: &[u8]) -> Vec<u8> {
    debug_assert!(payload.len() <= MAX_PAYLOAD);
    let mut buf = BytesMut::with_capacity(HEADER_LEN + payload.len());
    buf.put_slice(&MAGIC);
    buf.put_u8(V1);
    buf.put_u32_le(payload.len() as u32);
    buf.put_u32_le(crc32(payload));
    buf.put_slice(payload);
    buf.freeze().to_vec()
}

/// Validate the 5-byte magic + version prefix; returns the version (1
/// or 2). Streaming readers use this to learn how much header remains.
pub fn parse_prefix(prefix: &[u8; PREFIX_LEN]) -> Result<u8, WireError> {
    let mut magic = [0u8; 4];
    magic.copy_from_slice(&prefix[0..4]);
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let version = prefix[4];
    if version != V1 && version != VERSION {
        return Err(WireError::BadVersion(version));
    }
    Ok(version)
}

/// Parse the rest of a v1 header (after the prefix): `(len, crc)`.
pub fn parse_v1_rest(rest: &[u8; HEADER_LEN - PREFIX_LEN]) -> Result<(usize, u32), WireError> {
    let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
    if len > MAX_PAYLOAD {
        return Err(WireError::Oversized { len });
    }
    let crc = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]);
    Ok((len, crc))
}

/// Parse the rest of a v2 header (after the prefix):
/// `(trace_context_follows, len, crc)`. Unknown flag bits are a typed
/// error — a v3 sender must not be half-understood.
pub fn parse_v2_rest(
    rest: &[u8; HEADER_LEN_V2 - PREFIX_LEN],
) -> Result<(bool, usize, u32), WireError> {
    let flags = rest[0];
    if flags & !FLAG_TRACE != 0 {
        return Err(WireError::Malformed("unknown frame flags"));
    }
    let len = u32::from_le_bytes([rest[1], rest[2], rest[3], rest[4]]) as usize;
    if len > MAX_PAYLOAD {
        return Err(WireError::Oversized { len });
    }
    let crc = u32::from_le_bytes([rest[5], rest[6], rest[7], rest[8]]);
    Ok((flags & FLAG_TRACE != 0, len, crc))
}

/// Decode a trace-context block.
pub fn parse_trace_ctx(block: &[u8; TRACE_CTX_LEN]) -> Result<TraceContext, WireError> {
    let mut id = [0u8; 16];
    id.copy_from_slice(&block[0..16]);
    let trace_id = u128::from_le_bytes(id);
    let mut span = [0u8; 8];
    span.copy_from_slice(&block[16..24]);
    let span_id = u64::from_le_bytes(span);
    let sampled = match block[24] {
        0 => false,
        1 => true,
        _ => return Err(WireError::Malformed("bad sampled flag")),
    };
    Ok(TraceContext { trace_id, span_id, sampled })
}

/// Verify a received payload against the CRC from its header.
pub fn check_crc(payload: &[u8], stored: u32) -> Result<(), WireError> {
    let computed = crc32(payload);
    if computed != stored {
        return Err(WireError::BadCrc { stored, computed });
    }
    Ok(())
}

/// Decode one frame from a complete buffer: returns the payload slice,
/// the trace context if the sender stamped one, and the total bytes
/// consumed. Accepts both v1 and v2 frames; typed errors for every
/// malformation.
pub fn decode_frame_traced(
    buf: &[u8],
) -> Result<(&[u8], Option<TraceContext>, usize), WireError> {
    if buf.len() < PREFIX_LEN {
        return Err(WireError::Truncated { have: buf.len(), need: PREFIX_LEN });
    }
    let mut prefix = [0u8; PREFIX_LEN];
    prefix.copy_from_slice(&buf[..PREFIX_LEN]);
    let version = parse_prefix(&prefix)?;
    let (header_len, traced, len, crc) = if version == V1 {
        if buf.len() < HEADER_LEN {
            return Err(WireError::Truncated { have: buf.len(), need: HEADER_LEN });
        }
        let mut rest = [0u8; HEADER_LEN - PREFIX_LEN];
        rest.copy_from_slice(&buf[PREFIX_LEN..HEADER_LEN]);
        let (len, crc) = parse_v1_rest(&rest)?;
        (HEADER_LEN, false, len, crc)
    } else {
        if buf.len() < HEADER_LEN_V2 {
            return Err(WireError::Truncated { have: buf.len(), need: HEADER_LEN_V2 });
        }
        let mut rest = [0u8; HEADER_LEN_V2 - PREFIX_LEN];
        rest.copy_from_slice(&buf[PREFIX_LEN..HEADER_LEN_V2]);
        let (traced, len, crc) = parse_v2_rest(&rest)?;
        (HEADER_LEN_V2, traced, len, crc)
    };
    let mut at = header_len;
    let ctx = if traced {
        if buf.len() < at + TRACE_CTX_LEN {
            return Err(WireError::Truncated { have: buf.len(), need: at + TRACE_CTX_LEN });
        }
        let mut block = [0u8; TRACE_CTX_LEN];
        block.copy_from_slice(&buf[at..at + TRACE_CTX_LEN]);
        at += TRACE_CTX_LEN;
        Some(parse_trace_ctx(&block)?)
    } else {
        None
    };
    let need = at + len;
    if buf.len() < need {
        return Err(WireError::Truncated { have: buf.len(), need });
    }
    let payload = &buf[at..need];
    check_crc(payload, crc)?;
    Ok((payload, ctx, need))
}

/// [`decode_frame_traced`], discarding the trace context — for readers
/// (responses, tests) that don't care who traced what.
pub fn decode_frame(buf: &[u8]) -> Result<(&[u8], usize), WireError> {
    let (payload, _ctx, consumed) = decode_frame_traced(buf)?;
    Ok((payload, consumed))
}

// ------------------------------------------------------------- messages

/// A client-to-server request: the RSP's four RPCs plus a liveness probe.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Authenticated blind-token issuance (§4.2 rate limiting): the mint
    /// sees the device and a blinded message, never the token itself.
    IssueToken {
        /// The requesting device (issuance is authenticated).
        device: DeviceId,
        /// The blinded token digest to sign.
        blinded: BlindedMessage,
        /// Simulated request time (drives the rate window).
        now: Timestamp,
    },
    /// Anonymous history upload. Update-only by design: no RPC retrieves
    /// an individual record back out.
    Upload {
        /// The anonymous upload (record id, interaction, spend token).
        upload: UploadRequest,
        /// Simulated delivery time (mix exit).
        now: Timestamp,
    },
    /// Fetch the published aggregate for one entity (the §4.2 egress).
    FetchAggregate {
        /// The entity.
        entity: EntityId,
    },
    /// Ranked search over a zipcode + category.
    Search {
        /// The query.
        query: SearchQuery,
    },
    /// Fetch the server's live metric snapshot (counters, gauges, and
    /// latency percentiles from the service registry).
    Stats,
    /// Cluster-internal: fetch the *floor-unfiltered* mergeable partial
    /// aggregate for one entity. A front-door proxy scatter-gathers this
    /// across backends and applies the k-anonymity floor to the merged
    /// whole — applying it per-backend would suppress entities whose
    /// support only clears the floor in total. Unfloored partials must
    /// never reach the public: backends are firewalled to the proxy
    /// tier, and the proxy itself refuses this RPC unless explicitly
    /// configured as a cluster-internal tier.
    AggregateParts {
        /// The entity.
        entity: EntityId,
    },
    /// Cluster-internal: [`Request::AggregateParts`] for many entities
    /// in one exchange. The proxy's search support refill asks for every
    /// hit at once — one fan-out round instead of one per hit. Same
    /// exposure rules as the single-entity form.
    AggregatePartsBatch {
        /// The entities, in the order the answers must come back.
        entities: Vec<EntityId>,
    },
    /// Drain completed sampled traces from the peer's span collector.
    /// Against a proxy, the answer merges the proxy's own spans with
    /// every backend's into stitched cross-process trees.
    Traces,
    /// Cluster-internal: a range primary forwarding a batch of accepted
    /// writes (history entries plus their spent-token keys) to a
    /// follower of `range` at `epoch`. The follower appends the batch
    /// through its group-commit path (one fsync) and answers
    /// [`Response::ReplicateAck`] — or [`Response::StaleEpoch`] if it
    /// has already adopted a higher epoch for the range, which tells a
    /// rejoining stale primary to demote itself. With `promote` set the
    /// sender is the proxy electing this node primary for `range` at
    /// the (bumped) `epoch`; `items` is empty in that case.
    Replicate {
        /// The hash range the batch belongs to.
        range: u32,
        /// The sender's replication epoch for the range.
        epoch: u64,
        /// Promotion marker: adopt `epoch` and start serving `range`.
        promote: bool,
        /// The accepted writes, in admission order.
        items: Vec<WalBatchItem>,
    },
    /// Cluster-internal: pull one chunk of `range`'s authoritative
    /// state from its primary, for anti-entropy catch-up. `cursor` is
    /// an opaque resume position (0 starts a scan); the reply is a
    /// [`Response::CatchUpChunk`] whose final chunk carries the
    /// primary's `state_digest` so the follower can prove its rebuilt
    /// state bit-identical.
    CatchUp {
        /// The hash range to stream.
        range: u32,
        /// Resume position from the previous chunk (0 = start).
        cursor: u64,
    },
}

/// A server-to-client response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Liveness reply.
    Pong,
    /// The blind signature over the requested message.
    TokenIssued {
        /// Signature to unblind client-side.
        signature: BlindSignature,
    },
    /// Issuance refused (per-device rate limit exhausted).
    TokenDenied {
        /// Human-readable refusal.
        reason: String,
    },
    /// Upload accepted and stored.
    UploadAccepted,
    /// Upload refused by admission checks.
    UploadRejected {
        /// Which check failed.
        reason: RejectReason,
    },
    /// The entity's aggregate, or `None` below the k-anonymity floor.
    Aggregate {
        /// The aggregate, if published.
        aggregate: Option<EntityAggregate>,
    },
    /// Ranked search results.
    SearchResults {
        /// Hits, best first.
        hits: Vec<SearchHit>,
    },
    /// The server's metric snapshot at the instant the request was
    /// handled.
    Stats {
        /// Sorted counters, gauges, and histogram summaries.
        snapshot: StatsSnapshot,
    },
    /// Explicit load shed: the accept queue is full. Never silent — a
    /// shed connection always receives this frame before close.
    Busy,
    /// The server could not process the request (decode failure or
    /// internal error), reported rather than dropped.
    Error {
        /// What went wrong.
        detail: String,
    },
    /// Cluster-internal: the entity's floor-unfiltered partial aggregate
    /// from this backend's published snapshot, or `None` if the entity
    /// has no published histories here.
    AggregateParts {
        /// The mergeable accumulators.
        parts: Option<AggregateParts>,
    },
    /// Cluster-internal: one partial aggregate (or `None`) per entity of
    /// an [`Request::AggregatePartsBatch`], in request order, all read
    /// from a single published snapshot.
    AggregatePartsBatch {
        /// Per requested entity, in request order.
        parts: Vec<Option<AggregateParts>>,
    },
    /// Completed traces drained by a [`Request::Traces`]. Each drain
    /// returns a trace at most once — polling moves data, it does not
    /// re-read it.
    Traces {
        /// The drained traces, spans sorted by start time.
        traces: Vec<TraceRecord>,
    },
    /// Cluster-internal: a follower durably applied a
    /// [`Request::Replicate`] batch.
    ReplicateAck {
        /// The follower's (possibly just-adopted) epoch for the range.
        epoch: u64,
        /// Entries applied from this batch.
        applied: u64,
    },
    /// Cluster-internal: a [`Request::Replicate`] was refused because
    /// the receiver has adopted a higher epoch for the range. The
    /// fencing signal — a stale primary receiving this demotes itself.
    StaleEpoch {
        /// The range the refused batch was for.
        range: u32,
        /// The epoch the receiver holds; strictly greater than the
        /// sender's.
        current: u64,
    },
    /// Cluster-internal: one chunk of a [`Request::CatchUp`] stream.
    CatchUpChunk {
        /// The primary's replication epoch for the range.
        epoch: u64,
        /// Whether the answering node currently serves the range as
        /// primary — lets a restarting node probe its peers' roles.
        primary: bool,
        /// Final chunk: the stream is complete and `digest` is valid.
        done: bool,
        /// On the final chunk, the primary's `state_digest` over the
        /// range (epoch-free, so replicas at different fencing epochs
        /// still compare equal). Zero on non-final chunks.
        digest: u32,
        /// Cursor to pass in the next [`Request::CatchUp`].
        next_cursor: u64,
        /// Full histories, in sorted record-id order.
        records: Vec<CatchRecord>,
        /// Spent-token ledger keys, in sorted order, streamed after all
        /// records.
        tokens: Vec<[u8; 32]>,
    },
    /// The peer cannot serve this request at all right now — a dead or
    /// demoted backend, not transient load. Unlike [`Response::Busy`],
    /// clients fail fast instead of burning retry/backoff budget.
    Unavailable {
        /// What is unavailable.
        detail: String,
    },
}

/// One full history in a [`Response::CatchUpChunk`]: the checkpoint's
/// record layout (id, entity, interactions in append order) so the
/// follower can replay it through the normal engine append path.
#[derive(Debug, Clone, PartialEq)]
pub struct CatchRecord {
    /// The anonymous record id.
    pub record_id: RecordId,
    /// The entity the record concerns.
    pub entity: EntityId,
    /// The record's interactions, in append order.
    pub interactions: Vec<Interaction>,
}

/// One search result on the wire: the ranked entity with both opinion
/// summaries flattened.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchHit {
    /// The entity.
    pub entity: EntityId,
    /// Blended ranking score.
    pub score: f64,
    /// Histogram of explicit review stars.
    pub explicit: StarHistogram,
    /// Histogram of inferred opinion stars.
    pub inferred: StarHistogram,
    /// Anonymous histories behind the inferences.
    pub histories: u64,
    /// Fraction of histories with repeat interactions.
    pub repeat_fraction: f64,
}

// Request tags.
const T_PING: u8 = 0x01;
const T_ISSUE: u8 = 0x02;
const T_UPLOAD: u8 = 0x03;
const T_AGGREGATE: u8 = 0x04;
const T_SEARCH: u8 = 0x05;
const T_STATS: u8 = 0x06;
const T_AGG_PARTS: u8 = 0x07;
const T_AGG_PARTS_BATCH: u8 = 0x08;
const T_TRACES: u8 = 0x09;
const T_REPLICATE: u8 = 0x0A;
const T_CATCH_UP: u8 = 0x0B;
// Response tags (high bit set).
const T_PONG: u8 = 0x81;
const T_ISSUED: u8 = 0x82;
const T_DENIED: u8 = 0x83;
const T_UP_OK: u8 = 0x84;
const T_UP_REJ: u8 = 0x85;
const T_AGG: u8 = 0x86;
const T_RESULTS: u8 = 0x87;
const T_BUSY: u8 = 0x88;
const T_ERROR: u8 = 0x89;
const T_STATS_RESP: u8 = 0x8A;
const T_AGG_PARTS_RESP: u8 = 0x8B;
const T_AGG_PARTS_BATCH_RESP: u8 = 0x8C;
const T_TRACES_RESP: u8 = 0x8D;
const T_REPL_ACK: u8 = 0x8E;
const T_STALE_EPOCH: u8 = 0x8F;
const T_CATCH_CHUNK: u8 = 0x90;
const T_UNAVAILABLE: u8 = 0x91;

impl Request {
    /// Encode into a complete frame.
    pub fn encode(&self) -> Vec<u8> {
        frame(&self.encode_payload())
    }

    /// Encode into a complete frame, stamping a trace context when one
    /// is active.
    pub fn encode_traced(&self, ctx: Option<&TraceContext>) -> Vec<u8> {
        frame_traced(&self.encode_payload(), ctx)
    }

    /// Decode from a buffer holding exactly one frame.
    pub fn decode(buf: &[u8]) -> Result<Request, WireError> {
        let (payload, consumed) = decode_frame(buf)?;
        if consumed != buf.len() {
            return Err(WireError::Malformed("trailing bytes after frame"));
        }
        Request::decode_payload(payload)
    }

    /// Encode the payload (tag + body), unframed.
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(96);
        match self {
            Request::Ping => buf.put_u8(T_PING),
            Request::IssueToken { device, blinded, now } => {
                buf.put_u8(T_ISSUE);
                buf.put_u64_le(device.raw());
                put_biguint(&mut buf, &blinded.0);
                buf.put_i64_le(now.as_seconds());
            }
            Request::Upload { upload, now } => {
                buf.put_u8(T_UPLOAD);
                put_upload(&mut buf, upload);
                buf.put_i64_le(now.as_seconds());
            }
            Request::FetchAggregate { entity } => {
                buf.put_u8(T_AGGREGATE);
                buf.put_u64_le(entity.raw());
            }
            Request::Search { query } => {
                buf.put_u8(T_SEARCH);
                buf.put_u32_le(query.zipcode);
                buf.put_u16_le(query.category.stable_index() as u16);
            }
            Request::Stats => buf.put_u8(T_STATS),
            Request::AggregateParts { entity } => {
                buf.put_u8(T_AGG_PARTS);
                buf.put_u64_le(entity.raw());
            }
            Request::AggregatePartsBatch { entities } => {
                buf.put_u8(T_AGG_PARTS_BATCH);
                debug_assert!(entities.len() <= u16::MAX as usize);
                buf.put_u16_le(entities.len() as u16);
                for entity in entities {
                    buf.put_u64_le(entity.raw());
                }
            }
            Request::Traces => buf.put_u8(T_TRACES),
            Request::Replicate { range, epoch, promote, items } => {
                buf.put_u8(T_REPLICATE);
                buf.put_u32_le(*range);
                buf.put_u64_le(*epoch);
                buf.put_u8(*promote as u8);
                debug_assert!(items.len() <= u32::MAX as usize);
                buf.put_u32_le(items.len() as u32);
                for item in items {
                    match &item.spend {
                        None => buf.put_u8(0),
                        Some(key) => {
                            buf.put_u8(1);
                            buf.put_slice(key);
                        }
                    }
                    buf.put_slice(item.entry.record_id.as_bytes());
                    buf.put_u64_le(item.entry.entity.raw());
                    put_interaction(&mut buf, &item.entry.interaction);
                }
            }
            Request::CatchUp { range, cursor } => {
                buf.put_u8(T_CATCH_UP);
                buf.put_u32_le(*range);
                buf.put_u64_le(*cursor);
            }
        }
        buf.freeze().to_vec()
    }

    /// Decode a payload (tag + body). Consumes the whole buffer.
    pub fn decode_payload(payload: &[u8]) -> Result<Request, WireError> {
        let mut r = Reader::new(payload);
        let request = match r.u8()? {
            T_PING => Request::Ping,
            T_ISSUE => Request::IssueToken {
                device: DeviceId::new(r.u64()?),
                blinded: BlindedMessage(r.biguint()?),
                now: Timestamp::from_seconds(r.i64()?),
            },
            T_UPLOAD => Request::Upload {
                upload: r.upload()?,
                now: Timestamp::from_seconds(r.i64()?),
            },
            T_AGGREGATE => Request::FetchAggregate { entity: EntityId::new(r.u64()?) },
            T_SEARCH => Request::Search {
                query: SearchQuery { zipcode: r.u32()?, category: r.category()? },
            },
            T_STATS => Request::Stats,
            T_AGG_PARTS => Request::AggregateParts { entity: EntityId::new(r.u64()?) },
            T_AGG_PARTS_BATCH => {
                let n = r.u16()? as usize;
                if n * 8 > r.remaining() {
                    return Err(WireError::Malformed("entity list exceeds payload"));
                }
                let mut entities = Vec::with_capacity(n);
                for _ in 0..n {
                    entities.push(EntityId::new(r.u64()?));
                }
                Request::AggregatePartsBatch { entities }
            }
            T_TRACES => Request::Traces,
            T_REPLICATE => {
                let range = r.u32()?;
                let epoch = r.u64()?;
                let promote = match r.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(WireError::Malformed("bad promote flag")),
                };
                // Each item needs at least flag + id + entity + interaction.
                let n = r.u32()? as usize;
                if n.saturating_mul(1 + 32 + 8 + 27) > r.remaining() {
                    return Err(WireError::Malformed("item list exceeds payload"));
                }
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    let spend = match r.u8()? {
                        0 => None,
                        1 => Some(r.key32()?),
                        _ => return Err(WireError::Malformed("bad spend flag")),
                    };
                    let entry = WalEntry {
                        record_id: r.record_id()?,
                        entity: EntityId::new(r.u64()?),
                        interaction: r.interaction()?,
                    };
                    items.push(WalBatchItem { spend, entry });
                }
                Request::Replicate { range, epoch, promote, items }
            }
            T_CATCH_UP => Request::CatchUp { range: r.u32()?, cursor: r.u64()? },
            tag => return Err(WireError::UnknownTag(tag)),
        };
        r.finish()?;
        Ok(request)
    }
}

impl Response {
    /// Encode into a complete frame.
    pub fn encode(&self) -> Vec<u8> {
        frame(&self.encode_payload())
    }

    /// Decode from a buffer holding exactly one frame.
    pub fn decode(buf: &[u8]) -> Result<Response, WireError> {
        let (payload, consumed) = decode_frame(buf)?;
        if consumed != buf.len() {
            return Err(WireError::Malformed("trailing bytes after frame"));
        }
        Response::decode_payload(payload)
    }

    /// Encode the payload (tag + body), unframed.
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(96);
        match self {
            Response::Pong => buf.put_u8(T_PONG),
            Response::TokenIssued { signature } => {
                buf.put_u8(T_ISSUED);
                put_biguint(&mut buf, &signature.0);
            }
            Response::TokenDenied { reason } => {
                buf.put_u8(T_DENIED);
                put_string(&mut buf, reason);
            }
            Response::UploadAccepted => buf.put_u8(T_UP_OK),
            Response::UploadRejected { reason } => {
                buf.put_u8(T_UP_REJ);
                buf.put_u8(reject_to_u8(*reason));
            }
            Response::Aggregate { aggregate } => {
                buf.put_u8(T_AGG);
                match aggregate {
                    None => buf.put_u8(0),
                    Some(agg) => {
                        buf.put_u8(1);
                        put_aggregate(&mut buf, agg);
                    }
                }
            }
            Response::SearchResults { hits } => {
                buf.put_u8(T_RESULTS);
                buf.put_u16_le(hits.len() as u16);
                for hit in hits {
                    buf.put_u64_le(hit.entity.raw());
                    buf.put_f64_le(hit.score);
                    put_histogram(&mut buf, &hit.explicit);
                    put_histogram(&mut buf, &hit.inferred);
                    buf.put_u64_le(hit.histories);
                    buf.put_f64_le(hit.repeat_fraction);
                }
            }
            Response::Stats { snapshot } => {
                buf.put_u8(T_STATS_RESP);
                put_snapshot(&mut buf, snapshot);
            }
            Response::Busy => buf.put_u8(T_BUSY),
            Response::Error { detail } => {
                buf.put_u8(T_ERROR);
                put_string(&mut buf, detail);
            }
            Response::AggregateParts { parts } => {
                buf.put_u8(T_AGG_PARTS_RESP);
                match parts {
                    None => buf.put_u8(0),
                    Some(parts) => {
                        buf.put_u8(1);
                        put_parts(&mut buf, parts);
                    }
                }
            }
            Response::AggregatePartsBatch { parts } => {
                buf.put_u8(T_AGG_PARTS_BATCH_RESP);
                debug_assert!(parts.len() <= u16::MAX as usize);
                buf.put_u16_le(parts.len() as u16);
                for entry in parts {
                    match entry {
                        None => buf.put_u8(0),
                        Some(parts) => {
                            buf.put_u8(1);
                            put_parts(&mut buf, parts);
                        }
                    }
                }
            }
            Response::Traces { traces } => {
                buf.put_u8(T_TRACES_RESP);
                put_traces(&mut buf, traces);
            }
            Response::ReplicateAck { epoch, applied } => {
                buf.put_u8(T_REPL_ACK);
                buf.put_u64_le(*epoch);
                buf.put_u64_le(*applied);
            }
            Response::StaleEpoch { range, current } => {
                buf.put_u8(T_STALE_EPOCH);
                buf.put_u32_le(*range);
                buf.put_u64_le(*current);
            }
            Response::CatchUpChunk {
                epoch,
                primary,
                done,
                digest,
                next_cursor,
                records,
                tokens,
            } => {
                buf.put_u8(T_CATCH_CHUNK);
                buf.put_u64_le(*epoch);
                buf.put_u8(*primary as u8);
                buf.put_u8(*done as u8);
                buf.put_u32_le(*digest);
                buf.put_u64_le(*next_cursor);
                debug_assert!(records.len() <= u32::MAX as usize);
                buf.put_u32_le(records.len() as u32);
                for rec in records {
                    buf.put_slice(rec.record_id.as_bytes());
                    buf.put_u64_le(rec.entity.raw());
                    buf.put_u32_le(rec.interactions.len() as u32);
                    for i in &rec.interactions {
                        put_interaction(&mut buf, i);
                    }
                }
                buf.put_u32_le(tokens.len() as u32);
                for key in tokens {
                    buf.put_slice(key);
                }
            }
            Response::Unavailable { detail } => {
                buf.put_u8(T_UNAVAILABLE);
                put_string(&mut buf, detail);
            }
        }
        buf.freeze().to_vec()
    }

    /// Decode a payload (tag + body). Consumes the whole buffer.
    pub fn decode_payload(payload: &[u8]) -> Result<Response, WireError> {
        let mut r = Reader::new(payload);
        let response = match r.u8()? {
            T_PONG => Response::Pong,
            T_ISSUED => Response::TokenIssued { signature: BlindSignature(r.biguint()?) },
            T_DENIED => Response::TokenDenied { reason: r.string()? },
            T_UP_OK => Response::UploadAccepted,
            T_UP_REJ => Response::UploadRejected { reason: reject_from_u8(r.u8()?)? },
            T_AGG => {
                let aggregate = match r.u8()? {
                    0 => None,
                    1 => Some(r.aggregate()?),
                    _ => return Err(WireError::Malformed("bad option flag")),
                };
                Response::Aggregate { aggregate }
            }
            T_RESULTS => {
                let n = r.u16()? as usize;
                let mut hits = Vec::with_capacity(n.min(r.remaining() / 8 + 1));
                for _ in 0..n {
                    hits.push(SearchHit {
                        entity: EntityId::new(r.u64()?),
                        score: r.f64()?,
                        explicit: r.histogram()?,
                        inferred: r.histogram()?,
                        histories: r.u64()?,
                        repeat_fraction: r.f64()?,
                    });
                }
                Response::SearchResults { hits }
            }
            T_STATS_RESP => Response::Stats { snapshot: r.snapshot()? },
            T_BUSY => Response::Busy,
            T_ERROR => Response::Error { detail: r.string()? },
            T_AGG_PARTS_RESP => {
                let parts = match r.u8()? {
                    0 => None,
                    1 => Some(r.parts()?),
                    _ => return Err(WireError::Malformed("bad option flag")),
                };
                Response::AggregateParts { parts }
            }
            T_AGG_PARTS_BATCH_RESP => {
                // Each entry needs at least its one-byte presence flag,
                // so a hostile count cannot drive a large allocation.
                let n = r.u16()? as usize;
                if n > r.remaining() {
                    return Err(WireError::Malformed("parts list exceeds payload"));
                }
                let mut parts = Vec::with_capacity(n);
                for _ in 0..n {
                    parts.push(match r.u8()? {
                        0 => None,
                        1 => Some(r.parts()?),
                        _ => return Err(WireError::Malformed("bad option flag")),
                    });
                }
                Response::AggregatePartsBatch { parts }
            }
            T_TRACES_RESP => Response::Traces { traces: r.traces()? },
            T_REPL_ACK => Response::ReplicateAck { epoch: r.u64()?, applied: r.u64()? },
            T_STALE_EPOCH => Response::StaleEpoch { range: r.u32()?, current: r.u64()? },
            T_CATCH_CHUNK => {
                let epoch = r.u64()?;
                let primary = match r.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(WireError::Malformed("bad primary flag")),
                };
                let done = match r.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(WireError::Malformed("bad done flag")),
                };
                let digest = r.u32()?;
                let next_cursor = r.u64()?;
                // Each record needs at least id + entity + its own count.
                let n = r.u32()? as usize;
                if n.saturating_mul(32 + 8 + 4) > r.remaining() {
                    return Err(WireError::Malformed("record list exceeds payload"));
                }
                let mut records = Vec::with_capacity(n);
                for _ in 0..n {
                    let record_id = r.record_id()?;
                    let entity = EntityId::new(r.u64()?);
                    let m = r.u32()? as usize;
                    if m.saturating_mul(27) > r.remaining() {
                        return Err(WireError::Malformed(
                            "interaction list exceeds payload",
                        ));
                    }
                    let mut interactions = Vec::with_capacity(m);
                    for _ in 0..m {
                        interactions.push(r.interaction()?);
                    }
                    records.push(CatchRecord { record_id, entity, interactions });
                }
                let n = r.u32()? as usize;
                if n.saturating_mul(32) > r.remaining() {
                    return Err(WireError::Malformed("token list exceeds payload"));
                }
                let mut tokens = Vec::with_capacity(n);
                for _ in 0..n {
                    tokens.push(r.key32()?);
                }
                Response::CatchUpChunk {
                    epoch,
                    primary,
                    done,
                    digest,
                    next_cursor,
                    records,
                    tokens,
                }
            }
            T_UNAVAILABLE => Response::Unavailable { detail: r.string()? },
            tag => return Err(WireError::UnknownTag(tag)),
        };
        r.finish()?;
        Ok(response)
    }
}

// --------------------------------------------------- composite encoders

fn put_biguint(buf: &mut BytesMut, v: &BigUint) {
    let bytes = v.to_bytes_be();
    debug_assert!(bytes.len() <= u16::MAX as usize);
    buf.put_u16_le(bytes.len() as u16);
    buf.put_slice(&bytes);
}

fn put_string(buf: &mut BytesMut, s: &str) {
    let bytes = s.as_bytes();
    let len = bytes.len().min(u16::MAX as usize);
    buf.put_u16_le(len as u16);
    buf.put_slice(&bytes[..len]);
}

fn put_upload(buf: &mut BytesMut, upload: &UploadRequest) {
    buf.put_slice(upload.record_id.as_bytes());
    buf.put_u64_le(upload.entity.raw());
    put_interaction(buf, &upload.interaction);
    buf.put_slice(&upload.token.message);
    put_biguint(buf, &upload.token.signature);
    buf.put_i64_le(upload.release_at.as_seconds());
}

// Same field layout as the server WAL's interaction payload.
fn put_interaction(buf: &mut BytesMut, i: &Interaction) {
    buf.put_u8(kind_to_u8(i.kind));
    buf.put_i64_le(i.start.as_seconds());
    buf.put_i64_le(i.duration.as_seconds());
    buf.put_f64_le(i.distance_travelled_m);
    buf.put_u16_le(i.group_size);
}

fn put_histogram(buf: &mut BytesMut, h: &StarHistogram) {
    for count in h.counts() {
        buf.put_u64_le(count);
    }
}

fn put_aggregate(buf: &mut BytesMut, agg: &EntityAggregate) {
    buf.put_u64_le(agg.entity.raw());
    buf.put_u64_le(agg.histories as u64);
    buf.put_u64_le(agg.interactions as u64);
    buf.put_f64_le(agg.mean_dwell_min);
    buf.put_f64_le(agg.repeat_fraction);
    buf.put_u16_le(agg.visits_per_user.len() as u16);
    for &v in &agg.visits_per_user {
        buf.put_u64_le(v as u64);
    }
    buf.put_u32_le(agg.effort_points.len() as u32);
    for &(count, dist) in &agg.effort_points {
        buf.put_u64_le(count as u64);
        buf.put_f64_le(dist);
    }
}

fn put_parts(buf: &mut BytesMut, parts: &AggregateParts) {
    buf.put_u64_le(parts.entity.raw());
    buf.put_u64_le(parts.histories);
    buf.put_u64_le(parts.interactions);
    buf.put_u64_le(parts.repeats);
    buf.put_i64_le(parts.dwell_secs);
    buf.put_u64_le(parts.dwell_n);
    buf.put_u16_le(parts.visits_per_user.len() as u16);
    for &v in &parts.visits_per_user {
        buf.put_u64_le(v);
    }
    buf.put_u32_le(parts.effort_points.len() as u32);
    for &(count, dist) in &parts.effort_points {
        buf.put_u64_le(count);
        buf.put_f64_le(dist);
    }
}

// A snapshot is four length-prefixed tables. Entry counts use u32 with
// a minimum-size guard on decode (a name is at least 2 bytes, a value 8)
// so a hostile count cannot drive a large allocation.
fn put_snapshot(buf: &mut BytesMut, snap: &StatsSnapshot) {
    buf.put_u32_le(snap.counters.len() as u32);
    for (name, v) in &snap.counters {
        put_string(buf, name);
        buf.put_u64_le(*v);
    }
    buf.put_u32_le(snap.gauges.len() as u32);
    for (name, v) in &snap.gauges {
        put_string(buf, name);
        buf.put_i64_le(*v);
    }
    buf.put_u32_le(snap.histograms.len() as u32);
    for h in &snap.histograms {
        put_string(buf, &h.name);
        buf.put_u64_le(h.count);
        buf.put_u64_le(h.sum);
        buf.put_u64_le(h.max);
        buf.put_u64_le(h.p50);
        buf.put_u64_le(h.p90);
        buf.put_u64_le(h.p99);
    }
    buf.put_u32_le(snap.events.len() as u32);
    for e in &snap.events {
        buf.put_u64_le(e.at_micros);
        put_string(buf, &e.kind);
        put_string(buf, &e.detail);
    }
}

// Traces travel as a length-prefixed table of traces, each a table of
// spans — the same hostile-length guards as the snapshot tables.
fn put_traces(buf: &mut BytesMut, traces: &[TraceRecord]) {
    buf.put_u32_le(traces.len() as u32);
    for t in traces {
        buf.put_slice(&t.trace_id.to_le_bytes());
        buf.put_u32_le(t.spans.len() as u32);
        for s in &t.spans {
            buf.put_u64_le(s.span_id);
            buf.put_u64_le(s.parent_span_id);
            put_string(buf, &s.name);
            buf.put_u64_le(s.start_us);
            buf.put_u64_le(s.end_us);
            put_string(buf, &s.process);
        }
    }
}

fn kind_to_u8(kind: InteractionKind) -> u8 {
    match kind {
        InteractionKind::Visit => 0,
        InteractionKind::PhoneCall => 1,
        InteractionKind::Payment => 2,
        InteractionKind::OnlineUse => 3,
    }
}

fn kind_from_u8(v: u8) -> Option<InteractionKind> {
    Some(match v {
        0 => InteractionKind::Visit,
        1 => InteractionKind::PhoneCall,
        2 => InteractionKind::Payment,
        3 => InteractionKind::OnlineUse,
        _ => return None,
    })
}

fn reject_to_u8(reason: RejectReason) -> u8 {
    match reason {
        RejectReason::BadToken => 0,
        RejectReason::DoubleSpend => 1,
        RejectReason::BadRecord => 2,
        RejectReason::EntityMismatch => 3,
    }
}

fn reject_from_u8(v: u8) -> Result<RejectReason, WireError> {
    Ok(match v {
        0 => RejectReason::BadToken,
        1 => RejectReason::DoubleSpend,
        2 => RejectReason::BadRecord,
        3 => RejectReason::EntityMismatch,
        _ => return Err(WireError::Malformed("unknown reject reason")),
    })
}

// ------------------------------------------------------ checked decoder

/// Bounds-checked cursor over a payload. Every read that would run past
/// the end returns a typed error; the `bytes` shim's `Buf` panics on
/// short input, so hostile payloads go through this instead.
struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf }
    }

    fn remaining(&self) -> usize {
        self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.buf.len() < n {
            return Err(WireError::Malformed("payload too short"));
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    fn finish(&self) -> Result<(), WireError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(WireError::Malformed("trailing bytes in payload"))
        }
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    fn u128(&mut self) -> Result<u128, WireError> {
        let b = self.take(16)?;
        let mut bytes = [0u8; 16];
        bytes.copy_from_slice(b);
        Ok(u128::from_le_bytes(bytes))
    }

    fn i64(&mut self) -> Result<i64, WireError> {
        Ok(self.u64()? as i64)
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn biguint(&mut self) -> Result<BigUint, WireError> {
        let len = self.u16()? as usize;
        Ok(BigUint::from_bytes_be(self.take(len)?))
    }

    fn string(&mut self) -> Result<String, WireError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Malformed("invalid utf-8"))
    }

    fn record_id(&mut self) -> Result<RecordId, WireError> {
        Ok(RecordId::from_bytes(self.key32()?))
    }

    fn key32(&mut self) -> Result<[u8; 32], WireError> {
        let b = self.take(32)?;
        let mut key = [0u8; 32];
        key.copy_from_slice(b);
        Ok(key)
    }

    fn category(&mut self) -> Result<Category, WireError> {
        let index = self.u16()? as usize;
        Category::from_stable_index(index).ok_or(WireError::Malformed("unknown category"))
    }

    fn interaction(&mut self) -> Result<Interaction, WireError> {
        let kind = kind_from_u8(self.u8()?)
            .ok_or(WireError::Malformed("unknown interaction kind"))?;
        Ok(Interaction {
            kind,
            start: Timestamp::from_seconds(self.i64()?),
            duration: SimDuration::seconds(self.i64()?),
            distance_travelled_m: self.f64()?,
            group_size: self.u16()?,
        })
    }

    fn upload(&mut self) -> Result<UploadRequest, WireError> {
        let record_id = self.record_id()?;
        let entity = EntityId::new(self.u64()?);
        let interaction = self.interaction()?;
        let message_bytes = self.take(32)?;
        let mut message = [0u8; 32];
        message.copy_from_slice(message_bytes);
        let signature = self.biguint()?;
        let release_at = Timestamp::from_seconds(self.i64()?);
        Ok(UploadRequest {
            record_id,
            entity,
            interaction,
            token: Token { message, signature },
            release_at,
        })
    }

    fn histogram(&mut self) -> Result<StarHistogram, WireError> {
        let mut counts = [0u64; 6];
        for slot in &mut counts {
            *slot = self.u64()?;
        }
        Ok(StarHistogram::from_counts(counts))
    }

    /// Guarded length prefix: each of `n` entries needs at least
    /// `min_entry` bytes, so a count implying more than the remaining
    /// payload is hostile and rejected before any allocation.
    fn table_len(&mut self, min_entry: usize) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_entry) > self.remaining() {
            return Err(WireError::Malformed("table length exceeds payload"));
        }
        Ok(n)
    }

    fn snapshot(&mut self) -> Result<StatsSnapshot, WireError> {
        let n = self.table_len(10)?; // u16 name len + u64 value
        let mut counters = Vec::with_capacity(n);
        for _ in 0..n {
            let name = self.string()?;
            counters.push((name, self.u64()?));
        }
        let n = self.table_len(10)?;
        let mut gauges = Vec::with_capacity(n);
        for _ in 0..n {
            let name = self.string()?;
            gauges.push((name, self.i64()?));
        }
        let n = self.table_len(50)?; // u16 name len + six u64 fields
        let mut histograms = Vec::with_capacity(n);
        for _ in 0..n {
            histograms.push(HistogramSnapshot {
                name: self.string()?,
                count: self.u64()?,
                sum: self.u64()?,
                max: self.u64()?,
                p50: self.u64()?,
                p90: self.u64()?,
                p99: self.u64()?,
            });
        }
        let n = self.table_len(12)?; // u64 timestamp + two u16 string lens
        let mut events = Vec::with_capacity(n);
        for _ in 0..n {
            events.push(EventSnapshot {
                at_micros: self.u64()?,
                kind: self.string()?,
                detail: self.string()?,
            });
        }
        Ok(StatsSnapshot { counters, gauges, histograms, events })
    }

    fn traces(&mut self) -> Result<Vec<TraceRecord>, WireError> {
        let n = self.table_len(20)?; // u128 trace id + u32 span count
        let mut traces = Vec::with_capacity(n);
        for _ in 0..n {
            let trace_id = self.u128()?;
            // Each span: two u64 ids, two u64 timestamps, two string lens.
            let m = self.table_len(36)?;
            let mut spans = Vec::with_capacity(m);
            for _ in 0..m {
                spans.push(SpanRecord {
                    span_id: self.u64()?,
                    parent_span_id: self.u64()?,
                    name: self.string()?,
                    start_us: self.u64()?,
                    end_us: self.u64()?,
                    process: self.string()?,
                });
            }
            traces.push(TraceRecord { trace_id, spans });
        }
        Ok(traces)
    }

    fn parts(&mut self) -> Result<AggregateParts, WireError> {
        let entity = EntityId::new(self.u64()?);
        let histories = self.u64()?;
        let interactions = self.u64()?;
        let repeats = self.u64()?;
        let dwell_secs = self.i64()?;
        let dwell_n = self.u64()?;
        let visits_len = self.u16()? as usize;
        if visits_len * 8 > self.remaining() {
            return Err(WireError::Malformed("visits length exceeds payload"));
        }
        let mut visits_per_user = Vec::with_capacity(visits_len);
        for _ in 0..visits_len {
            visits_per_user.push(self.u64()?);
        }
        let points_len = self.u32()? as usize;
        if points_len.saturating_mul(16) > self.remaining() {
            return Err(WireError::Malformed("effort length exceeds payload"));
        }
        let mut effort_points = Vec::with_capacity(points_len);
        for _ in 0..points_len {
            let count = self.u64()?;
            let dist = self.f64()?;
            effort_points.push((count, dist));
        }
        Ok(AggregateParts {
            entity,
            histories,
            interactions,
            visits_per_user,
            repeats,
            dwell_secs,
            dwell_n,
            effort_points,
        })
    }

    fn aggregate(&mut self) -> Result<EntityAggregate, WireError> {
        let entity = EntityId::new(self.u64()?);
        let histories = self.u64()? as usize;
        let interactions = self.u64()? as usize;
        let mean_dwell_min = self.f64()?;
        let repeat_fraction = self.f64()?;
        let visits_len = self.u16()? as usize;
        if visits_len * 8 > self.remaining() {
            return Err(WireError::Malformed("visits length exceeds payload"));
        }
        let mut visits_per_user = Vec::with_capacity(visits_len);
        for _ in 0..visits_len {
            visits_per_user.push(self.u64()? as usize);
        }
        let points_len = self.u32()? as usize;
        if points_len.saturating_mul(16) > self.remaining() {
            return Err(WireError::Malformed("effort length exceeds payload"));
        }
        let mut effort_points = Vec::with_capacity(points_len);
        for _ in 0..points_len {
            let count = self.u64()? as usize;
            let dist = self.f64()?;
            effort_points.push((count, dist));
        }
        Ok(EntityAggregate {
            entity,
            histories,
            interactions,
            visits_per_user,
            effort_points,
            mean_dwell_min,
            repeat_fraction,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> TraceContext {
        TraceContext { trace_id: 0xDEAD_BEEF_0123_4567_89AB_CDEF_0011_2233, span_id: 77, sampled: true }
    }

    #[test]
    fn frame_round_trip() {
        let framed = frame(b"payload");
        assert_eq!(framed.len(), HEADER_LEN_V2 + b"payload".len());
        let (payload, ctx, consumed) = decode_frame_traced(&framed).unwrap();
        assert_eq!(payload, b"payload");
        assert_eq!(ctx, None);
        assert_eq!(consumed, framed.len());
    }

    #[test]
    fn traced_frame_round_trip() {
        let framed = frame_traced(b"payload", Some(&ctx()));
        assert_eq!(framed.len(), HEADER_LEN_V2 + TRACE_CTX_LEN + b"payload".len());
        let (payload, got, consumed) = decode_frame_traced(&framed).unwrap();
        assert_eq!(payload, b"payload");
        assert_eq!(got, Some(ctx()));
        assert_eq!(consumed, framed.len());
    }

    #[test]
    fn v1_frame_still_decodes() {
        let framed = frame_v1(b"payload");
        assert_eq!(framed.len(), HEADER_LEN + b"payload".len());
        let (payload, ctx, consumed) = decode_frame_traced(&framed).unwrap();
        assert_eq!(payload, b"payload");
        assert_eq!(ctx, None);
        assert_eq!(consumed, framed.len());
    }

    #[test]
    fn truncated_header_is_typed() {
        for framed in [frame(b"hello"), frame_v1(b"hello"), frame_traced(b"hello", Some(&ctx()))]
        {
            let payload_start = framed.len() - b"hello".len();
            for cut in 0..payload_start {
                assert!(matches!(
                    decode_frame(&framed[..cut]),
                    Err(WireError::Truncated { .. })
                ));
            }
        }
    }

    #[test]
    fn bad_sampled_flag_is_typed() {
        let mut framed = frame_traced(b"hello", Some(&ctx()));
        framed[HEADER_LEN_V2 + TRACE_CTX_LEN - 1] = 7;
        assert!(matches!(decode_frame(&framed), Err(WireError::Malformed(_))));
    }

    #[test]
    fn unknown_frame_flags_are_typed() {
        let mut framed = frame(b"hello");
        framed[5] = 0x80;
        assert!(matches!(decode_frame(&framed), Err(WireError::Malformed(_))));
    }

    #[test]
    fn truncated_payload_is_typed() {
        let framed = frame(b"hello");
        assert!(matches!(
            decode_frame(&framed[..framed.len() - 1]),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn corrupted_crc_is_typed() {
        let mut framed = frame(b"hello");
        let last = framed.len() - 1;
        framed[last] ^= 0xFF;
        assert!(matches!(decode_frame(&framed), Err(WireError::BadCrc { .. })));
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        // v2: length sits after magic(4) + version(1) + flags(1).
        let mut framed = frame(b"x");
        framed[6..10].copy_from_slice(&(u32::MAX).to_le_bytes());
        assert!(matches!(decode_frame(&framed), Err(WireError::Oversized { .. })));
        // v1: length sits right after magic(4) + version(1).
        let mut framed = frame_v1(b"x");
        framed[5..9].copy_from_slice(&(u32::MAX).to_le_bytes());
        assert!(matches!(decode_frame(&framed), Err(WireError::Oversized { .. })));
    }

    #[test]
    fn bad_magic_and_version_are_typed() {
        let mut framed = frame(b"x");
        framed[0] = b'X';
        assert!(matches!(decode_frame(&framed), Err(WireError::BadMagic(_))));
        let mut framed = frame(b"x");
        framed[4] = 99;
        assert!(matches!(decode_frame(&framed), Err(WireError::BadVersion(99))));
    }

    #[test]
    fn simple_messages_round_trip() {
        for req in [
            Request::Ping,
            Request::FetchAggregate { entity: EntityId::new(42) },
            Request::Search {
                query: SearchQuery {
                    zipcode: 30332,
                    category: Category::from_stable_index(2).unwrap(),
                },
            },
        ] {
            assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        }
        for resp in [
            Response::Pong,
            Response::UploadAccepted,
            Response::Busy,
            Response::TokenDenied { reason: "rate limited".into() },
            Response::UploadRejected { reason: RejectReason::DoubleSpend },
            Response::Aggregate { aggregate: None },
            Response::Error { detail: "bad".into() },
        ] {
            assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        }
    }

    #[test]
    fn aggregate_parts_round_trip() {
        let req = Request::AggregateParts { entity: EntityId::new(9) };
        assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        let none = Response::AggregateParts { parts: None };
        assert_eq!(Response::decode(&none.encode()).unwrap(), none);
        let some = Response::AggregateParts {
            parts: Some(AggregateParts {
                entity: EntityId::new(9),
                histories: 3,
                interactions: 7,
                visits_per_user: vec![0, 1, 2],
                repeats: 2,
                dwell_secs: -5,
                dwell_n: 4,
                effort_points: vec![(2, 10.5), (1, 0.0)],
            }),
        };
        assert_eq!(Response::decode(&some.encode()).unwrap(), some);
    }

    #[test]
    fn aggregate_parts_batch_round_trip() {
        let req = Request::AggregatePartsBatch {
            entities: vec![EntityId::new(3), EntityId::new(9), EntityId::new(3)],
        };
        assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        let empty = Request::AggregatePartsBatch { entities: vec![] };
        assert_eq!(Request::decode(&empty.encode()).unwrap(), empty);
        let resp = Response::AggregatePartsBatch {
            parts: vec![
                None,
                Some(AggregateParts {
                    entity: EntityId::new(9),
                    histories: 3,
                    interactions: 7,
                    visits_per_user: vec![0, 1, 2],
                    repeats: 2,
                    dwell_secs: -5,
                    dwell_n: 4,
                    effort_points: vec![(2, 10.5), (1, 0.0)],
                }),
                None,
            ],
        };
        assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
    }

    #[test]
    fn hostile_batch_lengths_do_not_allocate() {
        // A batch request claiming 65535 entities in an empty payload.
        let mut buf = BytesMut::with_capacity(8);
        buf.put_u8(T_AGG_PARTS_BATCH);
        buf.put_u16_le(u16::MAX);
        let framed = frame(&buf.freeze().to_vec());
        assert_eq!(
            Request::decode(&framed),
            Err(WireError::Malformed("entity list exceeds payload"))
        );
        // A batch response claiming 65535 entries in an empty payload.
        let mut buf = BytesMut::with_capacity(8);
        buf.put_u8(T_AGG_PARTS_BATCH_RESP);
        buf.put_u16_le(u16::MAX);
        let framed = frame(&buf.freeze().to_vec());
        assert_eq!(
            Response::decode(&framed),
            Err(WireError::Malformed("parts list exceeds payload"))
        );
    }

    #[test]
    fn hostile_parts_lengths_do_not_allocate() {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_u8(T_AGG_PARTS_RESP);
        buf.put_u8(1);
        for _ in 0..5 {
            buf.put_u64_le(0); // entity..dwell_secs
        }
        buf.put_u64_le(0); // dwell_n
        buf.put_u16_le(u16::MAX); // visits: hostile
        let framed = frame(&buf.freeze().to_vec());
        assert_eq!(
            Response::decode(&framed),
            Err(WireError::Malformed("visits length exceeds payload"))
        );
    }

    #[test]
    fn unknown_tag_is_typed() {
        let framed = frame(&[0x7F]);
        assert_eq!(Request::decode(&framed), Err(WireError::UnknownTag(0x7F)));
        assert_eq!(Response::decode(&framed), Err(WireError::UnknownTag(0x7F)));
    }

    #[test]
    fn stats_messages_round_trip() {
        assert_eq!(Request::decode(&Request::Stats.encode()).unwrap(), Request::Stats);
        let snapshot = StatsSnapshot {
            counters: vec![("requests_total".into(), 7), ("shed_total".into(), 0)],
            gauges: vec![("world_users".into(), -5)],
            histograms: vec![HistogramSnapshot {
                name: "rpc_ping_us".into(),
                count: 3,
                sum: 30,
                max: 15,
                p50: 7,
                p90: 15,
                p99: 15,
            }],
            events: vec![EventSnapshot {
                at_micros: 12,
                kind: "shed".into(),
                detail: "peer 10.0.0.1:9".into(),
            }],
        };
        let resp = Response::Stats { snapshot };
        assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        let empty = Response::Stats { snapshot: StatsSnapshot::default() };
        assert_eq!(Response::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn traces_messages_round_trip() {
        assert_eq!(Request::decode(&Request::Traces.encode()).unwrap(), Request::Traces);
        let resp = Response::Traces {
            traces: vec![
                TraceRecord { trace_id: 5, spans: vec![] },
                TraceRecord {
                    trace_id: u128::MAX,
                    spans: vec![SpanRecord {
                        span_id: 9,
                        parent_span_id: 0,
                        name: "proxy/upload".into(),
                        start_us: 10,
                        end_us: 40,
                        process: "proxy".into(),
                    }],
                },
            ],
        };
        assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        let empty = Response::Traces { traces: vec![] };
        assert_eq!(Response::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn hostile_trace_lengths_do_not_allocate() {
        // 4 billion traces claimed in a 5-byte payload.
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u8(T_TRACES_RESP);
        buf.put_u32_le(u32::MAX);
        let framed = frame(&buf.freeze().to_vec());
        assert_eq!(
            Response::decode(&framed),
            Err(WireError::Malformed("table length exceeds payload"))
        );
        // One trace claiming 4 billion spans.
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(T_TRACES_RESP);
        buf.put_u32_le(1);
        buf.put_slice(&7u128.to_le_bytes());
        buf.put_u32_le(u32::MAX);
        let framed = frame(&buf.freeze().to_vec());
        assert_eq!(
            Response::decode(&framed),
            Err(WireError::Malformed("table length exceeds payload"))
        );
    }

    #[test]
    fn hostile_event_lengths_do_not_allocate() {
        // Empty metric tables, then an event table claiming 4 billion
        // entries in a near-empty payload.
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(T_STATS_RESP);
        buf.put_u32_le(0);
        buf.put_u32_le(0);
        buf.put_u32_le(0);
        buf.put_u32_le(u32::MAX);
        let framed = frame(&buf.freeze().to_vec());
        assert_eq!(
            Response::decode(&framed),
            Err(WireError::Malformed("table length exceeds payload"))
        );
    }

    #[test]
    fn hostile_snapshot_lengths_do_not_allocate() {
        // A snapshot claiming 4 billion counters in a near-empty payload
        // must fail the length guard before any allocation.
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u8(T_STATS_RESP);
        buf.put_u32_le(u32::MAX);
        let framed = frame(&buf.freeze().to_vec());
        assert_eq!(
            Response::decode(&framed),
            Err(WireError::Malformed("table length exceeds payload"))
        );
    }

    #[test]
    fn trailing_payload_bytes_are_rejected() {
        let mut payload = Request::Ping.encode_payload();
        payload.push(0);
        assert_eq!(
            Request::decode_payload(&payload),
            Err(WireError::Malformed("trailing bytes in payload"))
        );
    }

    fn sample_interaction(seed: i64) -> Interaction {
        Interaction {
            kind: InteractionKind::Visit,
            start: Timestamp::from_seconds(seed),
            duration: SimDuration::seconds(60 + seed),
            distance_travelled_m: 12.5,
            group_size: 2,
        }
    }

    #[test]
    fn replicate_round_trips() {
        let items = vec![
            WalBatchItem {
                spend: Some([7u8; 32]),
                entry: WalEntry {
                    record_id: RecordId::from_bytes([1u8; 32]),
                    entity: EntityId::new(42),
                    interaction: sample_interaction(100),
                },
            },
            WalBatchItem {
                spend: None,
                entry: WalEntry {
                    record_id: RecordId::from_bytes([2u8; 32]),
                    entity: EntityId::new(43),
                    interaction: sample_interaction(-5),
                },
            },
        ];
        let req = Request::Replicate { range: 3, epoch: 9, promote: false, items };
        assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        let promote =
            Request::Replicate { range: 0, epoch: u64::MAX, promote: true, items: vec![] };
        assert_eq!(Request::decode(&promote.encode()).unwrap(), promote);
    }

    #[test]
    fn catch_up_round_trips() {
        let req = Request::CatchUp { range: 2, cursor: 4096 };
        assert_eq!(Request::decode(&req.encode()).unwrap(), req);
    }

    #[test]
    fn replication_responses_round_trip() {
        for resp in [
            Response::ReplicateAck { epoch: 5, applied: 128 },
            Response::StaleEpoch { range: 1, current: 6 },
            Response::Unavailable { detail: "backend 2 range 1 demoted".into() },
            Response::CatchUpChunk {
                epoch: 3,
                primary: true,
                done: false,
                digest: 0,
                next_cursor: 512,
                records: vec![
                    CatchRecord {
                        record_id: RecordId::from_bytes([9u8; 32]),
                        entity: EntityId::new(7),
                        interactions: vec![sample_interaction(1), sample_interaction(2)],
                    },
                    CatchRecord {
                        record_id: RecordId::from_bytes([10u8; 32]),
                        entity: EntityId::new(8),
                        interactions: vec![],
                    },
                ],
                tokens: vec![[3u8; 32], [4u8; 32]],
            },
            Response::CatchUpChunk {
                epoch: 4,
                primary: false,
                done: true,
                digest: 0xDEAD_BEEF,
                next_cursor: 0,
                records: vec![],
                tokens: vec![],
            },
        ] {
            assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        }
    }

    #[test]
    fn hostile_replicate_lengths_do_not_allocate() {
        // A replicate batch claiming 4 billion items in an empty payload.
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(T_REPLICATE);
        buf.put_u32_le(0); // range
        buf.put_u64_le(1); // epoch
        buf.put_u8(0); // promote
        buf.put_u32_le(u32::MAX);
        let framed = frame(&buf.freeze().to_vec());
        assert_eq!(
            Request::decode(&framed),
            Err(WireError::Malformed("item list exceeds payload"))
        );
    }

    #[test]
    fn hostile_catch_up_chunk_lengths_do_not_allocate() {
        fn chunk_header() -> BytesMut {
            let mut buf = BytesMut::with_capacity(64);
            buf.put_u8(T_CATCH_CHUNK);
            buf.put_u64_le(1); // epoch
            buf.put_u8(1); // primary
            buf.put_u8(1); // done
            buf.put_u32_le(0); // digest
            buf.put_u64_le(0); // next_cursor
            buf
        }
        // 4 billion records claimed in an empty payload.
        let mut buf = chunk_header();
        buf.put_u32_le(u32::MAX);
        let framed = frame(&buf.freeze().to_vec());
        assert_eq!(
            Response::decode(&framed),
            Err(WireError::Malformed("record list exceeds payload"))
        );
        // One record claiming 4 billion interactions.
        let mut buf = chunk_header();
        buf.put_u32_le(1);
        buf.put_slice(&[0u8; 32]); // record id
        buf.put_u64_le(7); // entity
        buf.put_u32_le(u32::MAX);
        let framed = frame(&buf.freeze().to_vec());
        assert_eq!(
            Response::decode(&framed),
            Err(WireError::Malformed("interaction list exceeds payload"))
        );
        // No records, then 4 billion tokens claimed.
        let mut buf = chunk_header();
        buf.put_u32_le(0);
        buf.put_u32_le(u32::MAX);
        let framed = frame(&buf.freeze().to_vec());
        assert_eq!(
            Response::decode(&framed),
            Err(WireError::Malformed("token list exceeds payload"))
        );
    }

    #[test]
    fn hostile_aggregate_lengths_do_not_allocate() {
        // An aggregate claiming 4 billion effort points in a tiny payload
        // must fail cleanly instead of allocating.
        let mut buf = BytesMut::with_capacity(64);
        buf.put_u8(T_AGG);
        buf.put_u8(1);
        buf.put_u64_le(1); // entity
        buf.put_u64_le(0); // histories
        buf.put_u64_le(0); // interactions
        buf.put_f64_le(0.0);
        buf.put_f64_le(0.0);
        buf.put_u16_le(0); // visits
        buf.put_u32_le(u32::MAX); // effort points: hostile
        let framed = frame(&buf.freeze().to_vec());
        assert_eq!(
            Response::decode(&framed),
            Err(WireError::Malformed("effort length exceeds payload"))
        );
    }
}

//! # orsp-net
//!
//! The wire-facing service layer: the RSP as an actual network service
//! rather than an in-process function call.
//!
//! * [`wire`] — length-prefixed, CRC-checked binary frames for the four
//!   RPCs: blind-token issue, anonymous record upload (update-only — no
//!   retrieval RPC exists, by design), aggregate fetch, and search.
//! * [`router`] — [`RspService`]: one `handle(Request) -> Response`
//!   facade over the server substrates (mint, ingest, aggregates, search).
//! * [`server`] — a synchronous thread-pool TCP server over `std::net`
//!   (no async runtime, per DESIGN §5) with per-connection deadlines, a
//!   bounded accept queue, explicit `Busy` load-shedding, and graceful
//!   drain-on-shutdown.
//! * [`client`] — a blocking client with retry/backoff on `Busy`,
//!   timeouts, and dropped connections.
//! * [`transport`] — the [`Transport`] trait with a deterministic
//!   in-memory implementation (tests) beside the TCP one (daemon, bench).
//!
//! Every service carries an `orsp-obs` registry: the router records
//! per-RPC latency and outcome counters, the server its accept/shed and
//! per-kind protocol-error counters, the reactor its open-connection and
//! slab-occupancy gauges. The whole registry is scrapeable in-process
//! (`RspService::obs`) or over the wire via the `Stats` RPC.

// `unsafe` is denied crate-wide; the single exception is [`sys`], the
// epoll/eventfd FFI module, which opts back in locally.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod assembler;
pub mod client;
pub mod error;
#[cfg(target_os = "linux")]
pub(crate) mod reactor;
pub mod router;
pub mod server;
pub mod stream;
#[cfg(target_os = "linux")]
pub mod sys;
pub mod transport;
pub mod wire;

pub use assembler::{AssembledFrame, FrameAssembler};
pub use client::{CallTrace, ClientConfig, NetClient, NetPool, RetryStats, TcpTransport};
pub use error::{NetError, WireError};
pub use router::{ReplicaHook, ReplicateOutcome, RspService, ServiceConfig};
pub use server::{FrameService, NetServer, ServerConfig, ServerStats, TransportMode};
pub use transport::{InMemoryTransport, RemoteIssuer, Transport};
pub use wire::{CatchRecord, Request, Response, SearchHit};

//! Synchronous thread-pool TCP server over `std::net`.
//!
//! No async runtime (DESIGN §5): one acceptor thread feeds a *bounded*
//! queue drained by a fixed worker pool. The bound is the backpressure
//! contract — when the queue is full the acceptor writes an explicit
//! [`Response::Busy`] frame and closes, so overload is always visible to
//! the client and never a silent drop. Every connection runs with read
//! and write deadlines; a stalled peer costs one worker at most one
//! timeout. Shutdown drains: queued connections are still served (one
//! request each once the flag is up), in-flight responses complete, then
//! workers exit.

use crate::error::{NetError, WireError};
use crate::router::RspService;
use crate::stream::{read_message, write_message};
use crate::wire::{Request, Response};
use crossbeam::channel::{Receiver, Sender, TrySendError};
use orsp_obs::{Counter, Registry, TraceContext};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Server tunables.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Worker threads serving connections.
    pub workers: usize,
    /// Bound on the accept→worker queue. Connections beyond
    /// `workers + queue_depth` are shed with `Busy`.
    pub queue_depth: usize,
    /// Per-connection read deadline.
    pub read_timeout: Duration,
    /// Per-connection write deadline.
    pub write_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_depth: 64,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
        }
    }
}

/// Monotonic counters, readable while the server runs. A typed view over
/// the service registry (`RspService::obs`): the same values scrape as
/// `net_*` series via the Prometheus/JSON exporters or the `Stats` RPC.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections handed to a worker.
    pub accepted: u64,
    /// Connections shed with an explicit `Busy` frame.
    pub shed: u64,
    /// Requests decoded and dispatched.
    pub requests: u64,
    /// Frames or payloads that failed to parse (sum of the breakdown
    /// below).
    pub protocol_errors: u64,
    /// Frames cut short: a mid-frame disconnect or a header shorter than
    /// its declared payload.
    pub proto_truncated: u64,
    /// Payload checksum mismatches.
    pub proto_bad_crc: u64,
    /// Declared payload lengths over the frame cap.
    pub proto_oversized: u64,
    /// Sound frames carrying a message tag this server does not speak
    /// (version skew).
    pub proto_unknown_tag: u64,
    /// Everything else: bad magic, bad version, malformed payload bodies.
    pub proto_other: u64,
}

/// Pre-resolved registry handles for the connection hot path.
struct ServerMetrics {
    accepted: Counter,
    shed: Counter,
    requests: Counter,
    protocol_errors: Counter,
    proto_truncated: Counter,
    proto_bad_crc: Counter,
    proto_oversized: Counter,
    proto_unknown_tag: Counter,
    proto_other: Counter,
}

impl ServerMetrics {
    fn resolve(obs: &Registry) -> Self {
        ServerMetrics {
            accepted: obs.counter("net_accepted_total"),
            shed: obs.counter("net_shed_total"),
            requests: obs.counter("net_requests_total"),
            protocol_errors: obs.counter("net_protocol_errors_total"),
            proto_truncated: obs.counter("net_proto_truncated_total"),
            proto_bad_crc: obs.counter("net_proto_bad_crc_total"),
            proto_oversized: obs.counter("net_proto_oversized_total"),
            proto_unknown_tag: obs.counter("net_proto_unknown_tag_total"),
            proto_other: obs.counter("net_proto_other_total"),
        }
    }

    /// Count one protocol error: the total, plus its kind.
    fn protocol_error(&self, kind: ProtoErrorKind) {
        self.protocol_errors.inc();
        match kind {
            ProtoErrorKind::Truncated => self.proto_truncated.inc(),
            ProtoErrorKind::BadCrc => self.proto_bad_crc.inc(),
            ProtoErrorKind::Oversized => self.proto_oversized.inc(),
            ProtoErrorKind::UnknownTag => self.proto_unknown_tag.inc(),
            ProtoErrorKind::Other => self.proto_other.inc(),
        }
    }
}

/// Anything that can sit behind a [`NetServer`]: one decoded request in,
/// one response out. The server also records its accept/shed/protocol
/// counters into the service's registry so one `Stats` RPC covers the
/// whole process. Implemented by [`RspService`] (a backend daemon) and by
/// `orsp-proxy`'s front-door router — both ends of the cluster speak the
/// same frames through the same server loop.
pub trait FrameService: Send + Sync {
    /// Handle one decoded request.
    fn handle(&self, request: Request) -> Response {
        self.handle_traced(request, None)
    }
    /// Handle one decoded request carrying the trace context its frame
    /// arrived with (None for v1 peers and unstamped frames). Services
    /// that trace continue the caller's trace; the default ignores it.
    fn handle_traced(&self, request: Request, ctx: Option<TraceContext>) -> Response;
    /// The registry the fronting server should record into.
    fn obs(&self) -> &Arc<Registry>;
}

impl FrameService for RspService {
    fn handle_traced(&self, request: Request, ctx: Option<TraceContext>) -> Response {
        RspService::handle_traced(self, request, ctx)
    }

    fn obs(&self) -> &Arc<Registry> {
        RspService::obs(self)
    }
}

#[derive(Debug, Clone, Copy)]
enum ProtoErrorKind {
    Truncated,
    BadCrc,
    Oversized,
    UnknownTag,
    Other,
}

impl From<&WireError> for ProtoErrorKind {
    fn from(e: &WireError) -> Self {
        match e {
            WireError::Truncated { .. } => ProtoErrorKind::Truncated,
            WireError::BadCrc { .. } => ProtoErrorKind::BadCrc,
            WireError::Oversized { .. } => ProtoErrorKind::Oversized,
            WireError::UnknownTag(_) => ProtoErrorKind::UnknownTag,
            WireError::BadMagic(_) | WireError::BadVersion(_) | WireError::Malformed(_) => {
                ProtoErrorKind::Other
            }
        }
    }
}

struct Shared {
    service: Arc<dyn FrameService>,
    config: ServerConfig,
    shutdown: AtomicBool,
    obs: Arc<Registry>,
    metrics: ServerMetrics,
}

/// A running server: an acceptor, a worker pool, and the bounded queue
/// between them. Dropping it shuts down gracefully.
pub struct NetServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl NetServer {
    /// Bind and start serving `service` on `addr` (use port 0 for an
    /// ephemeral port; read it back with [`Self::local_addr`]).
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        service: Arc<dyn FrameService>,
        config: ServerConfig,
    ) -> io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let obs = Arc::clone(service.obs());
        let metrics = ServerMetrics::resolve(&obs);
        let shared = Arc::new(Shared {
            service,
            config,
            shutdown: AtomicBool::new(false),
            obs,
            metrics,
        });
        let workers = config.workers.max(1);
        // Multi-consumer hand-off: each worker owns a clone of the
        // receiver and competes for connections directly — no shared
        // `Mutex<Receiver>` serializing the dequeue side of the accept
        // path.
        let (tx, rx) = crossbeam::channel::bounded::<TcpStream>(config.queue_depth.max(1));

        let worker_handles: Vec<JoinHandle<()>> = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let rx = rx.clone();
                std::thread::spawn(move || worker_loop(&shared, &rx))
            })
            .collect();
        drop(rx);
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&shared, &listener, tx))
        };

        Ok(NetServer { addr: local, shared, acceptor: Some(acceptor), workers: worker_handles })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A point-in-time counter snapshot (a typed view over the service
    /// registry's `net_*` series).
    pub fn stats(&self) -> ServerStats {
        let m = &self.shared.metrics;
        ServerStats {
            accepted: m.accepted.get(),
            shed: m.shed.get(),
            requests: m.requests.get(),
            protocol_errors: m.protocol_errors.get(),
            proto_truncated: m.proto_truncated.get(),
            proto_bad_crc: m.proto_bad_crc.get(),
            proto_oversized: m.proto_oversized.get(),
            proto_unknown_tag: m.proto_unknown_tag.get(),
            proto_other: m.proto_other.get(),
        }
    }

    /// Graceful drain: stop accepting, serve what is queued and in
    /// flight, join every thread, and return the final counters.
    pub fn shutdown(mut self) -> ServerStats {
        self.stop();
        self.stats()
    }

    fn stop(&mut self) {
        if self.acceptor.is_none() {
            return;
        }
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Wake the acceptor out of `accept()` with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        // The acceptor dropped its sender; workers drain the queue and
        // then see the channel disconnect.
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(shared: &Shared, listener: &TcpListener, tx: Sender<TcpStream>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            // The wake-up connection (or a late arrival): close and stop.
            return;
        }
        match tx.try_send(stream) {
            Ok(()) => {
                shared.metrics.accepted.inc();
            }
            Err(TrySendError::Full(stream)) => {
                // Explicit load shed: tell the client before closing.
                let peer = stream.peer_addr();
                shed(shared, stream);
                shared.metrics.shed.inc();
                shared.obs.event(
                    "shed",
                    peer.map(|a| a.to_string()).unwrap_or_else(|_| "unknown peer".into()),
                );
            }
            Err(TrySendError::Disconnected(_)) => return,
        }
    }
}

fn shed(shared: &Shared, mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    let _ = write_message(&mut stream, &Response::Busy.encode());
    // Drop closes the socket; the Busy frame is already on the wire (or
    // the peer is gone, in which case there is no one left to tell).
}

fn worker_loop(shared: &Shared, rx: &Receiver<TcpStream>) {
    loop {
        match rx.recv() {
            Ok(stream) => serve_connection(shared, stream),
            Err(_) => return, // acceptor gone and queue drained
        }
    }
}

fn serve_connection(shared: &Shared, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    loop {
        let (payload, ctx) = match read_message(&mut stream) {
            Ok(Some(message)) => message,
            Ok(None) => return, // clean close between frames
            Err(NetError::Wire(e)) => {
                // Framing is unrecoverable mid-stream: report, then close.
                shared.metrics.protocol_error((&e).into());
                shared.obs.event("protocol_error", e.to_string());
                let reply = Response::Error { detail: e.to_string() };
                let _ = write_message(&mut stream, &reply.encode());
                return;
            }
            Err(NetError::Closed) => {
                // A clean close lands on `Ok(None)` above; `Closed` means
                // the peer vanished mid-frame — a truncated frame.
                shared.metrics.protocol_error(ProtoErrorKind::Truncated);
                shared.obs.event("protocol_error", "peer closed mid-frame");
                return;
            }
            Err(_) => return, // timeout / reset: the deadline did its job
        };
        let response = match Request::decode_payload(&payload) {
            Ok(request) => {
                shared.metrics.requests.inc();
                shared.service.handle_traced(request, ctx)
            }
            Err(e) => {
                shared.metrics.protocol_error((&e).into());
                shared.obs.event("protocol_error", e.to_string());
                Response::Error { detail: e.to_string() }
            }
        };
        if write_message(&mut stream, &response.encode()).is_err() {
            return;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            // Drain semantics: the in-flight request got its response;
            // further requests need a new connection (which will be
            // refused). Close now so shutdown can join this worker.
            return;
        }
    }
}

//! Synchronous thread-pool TCP server over `std::net`.
//!
//! No async runtime (DESIGN §5): one acceptor thread feeds a *bounded*
//! queue drained by a fixed worker pool. The bound is the backpressure
//! contract — when the queue is full the acceptor writes an explicit
//! [`Response::Busy`] frame and closes, so overload is always visible to
//! the client and never a silent drop. Every connection runs with read
//! and write deadlines; a stalled peer costs one worker at most one
//! timeout. Shutdown drains: queued connections are still served (one
//! request each once the flag is up), in-flight responses complete, then
//! workers exit.

use crate::error::NetError;
use crate::router::RspService;
use crate::stream::{read_message, write_message};
use crate::wire::{Request, Response};
use parking_lot::Mutex;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Server tunables.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Worker threads serving connections.
    pub workers: usize,
    /// Bound on the accept→worker queue. Connections beyond
    /// `workers + queue_depth` are shed with `Busy`.
    pub queue_depth: usize,
    /// Per-connection read deadline.
    pub read_timeout: Duration,
    /// Per-connection write deadline.
    pub write_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_depth: 64,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
        }
    }
}

/// Monotonic counters, readable while the server runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections handed to a worker.
    pub accepted: u64,
    /// Connections shed with an explicit `Busy` frame.
    pub shed: u64,
    /// Requests decoded and dispatched.
    pub requests: u64,
    /// Frames or payloads that failed to parse.
    pub protocol_errors: u64,
}

#[derive(Default)]
struct StatsInner {
    accepted: AtomicU64,
    shed: AtomicU64,
    requests: AtomicU64,
    protocol_errors: AtomicU64,
}

struct Shared {
    service: Arc<RspService>,
    config: ServerConfig,
    shutdown: AtomicBool,
    stats: StatsInner,
}

/// A running server: an acceptor, a worker pool, and the bounded queue
/// between them. Dropping it shuts down gracefully.
pub struct NetServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl NetServer {
    /// Bind and start serving `service` on `addr` (use port 0 for an
    /// ephemeral port; read it back with [`Self::local_addr`]).
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        service: Arc<RspService>,
        config: ServerConfig,
    ) -> io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(Shared {
            service,
            config,
            shutdown: AtomicBool::new(false),
            stats: StatsInner::default(),
        });
        let workers = config.workers.max(1);
        let (tx, rx) = std::sync::mpsc::sync_channel::<TcpStream>(config.queue_depth.max(1));
        let rx = Arc::new(Mutex::new(rx));

        let worker_handles: Vec<JoinHandle<()>> = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let rx = Arc::clone(&rx);
                std::thread::spawn(move || worker_loop(&shared, &rx))
            })
            .collect();
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&shared, &listener, tx))
        };

        Ok(NetServer { addr: local, shared, acceptor: Some(acceptor), workers: worker_handles })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A point-in-time counter snapshot.
    pub fn stats(&self) -> ServerStats {
        let s = &self.shared.stats;
        ServerStats {
            accepted: s.accepted.load(Ordering::Relaxed),
            shed: s.shed.load(Ordering::Relaxed),
            requests: s.requests.load(Ordering::Relaxed),
            protocol_errors: s.protocol_errors.load(Ordering::Relaxed),
        }
    }

    /// Graceful drain: stop accepting, serve what is queued and in
    /// flight, join every thread, and return the final counters.
    pub fn shutdown(mut self) -> ServerStats {
        self.stop();
        self.stats()
    }

    fn stop(&mut self) {
        if self.acceptor.is_none() {
            return;
        }
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Wake the acceptor out of `accept()` with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        // The acceptor dropped its sender; workers drain the queue and
        // then see the channel disconnect.
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(shared: &Shared, listener: &TcpListener, tx: SyncSender<TcpStream>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            // The wake-up connection (or a late arrival): close and stop.
            return;
        }
        match tx.try_send(stream) {
            Ok(()) => {
                shared.stats.accepted.fetch_add(1, Ordering::Relaxed);
            }
            Err(TrySendError::Full(stream)) => {
                // Explicit load shed: tell the client before closing.
                shed(shared, stream);
                shared.stats.shed.fetch_add(1, Ordering::Relaxed);
            }
            Err(TrySendError::Disconnected(_)) => return,
        }
    }
}

fn shed(shared: &Shared, mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    let _ = write_message(&mut stream, &Response::Busy.encode());
    // Drop closes the socket; the Busy frame is already on the wire (or
    // the peer is gone, in which case there is no one left to tell).
}

fn worker_loop(shared: &Shared, rx: &Mutex<Receiver<TcpStream>>) {
    loop {
        // Hold the lock only while dequeuing, not while serving.
        let next = { rx.lock().recv() };
        match next {
            Ok(stream) => serve_connection(shared, stream),
            Err(_) => return, // acceptor gone and queue drained
        }
    }
}

fn serve_connection(shared: &Shared, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    loop {
        let payload = match read_message(&mut stream) {
            Ok(Some(payload)) => payload,
            Ok(None) => return, // clean close between frames
            Err(NetError::Wire(e)) => {
                // Framing is unrecoverable mid-stream: report, then close.
                shared.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let reply = Response::Error { detail: e.to_string() };
                let _ = write_message(&mut stream, &reply.encode());
                return;
            }
            Err(_) => return, // timeout / reset: the deadline did its job
        };
        let response = match Request::decode_payload(&payload) {
            Ok(request) => {
                shared.stats.requests.fetch_add(1, Ordering::Relaxed);
                shared.service.handle(request)
            }
            Err(e) => {
                shared.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                Response::Error { detail: e.to_string() }
            }
        };
        if write_message(&mut stream, &response.encode()).is_err() {
            return;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            // Drain semantics: the in-flight request got its response;
            // further requests need a new connection (which will be
            // refused). Close now so shutdown can join this worker.
            return;
        }
    }
}

//! The TCP server front: one [`NetServer`] facade over two transports.
//!
//! * **Event loop** (default, Linux): a readiness-driven reactor
//!   ([`crate::reactor`]) holds every connection in a slab of
//!   non-blocking sockets and hands only ready, fully-framed requests to
//!   a fixed worker pool — an idle connection costs a slab slot, not a
//!   thread, so a mostly-idle device fleet scales to the
//!   [`ServerConfig::max_connections`] bound instead of the worker count.
//! * **Threaded** ([`TransportMode::Threaded`], and the fallback on
//!   non-Linux): the original synchronous pool — one acceptor thread
//!   feeds a *bounded* queue drained by workers that each own one
//!   connection at a time.
//!
//! Both transports keep the same contracts (no async runtime either way,
//! per DESIGN §6): overload is an explicit [`Response::Busy`] frame and a
//! close, never a silent drop; every connection runs under read/write
//! deadlines (socket timeouts on the threaded path, reactor timer wheels
//! on the event path); shutdown drains — queued and in-flight requests
//! get their responses before the threads join. The integration suite
//! runs against both (`ORSP_NET_TRANSPORT=threaded` flips the default)
//! and `scripts/verify.sh` gates on that dual run.

use crate::error::{NetError, WireError};
use crate::router::RspService;
use crate::stream::{read_message, write_message};
use crate::wire::{Request, Response};
use crossbeam::channel::{Receiver, Sender, TrySendError};
use orsp_obs::{Counter, Gauge, Registry, TraceContext};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Which serving core a [`NetServer`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportMode {
    /// Readiness-driven reactor + worker pool (default). Falls back to
    /// [`TransportMode::Threaded`] on non-Linux targets, where the epoll
    /// binding does not exist.
    EventLoop,
    /// The original thread-per-connection pool behind a bounded accept
    /// queue.
    Threaded,
}

impl Default for TransportMode {
    /// [`TransportMode::EventLoop`], unless `ORSP_NET_TRANSPORT=threaded`
    /// is set — the hook `verify.sh` uses to run the whole integration
    /// suite against both transports without touching test code.
    fn default() -> Self {
        match std::env::var("ORSP_NET_TRANSPORT").as_deref() {
            Ok("threaded") => TransportMode::Threaded,
            _ => TransportMode::EventLoop,
        }
    }
}

/// Server tunables.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Worker threads executing requests.
    pub workers: usize,
    /// Threaded transport: bound on the accept→worker queue (connections
    /// beyond `workers + queue_depth` are shed with `Busy`). The event
    /// loop reuses it for the default connection-slot count — see
    /// [`ServerConfig::max_connections`].
    pub queue_depth: usize,
    /// Per-connection read deadline.
    pub read_timeout: Duration,
    /// Per-connection write deadline.
    pub write_timeout: Duration,
    /// Which serving core to run.
    pub transport: TransportMode,
    /// Event loop: connection slots in the reactor slab. `0` means
    /// `workers + queue_depth` — the same point the threaded transport
    /// sheds at, so both transports refuse the same connection under the
    /// same load. Raise it (e.g. `--max-connections 10000` on the
    /// daemons) to hold a large mostly-idle fleet.
    pub max_connections: usize,
    /// Event loop: bound on requests queued or executing across all
    /// connections; past it a decoded request is answered `Busy`. `0`
    /// means unbounded (the slab bound still applies).
    pub max_inflight: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_depth: 64,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            transport: TransportMode::default(),
            max_connections: 0,
            max_inflight: 0,
        }
    }
}

impl ServerConfig {
    /// The reactor slab size: [`ServerConfig::max_connections`], with `0`
    /// defaulting to `workers + queue_depth` (shed parity with the
    /// threaded transport).
    pub fn effective_max_connections(&self) -> usize {
        if self.max_connections == 0 {
            (self.workers + self.queue_depth).max(1)
        } else {
            self.max_connections
        }
    }
}

/// Monotonic counters, readable while the server runs. A typed view over
/// the service registry (`RspService::obs`): the same values scrape as
/// `net_*` series via the Prometheus/JSON exporters or the `Stats` RPC.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted into a worker (threaded) or slab slot (event).
    pub accepted: u64,
    /// Connections/requests shed with an explicit `Busy` frame.
    pub shed: u64,
    /// Requests decoded and dispatched.
    pub requests: u64,
    /// Frames or payloads that failed to parse (sum of the breakdown
    /// below).
    pub protocol_errors: u64,
    /// Frames cut short: a mid-frame disconnect or a header shorter than
    /// its declared payload.
    pub proto_truncated: u64,
    /// Payload checksum mismatches.
    pub proto_bad_crc: u64,
    /// Declared payload lengths over the frame cap.
    pub proto_oversized: u64,
    /// Sound frames carrying a message tag this server does not speak
    /// (version skew).
    pub proto_unknown_tag: u64,
    /// Everything else: bad magic, bad version, malformed payload bodies.
    pub proto_other: u64,
    /// Connections currently held open (event loop; 0 on threaded).
    pub open_connections: i64,
    /// Most connections ever held at once (event loop; 0 on threaded).
    pub slab_high_water: i64,
    /// Times the reactor woke with at least one ready fd (event loop).
    pub readiness_wakeups: u64,
    /// Connections closed by an expired read/write deadline (event loop;
    /// the threaded transport's socket timeouts close silently).
    pub deadline_closed: u64,
}

/// Pre-resolved registry handles for the connection hot path. Shared by
/// both transports so the `net_*` series mean the same thing either way.
pub(crate) struct ServerMetrics {
    pub(crate) accepted: Counter,
    pub(crate) shed: Counter,
    pub(crate) requests: Counter,
    pub(crate) protocol_errors: Counter,
    pub(crate) proto_truncated: Counter,
    pub(crate) proto_bad_crc: Counter,
    pub(crate) proto_oversized: Counter,
    pub(crate) proto_unknown_tag: Counter,
    pub(crate) proto_other: Counter,
    pub(crate) open_connections: Gauge,
    pub(crate) slab_high_water: Gauge,
    pub(crate) readiness_wakeups: Counter,
    pub(crate) deadline_closed: Counter,
}

impl ServerMetrics {
    pub(crate) fn resolve(obs: &Registry) -> Self {
        ServerMetrics {
            accepted: obs.counter("net_accepted_total"),
            shed: obs.counter("net_shed_total"),
            requests: obs.counter("net_requests_total"),
            protocol_errors: obs.counter("net_protocol_errors_total"),
            proto_truncated: obs.counter("net_proto_truncated_total"),
            proto_bad_crc: obs.counter("net_proto_bad_crc_total"),
            proto_oversized: obs.counter("net_proto_oversized_total"),
            proto_unknown_tag: obs.counter("net_proto_unknown_tag_total"),
            proto_other: obs.counter("net_proto_other_total"),
            open_connections: obs.gauge("net_open_connections"),
            slab_high_water: obs.gauge("net_slab_high_water"),
            readiness_wakeups: obs.counter("net_readiness_wakeups_total"),
            deadline_closed: obs.counter("net_deadline_closed_total"),
        }
    }

    /// Count one protocol error: the total, plus its kind.
    pub(crate) fn protocol_error(&self, kind: ProtoErrorKind) {
        self.protocol_errors.inc();
        match kind {
            ProtoErrorKind::Truncated => self.proto_truncated.inc(),
            ProtoErrorKind::BadCrc => self.proto_bad_crc.inc(),
            ProtoErrorKind::Oversized => self.proto_oversized.inc(),
            ProtoErrorKind::UnknownTag => self.proto_unknown_tag.inc(),
            ProtoErrorKind::Other => self.proto_other.inc(),
        }
    }
}

/// Anything that can sit behind a [`NetServer`]: one decoded request in,
/// one response out. The server also records its accept/shed/protocol
/// counters into the service's registry so one `Stats` RPC covers the
/// whole process. Implemented by [`RspService`] (a backend daemon) and by
/// `orsp-proxy`'s front-door router — both ends of the cluster speak the
/// same frames through the same server loop.
///
/// The trace context always travels as the explicit `ctx` argument —
/// never as ambient per-thread state — which is what lets the event
/// loop's worker pool execute any connection's request on any thread.
pub trait FrameService: Send + Sync {
    /// Handle one decoded request.
    fn handle(&self, request: Request) -> Response {
        self.handle_traced(request, None)
    }
    /// Handle one decoded request carrying the trace context its frame
    /// arrived with (None for v1 peers and unstamped frames). Services
    /// that trace continue the caller's trace; the default ignores it.
    fn handle_traced(&self, request: Request, ctx: Option<TraceContext>) -> Response;
    /// The registry the fronting server should record into.
    fn obs(&self) -> &Arc<Registry>;
}

impl FrameService for RspService {
    fn handle_traced(&self, request: Request, ctx: Option<TraceContext>) -> Response {
        RspService::handle_traced(self, request, ctx)
    }

    fn obs(&self) -> &Arc<Registry> {
        RspService::obs(self)
    }
}

#[derive(Debug, Clone, Copy)]
pub(crate) enum ProtoErrorKind {
    Truncated,
    BadCrc,
    Oversized,
    UnknownTag,
    Other,
}

impl From<&WireError> for ProtoErrorKind {
    fn from(e: &WireError) -> Self {
        match e {
            WireError::Truncated { .. } => ProtoErrorKind::Truncated,
            WireError::BadCrc { .. } => ProtoErrorKind::BadCrc,
            WireError::Oversized { .. } => ProtoErrorKind::Oversized,
            WireError::UnknownTag(_) => ProtoErrorKind::UnknownTag,
            WireError::BadMagic(_) | WireError::BadVersion(_) | WireError::Malformed(_) => {
                ProtoErrorKind::Other
            }
        }
    }
}

/// A running server: the transport selected by
/// [`ServerConfig::transport`], behind one facade. Dropping it shuts down
/// gracefully.
pub struct NetServer {
    addr: SocketAddr,
    metrics: ServerMetrics,
    inner: Inner,
}

enum Inner {
    Threaded(ThreadedServer),
    #[cfg(target_os = "linux")]
    Event(crate::reactor::EventServer),
}

impl NetServer {
    /// Bind and start serving `service` on `addr` (use port 0 for an
    /// ephemeral port; read it back with [`Self::local_addr`]).
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        service: Arc<dyn FrameService>,
        config: ServerConfig,
    ) -> io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let metrics = ServerMetrics::resolve(service.obs());
        let inner = match config.transport {
            #[cfg(target_os = "linux")]
            TransportMode::EventLoop => Inner::Event(crate::reactor::EventServer::bind(
                listener, service, config,
            )?),
            #[cfg(not(target_os = "linux"))]
            TransportMode::EventLoop => {
                Inner::Threaded(ThreadedServer::start(listener, local, service, config))
            }
            TransportMode::Threaded => {
                Inner::Threaded(ThreadedServer::start(listener, local, service, config))
            }
        };
        Ok(NetServer { addr: local, metrics, inner })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A point-in-time counter snapshot (a typed view over the service
    /// registry's `net_*` series).
    pub fn stats(&self) -> ServerStats {
        let m = &self.metrics;
        ServerStats {
            accepted: m.accepted.get(),
            shed: m.shed.get(),
            requests: m.requests.get(),
            protocol_errors: m.protocol_errors.get(),
            proto_truncated: m.proto_truncated.get(),
            proto_bad_crc: m.proto_bad_crc.get(),
            proto_oversized: m.proto_oversized.get(),
            proto_unknown_tag: m.proto_unknown_tag.get(),
            proto_other: m.proto_other.get(),
            open_connections: m.open_connections.get(),
            slab_high_water: m.slab_high_water.get(),
            readiness_wakeups: m.readiness_wakeups.get(),
            deadline_closed: m.deadline_closed.get(),
        }
    }

    /// Graceful drain: stop accepting, serve what is queued and in
    /// flight, join every thread, and return the final counters.
    pub fn shutdown(mut self) -> ServerStats {
        self.stop();
        self.stats()
    }

    fn stop(&mut self) {
        match &mut self.inner {
            Inner::Threaded(t) => t.stop(),
            #[cfg(target_os = "linux")]
            Inner::Event(e) => e.stop(),
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.stop();
    }
}

// -------------------------------------------------- threaded transport

struct Shared {
    service: Arc<dyn FrameService>,
    config: ServerConfig,
    shutdown: AtomicBool,
    obs: Arc<Registry>,
    metrics: ServerMetrics,
}

/// The original transport: an acceptor, a worker pool, and the bounded
/// queue between them.
struct ThreadedServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadedServer {
    fn start(
        listener: TcpListener,
        addr: SocketAddr,
        service: Arc<dyn FrameService>,
        config: ServerConfig,
    ) -> ThreadedServer {
        let obs = Arc::clone(service.obs());
        let metrics = ServerMetrics::resolve(&obs);
        let shared = Arc::new(Shared {
            service,
            config,
            shutdown: AtomicBool::new(false),
            obs,
            metrics,
        });
        let workers = config.workers.max(1);
        // Multi-consumer hand-off: each worker owns a clone of the
        // receiver and competes for connections directly — no shared
        // `Mutex<Receiver>` serializing the dequeue side of the accept
        // path.
        let (tx, rx) = crossbeam::channel::bounded::<TcpStream>(config.queue_depth.max(1));

        let worker_handles: Vec<JoinHandle<()>> = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let rx = rx.clone();
                std::thread::spawn(move || worker_loop(&shared, &rx))
            })
            .collect();
        drop(rx);
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&shared, &listener, tx))
        };

        ThreadedServer { addr, shared, acceptor: Some(acceptor), workers: worker_handles }
    }

    fn stop(&mut self) {
        if self.acceptor.is_none() {
            return;
        }
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Wake the acceptor out of `accept()` with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        // The acceptor dropped its sender; workers drain the queue and
        // then see the channel disconnect.
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for ThreadedServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(shared: &Shared, listener: &TcpListener, tx: Sender<TcpStream>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            // The wake-up connection (or a late arrival): close and stop.
            return;
        }
        match tx.try_send(stream) {
            Ok(()) => {
                shared.metrics.accepted.inc();
            }
            Err(TrySendError::Full(stream)) => {
                // Explicit load shed: tell the client before closing.
                let peer = stream.peer_addr();
                shed(shared, stream);
                shared.metrics.shed.inc();
                shared.obs.event(
                    "shed",
                    peer.map(|a| a.to_string()).unwrap_or_else(|_| "unknown peer".into()),
                );
            }
            Err(TrySendError::Disconnected(_)) => return,
        }
    }
}

fn shed(shared: &Shared, mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    let _ = write_message(&mut stream, &Response::Busy.encode());
    // Drop closes the socket; the Busy frame is already on the wire (or
    // the peer is gone, in which case there is no one left to tell).
}

fn worker_loop(shared: &Shared, rx: &Receiver<TcpStream>) {
    loop {
        match rx.recv() {
            Ok(stream) => serve_connection(shared, stream),
            Err(_) => return, // acceptor gone and queue drained
        }
    }
}

fn serve_connection(shared: &Shared, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    loop {
        let (payload, ctx) = match read_message(&mut stream) {
            Ok(Some(message)) => message,
            Ok(None) => return, // clean close between frames
            Err(NetError::Wire(e)) => {
                // Framing is unrecoverable mid-stream: report, then close.
                shared.metrics.protocol_error((&e).into());
                shared.obs.event("protocol_error", e.to_string());
                let reply = Response::Error { detail: e.to_string() };
                let _ = write_message(&mut stream, &reply.encode());
                return;
            }
            Err(NetError::Closed) => {
                // A clean close lands on `Ok(None)` above; `Closed` means
                // the peer vanished mid-frame — a truncated frame.
                shared.metrics.protocol_error(ProtoErrorKind::Truncated);
                shared.obs.event("protocol_error", "peer closed mid-frame");
                return;
            }
            Err(_) => return, // timeout / reset: the deadline did its job
        };
        let response = match Request::decode_payload(&payload) {
            Ok(request) => {
                shared.metrics.requests.inc();
                shared.service.handle_traced(request, ctx)
            }
            Err(e) => {
                shared.metrics.protocol_error((&e).into());
                shared.obs.event("protocol_error", e.to_string());
                Response::Error { detail: e.to_string() }
            }
        };
        if write_message(&mut stream, &response.encode()).is_err() {
            return;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            // Drain semantics: the in-flight request got its response;
            // further requests need a new connection (which will be
            // refused). Close now so shutdown can join this worker.
            return;
        }
    }
}

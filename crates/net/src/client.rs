//! Blocking TCP client with retry/backoff and connection pooling.
//!
//! One [`NetClient`] wraps one connection and reconnects transparently.
//! Retries cover exactly the transient failures ([`NetError::is_retryable`]):
//! an explicit `Busy` shed, a missed deadline, or a dropped connection —
//! each retried on a fresh connection after exponential backoff. Protocol
//! errors and server-reported errors are never retried.
//!
//! Connections are kept alive between calls. A keep-alive peer may close
//! an idle connection at any time; the client detects that as a close
//! before any response byte on a *reused* stream and resends on a fresh
//! connection immediately — no retry budget burned, no backoff sleep —
//! counted in [`RetryStats::stale_reconnects`]. Only that exact shape is
//! replaced for free: a mid-frame drop or a failed write means the peer
//! may already be processing the request, so those take the normal
//! bounded retry path and count as disconnects. [`NetPool`] widens this
//! to a fixed set of persistent connections picked round-robin, so
//! concurrent callers (the proxy's worker threads) don't serialize on a
//! single link.

use crate::error::NetError;
use crate::stream::{read_message, write_message};
use crate::transport::Transport;
use crate::wire::{Request, Response, SearchHit};
use orsp_client::UploadRequest;
use orsp_obs::{TraceContext, TraceRecord};
use orsp_crypto::{BlindSignature, BlindedMessage};
use orsp_search::SearchQuery;
use orsp_server::{EntityAggregate, RejectReason};
use orsp_types::{DeviceId, EntityId, Timestamp};
use parking_lot::Mutex;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// Client tunables.
#[derive(Debug, Clone, Copy)]
pub struct ClientConfig {
    /// Deadline for establishing a connection.
    pub connect_timeout: Duration,
    /// Per-call read deadline.
    pub read_timeout: Duration,
    /// Per-call write deadline.
    pub write_timeout: Duration,
    /// Retries after the first attempt (on retryable failures only).
    pub max_retries: u32,
    /// First backoff sleep; doubles each retry.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Budget for one whole call, retries included. Each reconnect's
    /// `TcpStream::connect_timeout` is clamped to what remains, and a
    /// retry whose backoff would overrun the budget fails now instead —
    /// so a black-holed backend can never hold a call past the deadline,
    /// no matter how generous `connect_timeout` and `max_retries` are.
    /// `None` (the default) keeps the unbounded behavior.
    pub call_deadline: Option<Duration>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            max_retries: 5,
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(320),
            call_deadline: None,
        }
    }
}

/// Cumulative client-side retry accounting: what the backoff loop saw
/// and how long it slept. All counters are monotonic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Call attempts, including each first try.
    pub attempts: u64,
    /// Explicit `Busy` sheds received.
    pub busy: u64,
    /// Read/write deadline misses.
    pub timeouts: u64,
    /// Connections that dropped mid-exchange.
    pub disconnects: u64,
    /// Total time spent sleeping in backoff, in microseconds.
    pub backoff_us: u64,
    /// Calls that failed after exhausting every retry.
    pub exhausted: u64,
    /// Idle keep-alive connections the peer had closed, detected on the
    /// next call and replaced transparently (no retry burned, no backoff).
    pub stale_reconnects: u64,
}

impl RetryStats {
    /// Backoff sleeps actually taken. Each retryable failure triggers
    /// one, except the final failure of a call that exhausted its budget.
    pub fn retries(&self) -> u64 {
        (self.busy + self.timeouts + self.disconnects).saturating_sub(self.exhausted)
    }

    /// Fold another client's counters into this one (pool aggregation).
    pub fn absorb(&mut self, other: &RetryStats) {
        self.attempts += other.attempts;
        self.busy += other.busy;
        self.timeouts += other.timeouts;
        self.disconnects += other.disconnects;
        self.backoff_us += other.backoff_us;
        self.exhausted += other.exhausted;
        self.stale_reconnects += other.stale_reconnects;
    }
}

/// Per-call accounting returned by [`NetClient::call_traced`]: how hard
/// this one request had to work. The proxy uses it to attribute retries
/// to individual backends.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CallTrace {
    /// Attempts made, including the first. Transparent stale-connection
    /// replacements are not counted — only attempts that reached a live
    /// peer (or burned retry budget failing to).
    pub attempts: u32,
    /// Stale keep-alive connections replaced along the way.
    pub stale_reconnects: u32,
}

impl CallTrace {
    /// True if the call needed more than its first attempt (excluding
    /// transparent stale-connection replacement).
    pub fn retried(&self) -> bool {
        self.attempts > 1
    }
}

/// A blocking connection to an RSP server.
pub struct NetClient {
    addr: SocketAddr,
    config: ClientConfig,
    stream: Option<TcpStream>,
    /// True once the current stream has completed at least one call —
    /// i.e. it sat idle in keep-alive and the peer may have closed it.
    reused: bool,
    retry_stats: RetryStats,
}

impl NetClient {
    /// Build a client without connecting; the first call dials. Lets a
    /// pool (or the proxy) come up before its backends do.
    pub fn new(addr: SocketAddr, config: ClientConfig) -> NetClient {
        NetClient { addr, config, stream: None, reused: false, retry_stats: RetryStats::default() }
    }

    /// Connect to `addr` (eagerly, so configuration errors surface here).
    pub fn connect(addr: SocketAddr, config: ClientConfig) -> Result<NetClient, NetError> {
        let mut client = NetClient::new(addr, config);
        client.ensure_stream()?;
        Ok(client)
    }

    /// Dial now if not already connected.
    pub fn ensure_connected(&mut self) -> Result<(), NetError> {
        self.ensure_stream().map(|_| ())
    }

    /// The address this client dials.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Total retry attempts this client has made (busy + timeout + drop).
    pub fn retries(&self) -> u64 {
        self.retry_stats.retries()
    }

    /// Full retry/backoff accounting.
    pub fn retry_stats(&self) -> RetryStats {
        self.retry_stats
    }

    fn ensure_stream(&mut self) -> Result<&mut TcpStream, NetError> {
        self.ensure_stream_within(self.config.connect_timeout)
    }

    fn ensure_stream_within(
        &mut self,
        connect_timeout: Duration,
    ) -> Result<&mut TcpStream, NetError> {
        if self.stream.is_none() {
            let stream = TcpStream::connect_timeout(&self.addr, connect_timeout)
                .map_err(NetError::from_io)?;
            let _ = stream.set_nodelay(true);
            stream
                .set_read_timeout(Some(self.config.read_timeout))
                .map_err(NetError::from_io)?;
            stream
                .set_write_timeout(Some(self.config.write_timeout))
                .map_err(NetError::from_io)?;
            self.stream = Some(stream);
            self.reused = false;
        }
        Ok(self.stream.as_mut().expect("just set"))
    }

    /// One write/read exchange. `Ok(None)` means the peer closed before
    /// sending a single response byte — distinguishable from a mid-frame
    /// drop or a failed write ([`NetError::Closed`]) so the caller can
    /// treat a closed-while-idle keep-alive stream differently from a
    /// peer that died with the request possibly in hand.
    fn call_once(
        &mut self,
        frame: &[u8],
        connect_timeout: Duration,
    ) -> Result<Option<Response>, NetError> {
        let stream = self.ensure_stream_within(connect_timeout)?;
        write_message(stream, frame)?;
        match read_message(stream)? {
            Some((payload, _ctx)) => {
                let response = Response::decode_payload(&payload)?;
                self.reused = true;
                Ok(Some(response))
            }
            None => Ok(None),
        }
    }

    /// Send one request; retry with exponential backoff on `Busy`,
    /// timeouts, and dropped connections, reconnecting each time.
    ///
    /// If the calling thread is inside a traced span, the span's context
    /// is stamped onto the frame so the server continues the trace.
    pub fn call(&mut self, request: &Request) -> Result<Response, NetError> {
        self.call_traced(request).map(|(response, _)| response)
    }

    /// [`NetClient::call`], plus per-call attempt accounting.
    pub fn call_traced(&mut self, request: &Request) -> Result<(Response, CallTrace), NetError> {
        self.call_traced_with(request, orsp_obs::trace::current())
    }

    /// [`NetClient::call_traced`] with an explicit trace context instead
    /// of the thread's ambient one — for callers that fan work out to
    /// scoped threads (thread-locals don't cross that boundary).
    pub fn call_traced_with(
        &mut self,
        request: &Request,
        ctx: Option<TraceContext>,
    ) -> Result<(Response, CallTrace), NetError> {
        let frame = request.encode_traced(ctx.as_ref());
        let mut trace = CallTrace::default();
        let mut attempt: u32 = 0;
        let deadline = self.config.call_deadline.map(|d| std::time::Instant::now() + d);
        loop {
            // The call deadline clamps every dial: a black-holed peer
            // (SYNs silently dropped) blocks `connect()` only for what
            // remains of this call's budget, not the full
            // `connect_timeout` per retry.
            let connect_timeout = match deadline {
                Some(d) => {
                    let remaining = d.saturating_duration_since(std::time::Instant::now());
                    if remaining.is_zero() {
                        self.retry_stats.exhausted += 1;
                        return Err(NetError::Timeout);
                    }
                    self.config.connect_timeout.min(remaining)
                }
                None => self.config.connect_timeout,
            };
            let reused = self.reused && self.stream.is_some();
            self.retry_stats.attempts += 1;
            trace.attempts += 1;
            let mut before_any_byte = false;
            let failure = match self.call_once(&frame, connect_timeout) {
                Ok(Some(Response::Busy)) => NetError::Busy,
                // A typed unavailability report is a fail-fast: the range
                // is dead or demoted, retrying into it with backoff would
                // only burn the budget `Busy` retries are reserved for.
                Ok(Some(Response::Unavailable { detail })) => {
                    return Err(NetError::Unavailable(detail))
                }
                Ok(Some(response)) => return Ok((response, trace)),
                // Close before any response byte: the peer never started
                // answering this request.
                Ok(None) => {
                    before_any_byte = true;
                    NetError::Closed
                }
                Err(e) if e.is_retryable() => e,
                Err(e) => return Err(e),
            };
            // A close before any response byte on a *reused* keep-alive
            // stream means the peer dropped it while it sat idle — the
            // request was never answered. Replace the connection and
            // resend right away: no retry burned, no backoff. Only that
            // exact shape is free: a mid-frame drop or a failed write
            // (also `Closed`) means the peer may have started processing,
            // so it falls through to the bounded retry path and counts as
            // a disconnect. The fresh stream clears `reused`, so a
            // genuinely failing peer cannot loop here.
            if reused && before_any_byte {
                self.stream = None;
                self.retry_stats.stale_reconnects += 1;
                trace.attempts -= 1;
                trace.stale_reconnects += 1;
                continue;
            }
            match failure {
                NetError::Busy => self.retry_stats.busy += 1,
                NetError::Timeout => self.retry_stats.timeouts += 1,
                _ => self.retry_stats.disconnects += 1,
            }
            // Whatever happened, this connection is suspect: reconnect.
            self.stream = None;
            if attempt >= self.config.max_retries {
                self.retry_stats.exhausted += 1;
                return Err(failure);
            }
            let backoff = self
                .config
                .backoff_base
                .saturating_mul(1u32 << attempt.min(16))
                .min(self.config.backoff_cap);
            if let Some(d) = deadline {
                // Sleeping through the deadline helps no one: if the
                // backoff would overrun the budget, report the failure
                // now.
                let remaining = d.saturating_duration_since(std::time::Instant::now());
                if backoff >= remaining {
                    self.retry_stats.exhausted += 1;
                    return Err(failure);
                }
            }
            self.retry_stats.backoff_us += backoff.as_micros() as u64;
            std::thread::sleep(backoff);
            attempt += 1;
        }
    }

    // ------------------------------------------------- typed RPC helpers

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), NetError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Request a blind signature (the issuance RPC).
    pub fn issue_token(
        &mut self,
        device: DeviceId,
        blinded: &BlindedMessage,
        now: Timestamp,
    ) -> Result<Result<BlindSignature, String>, NetError> {
        match self.call(&Request::IssueToken { device, blinded: blinded.clone(), now })? {
            Response::TokenIssued { signature } => Ok(Ok(signature)),
            Response::TokenDenied { reason } => Ok(Err(reason)),
            other => Err(unexpected(&other)),
        }
    }

    /// Upload one anonymous record. The outer error is transport-level;
    /// the inner `Result` is the server's admission verdict.
    pub fn upload(
        &mut self,
        upload: UploadRequest,
        now: Timestamp,
    ) -> Result<Result<(), RejectReason>, NetError> {
        match self.call(&Request::Upload { upload, now })? {
            Response::UploadAccepted => Ok(Ok(())),
            Response::UploadRejected { reason } => Ok(Err(reason)),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetch an entity's published aggregate (None below the floor).
    pub fn fetch_aggregate(
        &mut self,
        entity: EntityId,
    ) -> Result<Option<EntityAggregate>, NetError> {
        match self.call(&Request::FetchAggregate { entity })? {
            Response::Aggregate { aggregate } => Ok(aggregate),
            other => Err(unexpected(&other)),
        }
    }

    /// Ranked search.
    pub fn search(&mut self, query: SearchQuery) -> Result<Vec<SearchHit>, NetError> {
        match self.call(&Request::Search { query })? {
            Response::SearchResults { hits } => Ok(hits),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetch the server's live metric snapshot.
    pub fn stats(&mut self) -> Result<orsp_obs::StatsSnapshot, NetError> {
        match self.call(&Request::Stats)? {
            Response::Stats { snapshot } => Ok(snapshot),
            other => Err(unexpected(&other)),
        }
    }

    /// Drain the server's completed sampled traces (each is returned at
    /// most once; see the `Traces` RPC).
    pub fn traces(&mut self) -> Result<Vec<TraceRecord>, NetError> {
        match self.call(&Request::Traces)? {
            Response::Traces { traces } => Ok(traces),
            other => Err(unexpected(&other)),
        }
    }
}

fn unexpected(response: &Response) -> NetError {
    match response {
        Response::Error { detail } => NetError::Unexpected(format!("server error: {detail}")),
        other => NetError::Unexpected(format!("{other:?}")),
    }
}

/// [`Transport`] over a TCP connection: interior mutability so worker
/// threads can share it (calls serialize on the connection, matching a
/// real device's single link to the service).
pub struct TcpTransport {
    client: Mutex<NetClient>,
}

impl TcpTransport {
    /// Connect a transport.
    pub fn connect(addr: SocketAddr, config: ClientConfig) -> Result<TcpTransport, NetError> {
        Ok(TcpTransport { client: Mutex::new(NetClient::connect(addr, config)?) })
    }

    /// Total retries across all calls.
    pub fn retries(&self) -> u64 {
        self.client.lock().retries()
    }

    /// Full retry/backoff accounting for the underlying client.
    pub fn retry_stats(&self) -> RetryStats {
        self.client.lock().retry_stats()
    }
}

impl Transport for TcpTransport {
    fn call(&self, request: &Request) -> Result<Response, NetError> {
        self.client.lock().call(request)
    }
}

/// A fixed set of persistent keep-alive connections to one server,
/// handed out round-robin. Each slot serializes its own exchanges behind
/// a mutex, so up to `size` calls proceed concurrently; a caller landing
/// on a busy slot waits for that slot rather than hunting for a free one
/// (round-robin keeps the load even, and exchanges are short).
///
/// Connections dial lazily on first use and are replaced transparently
/// when the peer closes them while idle (see [`RetryStats::stale_reconnects`]).
pub struct NetPool {
    slots: Vec<Mutex<NetClient>>,
    next: AtomicUsize,
}

impl NetPool {
    /// Build a pool of `size` lazily-dialed connections (minimum 1).
    pub fn new(addr: SocketAddr, config: ClientConfig, size: usize) -> NetPool {
        let slots =
            (0..size.max(1)).map(|_| Mutex::new(NetClient::new(addr, config))).collect();
        NetPool { slots, next: AtomicUsize::new(0) }
    }

    /// Build a pool and dial every slot now, so a dead server surfaces
    /// at construction instead of on the first call.
    pub fn connect(
        addr: SocketAddr,
        config: ClientConfig,
        size: usize,
    ) -> Result<NetPool, NetError> {
        let pool = NetPool::new(addr, config, size);
        for slot in &pool.slots {
            slot.lock().ensure_connected()?;
        }
        Ok(pool)
    }

    /// Number of connections in the pool.
    pub fn size(&self) -> usize {
        self.slots.len()
    }

    /// The address every slot dials.
    pub fn addr(&self) -> SocketAddr {
        self.slots[0].lock().addr()
    }

    fn slot(&self) -> &Mutex<NetClient> {
        let i = self.next.fetch_add(1, Ordering::Relaxed) % self.slots.len();
        &self.slots[i]
    }

    /// Send one request on the next slot (with the slot's full
    /// retry/backoff behavior).
    pub fn call(&self, request: &Request) -> Result<Response, NetError> {
        self.slot().lock().call(request)
    }

    /// [`NetPool::call`], plus per-call attempt accounting.
    pub fn call_traced(&self, request: &Request) -> Result<(Response, CallTrace), NetError> {
        self.slot().lock().call_traced(request)
    }

    /// [`NetPool::call_traced`] with an explicit trace context (for
    /// callers dispatching from scoped threads).
    pub fn call_traced_with(
        &self,
        request: &Request,
        ctx: Option<TraceContext>,
    ) -> Result<(Response, CallTrace), NetError> {
        self.slot().lock().call_traced_with(request, ctx)
    }

    /// Retry/backoff accounting summed across every slot.
    pub fn retry_stats(&self) -> RetryStats {
        let mut total = RetryStats::default();
        for slot in &self.slots {
            total.absorb(&slot.lock().retry_stats());
        }
        total
    }
}

impl Transport for NetPool {
    fn call(&self, request: &Request) -> Result<Response, NetError> {
        NetPool::call(self, request)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn answer_ping(stream: &mut TcpStream) {
        let (payload, _) = read_message(stream).expect("read").expect("frame");
        assert!(matches!(Request::decode_payload(&payload).expect("decode"), Request::Ping));
        write_message(stream, &Response::Pong.encode()).expect("write");
    }

    #[test]
    fn stale_keepalive_connection_is_replaced_without_burning_retries() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let (closed_tx, closed_rx) = std::sync::mpsc::channel();
        let server = std::thread::spawn(move || {
            // Connection 1: answer one ping, then close while it idles.
            let (mut s1, _) = listener.accept().expect("accept 1");
            answer_ping(&mut s1);
            drop(s1);
            closed_tx.send(()).expect("signal");
            // Connection 2: the transparent replacement.
            let (mut s2, _) = listener.accept().expect("accept 2");
            answer_ping(&mut s2);
        });

        let mut client = NetClient::connect(addr, ClientConfig::default()).expect("connect");
        client.ping().expect("first ping");
        closed_rx.recv().expect("server closed conn 1");
        let (response, trace) = client.call_traced(&Request::Ping).expect("second ping");
        assert!(matches!(response, Response::Pong));
        assert_eq!(trace.stale_reconnects, 1, "stale stream replaced once");
        assert!(!trace.retried(), "replacement is not a retry");

        let stats = client.retry_stats();
        assert_eq!(stats.stale_reconnects, 1);
        assert_eq!(stats.disconnects, 0, "idle close must not count as a disconnect");
        assert_eq!(stats.retries(), 0, "no retry budget burned");
        assert_eq!(stats.backoff_us, 0, "no backoff slept");
        server.join().expect("server");
    }

    #[test]
    fn mid_frame_drop_on_a_reused_stream_is_a_disconnect_not_stale() {
        // Connection 1 answers one ping, then on the next request sends
        // half a response header and dies. The peer *started* answering
        // — it may have processed the request — so the resend must burn
        // retry budget and count as a disconnect, not ride the free
        // stale-replacement path.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || {
            let (mut s1, _) = listener.accept().expect("accept 1");
            answer_ping(&mut s1);
            let _ = read_message(&mut s1).expect("read request 2").expect("frame");
            use std::io::Write;
            let torn = &Response::Pong.encode()[..5];
            s1.write_all(torn).expect("torn write");
            drop(s1);
            let (mut s2, _) = listener.accept().expect("accept 2");
            answer_ping(&mut s2);
        });

        let config = ClientConfig {
            max_retries: 2,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(2),
            ..ClientConfig::default()
        };
        let mut client = NetClient::connect(addr, config).expect("connect");
        client.ping().expect("first ping");
        let (response, trace) = client.call_traced(&Request::Ping).expect("second ping");
        assert!(matches!(response, Response::Pong));
        assert_eq!(trace.stale_reconnects, 0, "mid-frame drop is not stale");
        assert_eq!(trace.attempts, 2, "the resend burned a retry");

        let stats = client.retry_stats();
        assert_eq!(stats.stale_reconnects, 0);
        assert_eq!(stats.disconnects, 1, "mid-frame drop is a disconnect");
        assert_eq!(stats.retries(), 1);
        server.join().expect("server");
    }

    #[test]
    fn fresh_connection_eof_still_burns_the_retry_budget() {
        // A peer that closes every brand-new connection without answering
        // must exhaust retries, not loop forever in stale replacement.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || {
            let mut accepted = 0u32;
            while let Ok((s, _)) = listener.accept() {
                drop(s);
                accepted += 1;
                if accepted >= 8 {
                    break;
                }
            }
        });
        let config = ClientConfig {
            max_retries: 2,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(2),
            ..ClientConfig::default()
        };
        let mut client = NetClient::new(addr, config);
        let err = client.call(&Request::Ping).expect_err("must exhaust");
        assert_eq!(err, NetError::Closed);
        let stats = client.retry_stats();
        assert_eq!(stats.attempts, 3, "first try + two retries");
        assert_eq!(stats.stale_reconnects, 0);
        assert_eq!(stats.exhausted, 1);
        drop(client);
        // Unblock the listener loop if it is still waiting.
        let _ = TcpStream::connect(addr);
        let _ = TcpStream::connect(addr);
        let _ = TcpStream::connect(addr);
        let _ = TcpStream::connect(addr);
        let _ = TcpStream::connect(addr);
        server.join().expect("server");
    }

    #[test]
    fn call_deadline_bounds_the_whole_retry_loop() {
        // A server that sheds every request with `Busy` would normally
        // hold this client for the full retry schedule (50 retries at
        // 20–40ms backoff ≈ seconds). The call deadline cuts the loop
        // the moment the next backoff would overrun the budget.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || loop {
            let Ok((mut s, _)) = listener.accept() else { return };
            match read_message(&mut s) {
                Ok(Some(_)) => {
                    let _ = write_message(&mut s, &Response::Busy.encode());
                }
                _ => return, // the throwaway stop connection
            }
        });

        let config = ClientConfig {
            max_retries: 50,
            backoff_base: Duration::from_millis(20),
            backoff_cap: Duration::from_millis(40),
            call_deadline: Some(Duration::from_millis(150)),
            ..ClientConfig::default()
        };
        let mut client = NetClient::connect(addr, config).expect("connect");
        let started = std::time::Instant::now();
        let err = client.call(&Request::Ping).expect_err("deadline must cut the loop");
        let elapsed = started.elapsed();
        assert_eq!(err, NetError::Busy, "the last real failure is reported");
        assert!(elapsed < Duration::from_secs(1), "deadline ignored: took {elapsed:?}");

        let stats = client.retry_stats();
        assert_eq!(stats.exhausted, 1);
        assert!(stats.attempts < 51, "far fewer attempts than the retry budget allows");
        drop(client);
        let _ = TcpStream::connect(addr); // unblock the accept loop
        server.join().expect("server");
    }

    #[test]
    fn unavailable_fails_fast_without_burning_retries() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().expect("accept");
            let _ = read_message(&mut s).expect("read").expect("frame");
            let resp = Response::Unavailable { detail: "range 2 down".into() };
            write_message(&mut s, &resp.encode()).expect("write");
        });
        let config = ClientConfig {
            max_retries: 3,
            backoff_base: Duration::from_millis(50),
            ..ClientConfig::default()
        };
        let mut client = NetClient::connect(addr, config).expect("connect");
        let err = client.call(&Request::Ping).expect_err("must fail fast");
        assert_eq!(err, NetError::Unavailable("range 2 down".into()));
        let stats = client.retry_stats();
        assert_eq!(stats.attempts, 1, "no retry attempted");
        assert_eq!(stats.backoff_us, 0, "no backoff slept");
        server.join().expect("server");
    }

    #[test]
    fn pool_round_robins_calls_across_persistent_slots() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || {
            let mut workers = Vec::new();
            for _ in 0..2 {
                let (mut s, _) = listener.accept().expect("accept");
                workers.push(std::thread::spawn(move || {
                    let mut served = 0u32;
                    while let Ok(Some((payload, _))) = read_message(&mut s) {
                        assert!(matches!(
                            Request::decode_payload(&payload).expect("decode"),
                            Request::Ping
                        ));
                        if write_message(&mut s, &Response::Pong.encode()).is_err() {
                            break;
                        }
                        served += 1;
                    }
                    served
                }));
            }
            workers.into_iter().map(|w| w.join().expect("worker")).collect::<Vec<_>>()
        });

        let pool = NetPool::connect(addr, ClientConfig::default(), 2).expect("pool");
        assert_eq!(pool.size(), 2);
        for _ in 0..6 {
            assert!(matches!(pool.call(&Request::Ping).expect("call"), Response::Pong));
        }
        let stats = pool.retry_stats();
        assert_eq!(stats.attempts, 6);
        assert_eq!(stats.retries(), 0);
        drop(pool);
        let served = server.join().expect("server");
        assert_eq!(served, vec![3, 3], "round-robin spreads calls evenly");
    }
}

//! Blocking TCP client with retry/backoff.
//!
//! One [`NetClient`] wraps one connection and reconnects transparently.
//! Retries cover exactly the transient failures ([`NetError::is_retryable`]):
//! an explicit `Busy` shed, a missed deadline, or a dropped connection —
//! each retried on a fresh connection after exponential backoff. Protocol
//! errors and server-reported errors are never retried.

use crate::error::NetError;
use crate::stream::{read_message, write_message};
use crate::transport::Transport;
use crate::wire::{Request, Response, SearchHit};
use orsp_client::UploadRequest;
use orsp_crypto::{BlindSignature, BlindedMessage};
use orsp_search::SearchQuery;
use orsp_server::{EntityAggregate, RejectReason};
use orsp_types::{DeviceId, EntityId, Timestamp};
use parking_lot::Mutex;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Client tunables.
#[derive(Debug, Clone, Copy)]
pub struct ClientConfig {
    /// Deadline for establishing a connection.
    pub connect_timeout: Duration,
    /// Per-call read deadline.
    pub read_timeout: Duration,
    /// Per-call write deadline.
    pub write_timeout: Duration,
    /// Retries after the first attempt (on retryable failures only).
    pub max_retries: u32,
    /// First backoff sleep; doubles each retry.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            max_retries: 5,
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(320),
        }
    }
}

/// Cumulative client-side retry accounting: what the backoff loop saw
/// and how long it slept. All counters are monotonic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Call attempts, including each first try.
    pub attempts: u64,
    /// Explicit `Busy` sheds received.
    pub busy: u64,
    /// Read/write deadline misses.
    pub timeouts: u64,
    /// Connections that dropped mid-exchange.
    pub disconnects: u64,
    /// Total time spent sleeping in backoff, in microseconds.
    pub backoff_us: u64,
    /// Calls that failed after exhausting every retry.
    pub exhausted: u64,
}

impl RetryStats {
    /// Backoff sleeps actually taken. Each retryable failure triggers
    /// one, except the final failure of a call that exhausted its budget.
    pub fn retries(&self) -> u64 {
        (self.busy + self.timeouts + self.disconnects).saturating_sub(self.exhausted)
    }
}

/// A blocking connection to an RSP server.
pub struct NetClient {
    addr: SocketAddr,
    config: ClientConfig,
    stream: Option<TcpStream>,
    retry_stats: RetryStats,
}

impl NetClient {
    /// Connect to `addr` (eagerly, so configuration errors surface here).
    pub fn connect(addr: SocketAddr, config: ClientConfig) -> Result<NetClient, NetError> {
        let mut client =
            NetClient { addr, config, stream: None, retry_stats: RetryStats::default() };
        client.ensure_stream()?;
        Ok(client)
    }

    /// Total retry attempts this client has made (busy + timeout + drop).
    pub fn retries(&self) -> u64 {
        self.retry_stats.retries()
    }

    /// Full retry/backoff accounting.
    pub fn retry_stats(&self) -> RetryStats {
        self.retry_stats
    }

    fn ensure_stream(&mut self) -> Result<&mut TcpStream, NetError> {
        if self.stream.is_none() {
            let stream = TcpStream::connect_timeout(&self.addr, self.config.connect_timeout)
                .map_err(NetError::from_io)?;
            let _ = stream.set_nodelay(true);
            stream
                .set_read_timeout(Some(self.config.read_timeout))
                .map_err(NetError::from_io)?;
            stream
                .set_write_timeout(Some(self.config.write_timeout))
                .map_err(NetError::from_io)?;
            self.stream = Some(stream);
        }
        Ok(self.stream.as_mut().expect("just set"))
    }

    fn call_once(&mut self, frame: &[u8]) -> Result<Response, NetError> {
        let stream = self.ensure_stream()?;
        write_message(stream, frame)?;
        match read_message(stream)? {
            Some(payload) => Ok(Response::decode_payload(&payload)?),
            None => Err(NetError::Closed),
        }
    }

    /// Send one request; retry with exponential backoff on `Busy`,
    /// timeouts, and dropped connections, reconnecting each time.
    pub fn call(&mut self, request: &Request) -> Result<Response, NetError> {
        let frame = request.encode();
        let mut attempt: u32 = 0;
        loop {
            self.retry_stats.attempts += 1;
            let failure = match self.call_once(&frame) {
                Ok(Response::Busy) => NetError::Busy,
                Ok(response) => return Ok(response),
                Err(e) if e.is_retryable() => e,
                Err(e) => return Err(e),
            };
            match failure {
                NetError::Busy => self.retry_stats.busy += 1,
                NetError::Timeout => self.retry_stats.timeouts += 1,
                _ => self.retry_stats.disconnects += 1,
            }
            // Whatever happened, this connection is suspect: reconnect.
            self.stream = None;
            if attempt >= self.config.max_retries {
                self.retry_stats.exhausted += 1;
                return Err(failure);
            }
            let backoff = self
                .config
                .backoff_base
                .saturating_mul(1u32 << attempt.min(16))
                .min(self.config.backoff_cap);
            self.retry_stats.backoff_us += backoff.as_micros() as u64;
            std::thread::sleep(backoff);
            attempt += 1;
        }
    }

    // ------------------------------------------------- typed RPC helpers

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), NetError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Request a blind signature (the issuance RPC).
    pub fn issue_token(
        &mut self,
        device: DeviceId,
        blinded: &BlindedMessage,
        now: Timestamp,
    ) -> Result<Result<BlindSignature, String>, NetError> {
        match self.call(&Request::IssueToken { device, blinded: blinded.clone(), now })? {
            Response::TokenIssued { signature } => Ok(Ok(signature)),
            Response::TokenDenied { reason } => Ok(Err(reason)),
            other => Err(unexpected(&other)),
        }
    }

    /// Upload one anonymous record. The outer error is transport-level;
    /// the inner `Result` is the server's admission verdict.
    pub fn upload(
        &mut self,
        upload: UploadRequest,
        now: Timestamp,
    ) -> Result<Result<(), RejectReason>, NetError> {
        match self.call(&Request::Upload { upload, now })? {
            Response::UploadAccepted => Ok(Ok(())),
            Response::UploadRejected { reason } => Ok(Err(reason)),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetch an entity's published aggregate (None below the floor).
    pub fn fetch_aggregate(
        &mut self,
        entity: EntityId,
    ) -> Result<Option<EntityAggregate>, NetError> {
        match self.call(&Request::FetchAggregate { entity })? {
            Response::Aggregate { aggregate } => Ok(aggregate),
            other => Err(unexpected(&other)),
        }
    }

    /// Ranked search.
    pub fn search(&mut self, query: SearchQuery) -> Result<Vec<SearchHit>, NetError> {
        match self.call(&Request::Search { query })? {
            Response::SearchResults { hits } => Ok(hits),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetch the server's live metric snapshot.
    pub fn stats(&mut self) -> Result<orsp_obs::StatsSnapshot, NetError> {
        match self.call(&Request::Stats)? {
            Response::Stats { snapshot } => Ok(snapshot),
            other => Err(unexpected(&other)),
        }
    }
}

fn unexpected(response: &Response) -> NetError {
    match response {
        Response::Error { detail } => NetError::Unexpected(format!("server error: {detail}")),
        other => NetError::Unexpected(format!("{other:?}")),
    }
}

/// [`Transport`] over a TCP connection: interior mutability so worker
/// threads can share it (calls serialize on the connection, matching a
/// real device's single link to the service).
pub struct TcpTransport {
    client: Mutex<NetClient>,
}

impl TcpTransport {
    /// Connect a transport.
    pub fn connect(addr: SocketAddr, config: ClientConfig) -> Result<TcpTransport, NetError> {
        Ok(TcpTransport { client: Mutex::new(NetClient::connect(addr, config)?) })
    }

    /// Total retries across all calls.
    pub fn retries(&self) -> u64 {
        self.client.lock().retries()
    }

    /// Full retry/backoff accounting for the underlying client.
    pub fn retry_stats(&self) -> RetryStats {
        self.client.lock().retry_stats()
    }
}

impl Transport for TcpTransport {
    fn call(&self, request: &Request) -> Result<Response, NetError> {
        self.client.lock().call(request)
    }
}

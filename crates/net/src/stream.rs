//! Frame I/O over blocking byte streams (`std::io::Read`/`Write`).
//!
//! Shared by the TCP server and client so both sides enforce the same
//! header validation, CRC check, and payload cap. Deadlines are the
//! socket's read/write timeouts — a peer that stalls mid-frame surfaces
//! as [`NetError::Timeout`], never as a hang.

use crate::error::NetError;
use crate::wire::{check_crc, parse_header, HEADER_LEN};
use std::io::{Read, Write};

/// Write one already-framed message.
pub fn write_message<W: Write>(w: &mut W, frame: &[u8]) -> Result<(), NetError> {
    w.write_all(frame).map_err(NetError::from_io)?;
    w.flush().map_err(NetError::from_io)
}

/// Read one message's payload. `Ok(None)` means the peer closed
/// *between* frames — not one message byte arrived; EOF or a dropped
/// connection mid-frame is a typed error.
pub fn read_message<R: Read>(r: &mut R) -> Result<Option<Vec<u8>>, NetError> {
    let mut header = [0u8; HEADER_LEN];
    // First byte separately: a close before any header byte is a normal
    // end of conversation, not an error. That covers both the clean FIN
    // and the reset a keep-alive race produces (peer closes while our
    // request is in flight; whether the read sees the buffered EOF or
    // the answering RST first is kernel timing) — in either shape the
    // peer sent nothing, which is what `Ok(None)` asserts.
    let mut first = [0u8; 1];
    loop {
        match r.read(&mut first) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) if reset_kind(&e) => return Ok(None),
            Err(e) => return Err(NetError::from_io(e)),
        }
    }
    header[0] = first[0];
    r.read_exact(&mut header[1..]).map_err(NetError::from_io)?;
    let (len, crc) = parse_header(&header)?;
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(NetError::from_io)?;
    check_crc(&payload, crc)?;
    Ok(Some(payload))
}

/// Errors a dead peer's teardown produces at the *first* byte of a
/// message boundary.
fn reset_kind(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::ConnectionReset | std::io::ErrorKind::ConnectionAborted
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::WireError;
    use crate::wire::frame;

    #[test]
    fn round_trip_over_cursor() {
        let mut buf = Vec::new();
        write_message(&mut buf, &frame(b"abc")).unwrap();
        write_message(&mut buf, &frame(b"defg")).unwrap();
        let mut r = &buf[..];
        assert_eq!(read_message(&mut r).unwrap(), Some(b"abc".to_vec()));
        assert_eq!(read_message(&mut r).unwrap(), Some(b"defg".to_vec()));
        assert_eq!(read_message(&mut r).unwrap(), None, "clean EOF");
    }

    #[test]
    fn eof_mid_frame_is_an_error() {
        let framed = frame(b"abcdef");
        let mut r = &framed[..framed.len() - 2];
        assert!(matches!(read_message(&mut r), Err(NetError::Closed)));
    }

    #[test]
    fn corrupt_crc_is_a_wire_error() {
        let mut framed = frame(b"abcdef");
        let n = framed.len();
        framed[n - 1] ^= 0x01;
        let mut r = &framed[..];
        assert!(matches!(
            read_message(&mut r),
            Err(NetError::Wire(WireError::BadCrc { .. }))
        ));
    }

    #[test]
    fn hostile_length_is_capped() {
        let mut framed = frame(b"x");
        framed[5..9].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut r = &framed[..];
        assert!(matches!(
            read_message(&mut r),
            Err(NetError::Wire(WireError::Oversized { .. }))
        ));
    }
}

//! Frame I/O over blocking byte streams (`std::io::Read`/`Write`).
//!
//! Shared by the TCP server and client so both sides enforce the same
//! header validation, CRC check, and payload cap. The header is read in
//! stages — magic+version first, then the version's fixed remainder,
//! then the optional trace-context block — so a v1 peer and a v2 peer
//! land in the same payload path. Deadlines are the socket's read/write
//! timeouts — a peer that stalls mid-frame surfaces as
//! [`NetError::Timeout`], never as a hang.

use crate::error::NetError;
use crate::wire::{
    check_crc, parse_prefix, parse_trace_ctx, parse_v1_rest, parse_v2_rest, HEADER_LEN,
    HEADER_LEN_V2, PREFIX_LEN, TRACE_CTX_LEN, V1,
};
use orsp_obs::TraceContext;
use std::io::{Read, Write};

/// Write one already-framed message.
pub fn write_message<W: Write>(w: &mut W, frame: &[u8]) -> Result<(), NetError> {
    w.write_all(frame).map_err(NetError::from_io)?;
    w.flush().map_err(NetError::from_io)
}

/// Read one message: the payload plus the trace context, if the sender
/// stamped one. `Ok(None)` means the peer closed *between* frames — not
/// one message byte arrived; EOF or a dropped connection mid-frame is a
/// typed error.
pub fn read_message<R: Read>(
    r: &mut R,
) -> Result<Option<(Vec<u8>, Option<TraceContext>)>, NetError> {
    let mut prefix = [0u8; PREFIX_LEN];
    // First byte separately: a close before any header byte is a normal
    // end of conversation, not an error. That covers both the clean FIN
    // and the reset a keep-alive race produces (peer closes while our
    // request is in flight; whether the read sees the buffered EOF or
    // the answering RST first is kernel timing) — in either shape the
    // peer sent nothing, which is what `Ok(None)` asserts.
    let mut first = [0u8; 1];
    loop {
        match r.read(&mut first) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) if reset_kind(&e) => return Ok(None),
            Err(e) => return Err(NetError::from_io(e)),
        }
    }
    prefix[0] = first[0];
    r.read_exact(&mut prefix[1..]).map_err(NetError::from_io)?;
    let version = parse_prefix(&prefix)?;
    let (traced, len, crc) = if version == V1 {
        let mut rest = [0u8; HEADER_LEN - PREFIX_LEN];
        r.read_exact(&mut rest).map_err(NetError::from_io)?;
        let (len, crc) = parse_v1_rest(&rest)?;
        (false, len, crc)
    } else {
        let mut rest = [0u8; HEADER_LEN_V2 - PREFIX_LEN];
        r.read_exact(&mut rest).map_err(NetError::from_io)?;
        parse_v2_rest(&rest)?
    };
    let ctx = if traced {
        let mut block = [0u8; TRACE_CTX_LEN];
        r.read_exact(&mut block).map_err(NetError::from_io)?;
        Some(parse_trace_ctx(&block)?)
    } else {
        None
    };
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(NetError::from_io)?;
    check_crc(&payload, crc)?;
    Ok(Some((payload, ctx)))
}

/// Errors a dead peer's teardown produces at the *first* byte of a
/// message boundary.
fn reset_kind(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::ConnectionReset | std::io::ErrorKind::ConnectionAborted
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::WireError;
    use crate::wire::{frame, frame_traced, frame_v1};

    #[test]
    fn round_trip_over_cursor() {
        let mut buf = Vec::new();
        write_message(&mut buf, &frame(b"abc")).unwrap();
        write_message(&mut buf, &frame(b"defg")).unwrap();
        let mut r = &buf[..];
        assert_eq!(read_message(&mut r).unwrap(), Some((b"abc".to_vec(), None)));
        assert_eq!(read_message(&mut r).unwrap(), Some((b"defg".to_vec(), None)));
        assert_eq!(read_message(&mut r).unwrap(), None, "clean EOF");
    }

    #[test]
    fn trace_context_rides_the_frame() {
        let ctx = TraceContext { trace_id: 42, span_id: 7, sampled: true };
        let mut buf = Vec::new();
        write_message(&mut buf, &frame_traced(b"abc", Some(&ctx))).unwrap();
        write_message(&mut buf, &frame_v1(b"old")).unwrap();
        let mut r = &buf[..];
        assert_eq!(read_message(&mut r).unwrap(), Some((b"abc".to_vec(), Some(ctx))));
        assert_eq!(
            read_message(&mut r).unwrap(),
            Some((b"old".to_vec(), None)),
            "a v1 peer interleaves cleanly"
        );
    }

    #[test]
    fn eof_mid_frame_is_an_error() {
        let framed = frame(b"abcdef");
        let mut r = &framed[..framed.len() - 2];
        assert!(matches!(read_message(&mut r), Err(NetError::Closed)));
    }

    #[test]
    fn eof_mid_trace_context_is_an_error() {
        let ctx = TraceContext { trace_id: 42, span_id: 7, sampled: false };
        let framed = frame_traced(b"abcdef", Some(&ctx));
        let mut r = &framed[..HEADER_LEN_V2 + TRACE_CTX_LEN / 2];
        assert!(matches!(read_message(&mut r), Err(NetError::Closed)));
    }

    #[test]
    fn corrupt_crc_is_a_wire_error() {
        let mut framed = frame(b"abcdef");
        let n = framed.len();
        framed[n - 1] ^= 0x01;
        let mut r = &framed[..];
        assert!(matches!(
            read_message(&mut r),
            Err(NetError::Wire(WireError::BadCrc { .. }))
        ));
    }

    #[test]
    fn hostile_length_is_capped() {
        let mut framed = frame(b"x");
        framed[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut r = &framed[..];
        assert!(matches!(
            read_message(&mut r),
            Err(NetError::Wire(WireError::Oversized { .. }))
        ));
    }
}

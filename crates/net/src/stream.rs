//! Frame I/O over blocking byte streams (`std::io::Read`/`Write`).
//!
//! Shared by the TCP client and the threaded server transport so both
//! sides enforce the same header validation, CRC check, and payload cap.
//! The actual staging lives in [`crate::assembler::FrameAssembler`] —
//! the same state machine the reactor drives with non-blocking reads —
//! here driven with exact-size blocking reads ([`FrameAssembler::need`]
//! bytes at a time), so this reader never consumes past the end of a
//! frame. Deadlines are the socket's read/write timeouts — a peer that
//! stalls mid-frame surfaces as [`NetError::Timeout`], never as a hang.

use crate::assembler::FrameAssembler;
use crate::error::NetError;
use orsp_obs::TraceContext;
use std::io::{Read, Write};

/// Write one already-framed message.
pub fn write_message<W: Write>(w: &mut W, frame: &[u8]) -> Result<(), NetError> {
    w.write_all(frame).map_err(NetError::from_io)?;
    w.flush().map_err(NetError::from_io)
}

/// Read one message: the payload plus the trace context, if the sender
/// stamped one. `Ok(None)` means the peer closed *between* frames — not
/// one message byte arrived; EOF or a dropped connection mid-frame is a
/// typed error.
pub fn read_message<R: Read>(
    r: &mut R,
) -> Result<Option<(Vec<u8>, Option<TraceContext>)>, NetError> {
    // First byte separately: a close before any header byte is a normal
    // end of conversation, not an error. That covers both the clean FIN
    // and the reset a keep-alive race produces (peer closes while our
    // request is in flight; whether the read sees the buffered EOF or
    // the answering RST first is kernel timing) — in either shape the
    // peer sent nothing, which is what `Ok(None)` asserts.
    let mut first = [0u8; 1];
    loop {
        match r.read(&mut first) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) if reset_kind(&e) => return Ok(None),
            Err(e) => return Err(NetError::from_io(e)),
        }
    }
    let mut asm = FrameAssembler::new();
    let mut done = asm.feed(&first)?.1;
    // Drive the shared state machine with exact-size reads: at most
    // `need()` bytes per read, so nothing past this frame's boundary is
    // ever consumed from the stream.
    let mut chunk = [0u8; 4096];
    while done.is_none() {
        let take = asm.need().min(chunk.len());
        if take == 0 {
            // A zero-length payload: the frame completes on no input.
            done = asm.feed(&[])?.1;
            continue;
        }
        r.read_exact(&mut chunk[..take]).map_err(NetError::from_io)?;
        done = asm.feed(&chunk[..take])?.1;
    }
    let frame = done.expect("loop exits with a frame");
    Ok(Some((frame.payload, frame.ctx)))
}

/// Errors a dead peer's teardown produces at the *first* byte of a
/// message boundary.
fn reset_kind(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::ConnectionReset | std::io::ErrorKind::ConnectionAborted
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::WireError;
    use crate::wire::{frame, frame_traced, frame_v1, HEADER_LEN_V2, TRACE_CTX_LEN};

    #[test]
    fn round_trip_over_cursor() {
        let mut buf = Vec::new();
        write_message(&mut buf, &frame(b"abc")).unwrap();
        write_message(&mut buf, &frame(b"defg")).unwrap();
        let mut r = &buf[..];
        assert_eq!(read_message(&mut r).unwrap(), Some((b"abc".to_vec(), None)));
        assert_eq!(read_message(&mut r).unwrap(), Some((b"defg".to_vec(), None)));
        assert_eq!(read_message(&mut r).unwrap(), None, "clean EOF");
    }

    #[test]
    fn trace_context_rides_the_frame() {
        let ctx = TraceContext { trace_id: 42, span_id: 7, sampled: true };
        let mut buf = Vec::new();
        write_message(&mut buf, &frame_traced(b"abc", Some(&ctx))).unwrap();
        write_message(&mut buf, &frame_v1(b"old")).unwrap();
        let mut r = &buf[..];
        assert_eq!(read_message(&mut r).unwrap(), Some((b"abc".to_vec(), Some(ctx))));
        assert_eq!(
            read_message(&mut r).unwrap(),
            Some((b"old".to_vec(), None)),
            "a v1 peer interleaves cleanly"
        );
    }

    #[test]
    fn eof_mid_frame_is_an_error() {
        let framed = frame(b"abcdef");
        let mut r = &framed[..framed.len() - 2];
        assert!(matches!(read_message(&mut r), Err(NetError::Closed)));
    }

    #[test]
    fn eof_mid_trace_context_is_an_error() {
        let ctx = TraceContext { trace_id: 42, span_id: 7, sampled: false };
        let framed = frame_traced(b"abcdef", Some(&ctx));
        let mut r = &framed[..HEADER_LEN_V2 + TRACE_CTX_LEN / 2];
        assert!(matches!(read_message(&mut r), Err(NetError::Closed)));
    }

    #[test]
    fn corrupt_crc_is_a_wire_error() {
        let mut framed = frame(b"abcdef");
        let n = framed.len();
        framed[n - 1] ^= 0x01;
        let mut r = &framed[..];
        assert!(matches!(
            read_message(&mut r),
            Err(NetError::Wire(WireError::BadCrc { .. }))
        ));
    }

    #[test]
    fn hostile_length_is_capped() {
        let mut framed = frame(b"x");
        framed[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut r = &framed[..];
        assert!(matches!(
            read_message(&mut r),
            Err(NetError::Wire(WireError::Oversized { .. }))
        ));
    }
}

//! Minimal `extern "C"` bindings for the readiness syscalls the reactor
//! needs: `epoll` and `eventfd`. This is the only module in the crate
//! allowed to use `unsafe` — everything above it speaks through the safe
//! [`Epoll`] / [`EventFd`] wrappers, which own their file descriptors
//! and close them on drop.
//!
//! Zero-dependency rule: no libc crate, no mio/tokio. The bindings cover
//! exactly the five calls the event loop uses (`epoll_create1`,
//! `epoll_ctl`, `epoll_wait`, `eventfd`, `close`) plus the `read`/`write`
//! pair on the eventfd. Sockets themselves stay `std::net` types with
//! `set_nonblocking(true)`; readiness is the only thing std does not
//! expose.

#![allow(unsafe_code)]

use std::io;
use std::os::fd::RawFd;

/// One readiness event, ABI-compatible with the kernel's
/// `struct epoll_event` (packed on x86_64 — matching that layout is what
/// makes the `data` cookie round-trip intact).
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Readiness mask (`EPOLLIN` / `EPOLLOUT` / ...).
    pub events: u32,
    /// Caller-owned cookie, returned verbatim with each event.
    pub data: u64,
}

/// Readable.
pub const EPOLLIN: u32 = 0x001;
/// Writable.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (always reported, never needs arming).
pub const EPOLLERR: u32 = 0x008;
/// Hang-up (always reported, never needs arming).
pub const EPOLLHUP: u32 = 0x010;
/// Peer closed its write half.
pub const EPOLLRDHUP: u32 = 0x2000;
/// Disarm the fd after delivering one event; re-arm with `modify`.
pub const EPOLLONESHOT: u32 = 1 << 30;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLL_CLOEXEC: i32 = 0x80000;
const EFD_CLOEXEC: i32 = 0x80000;
const EFD_NONBLOCK: i32 = 0x800;

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn close(fd: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
}

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// An owned epoll instance.
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Create a close-on-exec epoll instance.
    pub fn new() -> io::Result<Epoll> {
        // SAFETY: plain syscall, no pointers.
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: i32, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent { events: interest, data: token };
        // SAFETY: `ev` outlives the call; the kernel copies it.
        cvt(unsafe { epoll_ctl(self.fd, op, fd, &mut ev) }).map(|_| ())
    }

    /// Register `fd` with the given interest mask and cookie.
    pub fn add(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest, token)
    }

    /// Change an already-registered fd's interest mask (also how a
    /// `EPOLLONESHOT` registration is re-armed).
    pub fn modify(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest, token)
    }

    /// Deregister `fd`.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        let mut ev = EpollEvent { events: 0, data: 0 };
        // SAFETY: a non-null event pointer keeps pre-2.6.9 kernels happy.
        cvt(unsafe { epoll_ctl(self.fd, EPOLL_CTL_DEL, fd, &mut ev) }).map(|_| ())
    }

    /// Block until readiness or `timeout_ms` (`-1` = forever); fills
    /// `events` and returns how many landed. EINTR retries internally.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        loop {
            // SAFETY: the buffer is valid for `events.len()` entries.
            let n = unsafe {
                epoll_wait(self.fd, events.as_mut_ptr(), events.len() as i32, timeout_ms)
            };
            if n >= 0 {
                return Ok(n as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: we own the fd.
        unsafe { close(self.fd) };
    }
}

// SAFETY: an epoll fd is just an integer handle, and the kernel allows
// concurrent `epoll_ctl`/`epoll_wait` on the same instance from any
// thread — that is how workers re-arm a connection's read interest
// directly after a full response write.
unsafe impl Send for Epoll {}
unsafe impl Sync for Epoll {}

/// An owned non-blocking eventfd — the reactor's cross-thread doorbell.
/// Workers `ring()` it from any thread; the reactor registers it in the
/// epoll set and `drain()`s it when it fires.
pub struct EventFd {
    fd: RawFd,
}

impl EventFd {
    /// Create a close-on-exec, non-blocking eventfd.
    pub fn new() -> io::Result<EventFd> {
        // SAFETY: plain syscall, no pointers.
        let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        Ok(EventFd { fd })
    }

    /// The raw fd, for epoll registration.
    pub fn raw(&self) -> RawFd {
        self.fd
    }

    /// Wake the reactor. Async-signal-safe, callable from any thread;
    /// errors are ignored (the counter saturating still leaves the fd
    /// readable, which is all a doorbell needs).
    pub fn ring(&self) {
        let one: u64 = 1;
        // SAFETY: writes 8 bytes from a live stack buffer.
        unsafe { write(self.fd, one.to_ne_bytes().as_ptr(), 8) };
    }

    /// Reset the doorbell (reads the counter down to zero).
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        // SAFETY: reads 8 bytes into a live stack buffer.
        unsafe { read(self.fd, buf.as_mut_ptr(), 8) };
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        // SAFETY: we own the fd.
        unsafe { close(self.fd) };
    }
}

// `EventFd` is ring/drain over an atomic kernel counter.
unsafe impl Send for EventFd {}
unsafe impl Sync for EventFd {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn eventfd_rings_through_epoll() {
        let ep = Epoll::new().expect("epoll");
        let efd = EventFd::new().expect("eventfd");
        ep.add(efd.raw(), EPOLLIN, 7).expect("add");
        let mut events = [EpollEvent { events: 0, data: 0 }; 4];
        assert_eq!(ep.wait(&mut events, 0).expect("wait"), 0, "silent before ring");
        efd.ring();
        let n = ep.wait(&mut events, 1000).expect("wait");
        assert_eq!(n, 1);
        assert_eq!({ events[0].data }, 7, "cookie round-trips");
        efd.drain();
        assert_eq!(ep.wait(&mut events, 0).expect("wait"), 0, "drained");
    }

    #[test]
    fn socket_readiness_and_oneshot_rearm() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut client = TcpStream::connect(addr).expect("connect");
        let (server_side, _) = listener.accept().expect("accept");
        server_side.set_nonblocking(true).expect("nonblocking");

        let ep = Epoll::new().expect("epoll");
        ep.add(server_side.as_raw_fd(), EPOLLIN | EPOLLONESHOT, 42).expect("add");

        let mut events = [EpollEvent { events: 0, data: 0 }; 4];
        client.write_all(b"hi").expect("write");
        let n = ep.wait(&mut events, 2000).expect("wait");
        assert_eq!(n, 1);
        assert_eq!({ events[0].data }, 42);
        assert_ne!({ events[0].events } & EPOLLIN, 0);

        // Oneshot: the fd is disarmed until re-armed, even with unread data.
        assert_eq!(ep.wait(&mut events, 50).expect("wait"), 0, "disarmed after one event");
        ep.modify(server_side.as_raw_fd(), EPOLLIN | EPOLLONESHOT, 42).expect("rearm");
        assert_eq!(ep.wait(&mut events, 2000).expect("wait"), 1, "re-armed fires again");
    }
}

//! Incremental frame reassembly: the partial-read state machine behind
//! both the blocking [`crate::stream::read_message`] and the reactor's
//! non-blocking connections.
//!
//! A [`FrameAssembler`] is fed bytes in whatever chunking the transport
//! produces — one byte at a time, a kernel buffer at a time, or a whole
//! frame — and yields exactly the messages the one-shot
//! [`crate::wire::decode_frame_traced`] would have decoded from the
//! concatenation (`tests/frame_reassembly.rs` pins that equality over
//! every prefix split and random chunkings). Validation happens at the
//! earliest byte that can fail it: bad magic at byte 4, a hostile length
//! the moment the header completes — *before* any payload allocation —
//! and a CRC mismatch when the payload's last byte lands.

use crate::error::WireError;
use crate::wire::{
    check_crc, parse_prefix, parse_trace_ctx, parse_v1_rest, parse_v2_rest, HEADER_LEN,
    HEADER_LEN_V2, PREFIX_LEN, TRACE_CTX_LEN, V1,
};
use orsp_obs::TraceContext;

/// v1 header remainder (after the shared prefix).
const V1_REST: usize = HEADER_LEN - PREFIX_LEN;
/// v2 header remainder (after the shared prefix).
const V2_REST: usize = HEADER_LEN_V2 - PREFIX_LEN;

/// One fully reassembled message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AssembledFrame {
    /// The frame payload (CRC already verified).
    pub payload: Vec<u8>,
    /// The trace context, if the sender stamped one.
    pub ctx: Option<TraceContext>,
}

enum State {
    /// Collecting the 5-byte magic+version prefix.
    Prefix { have: usize, buf: [u8; PREFIX_LEN] },
    /// Collecting the version's fixed header remainder.
    HeaderRest { version: u8, have: usize, buf: [u8; V2_REST] },
    /// Collecting the optional trace-context block.
    TraceCtx { len: usize, crc: u32, have: usize, buf: [u8; TRACE_CTX_LEN] },
    /// Collecting the payload (allocated only after the length passed
    /// the [`crate::wire::MAX_PAYLOAD`] check).
    Payload { crc: u32, ctx: Option<TraceContext>, buf: Vec<u8>, len: usize },
    /// A framing error was returned; the stream is unrecoverable.
    Poisoned,
}

/// The reassembly state machine. One per connection; reusable across
/// frames (completing a frame resets it to expect the next prefix).
pub struct FrameAssembler {
    state: State,
}

impl Default for FrameAssembler {
    fn default() -> Self {
        Self::new()
    }
}

impl FrameAssembler {
    /// An assembler at a frame boundary.
    pub fn new() -> FrameAssembler {
        FrameAssembler { state: State::Prefix { have: 0, buf: [0; PREFIX_LEN] } }
    }

    /// True when not a single byte of the next frame has arrived — the
    /// position where a peer close is a clean end of conversation rather
    /// than a truncated frame.
    pub fn at_boundary(&self) -> bool {
        matches!(self.state, State::Prefix { have: 0, .. })
    }

    /// Bytes that would complete the current stage (≥ 1 except on a
    /// zero-length payload, where the frame completes without further
    /// input — `feed(&[])` yields it). Blocking readers use this to read
    /// exactly what the frame needs and never consume past its end.
    pub fn need(&self) -> usize {
        match &self.state {
            State::Prefix { have, .. } => PREFIX_LEN - have,
            State::HeaderRest { version, have, .. } => {
                (if *version == V1 { V1_REST } else { V2_REST }) - have
            }
            State::TraceCtx { have, .. } => TRACE_CTX_LEN - have,
            State::Payload { buf, len, .. } => len - buf.len(),
            State::Poisoned => 1,
        }
    }

    /// Consume bytes from `input` — at most up to the end of the current
    /// frame — and return `(consumed, Some(frame))` when one completes.
    /// The caller re-feeds the remainder (it belongs to the next frame);
    /// stopping at the boundary is what lets a server keep at most one
    /// request in flight per connection.
    ///
    /// Framing errors are terminal for the stream: after an `Err` the
    /// assembler stays poisoned and every further feed returns
    /// [`WireError::Malformed`].
    pub fn feed(
        &mut self,
        input: &[u8],
    ) -> Result<(usize, Option<AssembledFrame>), WireError> {
        let mut at = 0usize;
        loop {
            match &mut self.state {
                State::Prefix { have, buf } => {
                    let take = (PREFIX_LEN - *have).min(input.len() - at);
                    buf[*have..*have + take].copy_from_slice(&input[at..at + take]);
                    *have += take;
                    at += take;
                    if *have < PREFIX_LEN {
                        return Ok((at, None));
                    }
                    let version = match parse_prefix(buf) {
                        Ok(v) => v,
                        Err(e) => return self.poison(e),
                    };
                    self.state = State::HeaderRest { version, have: 0, buf: [0; V2_REST] };
                }
                State::HeaderRest { version, have, buf } => {
                    let rest = if *version == V1 { V1_REST } else { V2_REST };
                    let take = (rest - *have).min(input.len() - at);
                    buf[*have..*have + take].copy_from_slice(&input[at..at + take]);
                    *have += take;
                    at += take;
                    if *have < rest {
                        return Ok((at, None));
                    }
                    let (traced, len, crc) = if *version == V1 {
                        let mut v1 = [0u8; V1_REST];
                        v1.copy_from_slice(&buf[..V1_REST]);
                        match parse_v1_rest(&v1) {
                            Ok((len, crc)) => (false, len, crc),
                            Err(e) => return self.poison(e),
                        }
                    } else {
                        match parse_v2_rest(buf) {
                            Ok(parsed) => parsed,
                            Err(e) => return self.poison(e),
                        }
                    };
                    // `len` is now proven ≤ MAX_PAYLOAD: the payload
                    // buffer below is the first allocation this frame
                    // causes, so a hostile length never allocates.
                    self.state = if traced {
                        State::TraceCtx { len, crc, have: 0, buf: [0; TRACE_CTX_LEN] }
                    } else {
                        State::Payload {
                            crc,
                            ctx: None,
                            buf: Vec::with_capacity(len),
                            len,
                        }
                    };
                }
                State::TraceCtx { len, crc, have, buf } => {
                    let take = (TRACE_CTX_LEN - *have).min(input.len() - at);
                    buf[*have..*have + take].copy_from_slice(&input[at..at + take]);
                    *have += take;
                    at += take;
                    if *have < TRACE_CTX_LEN {
                        return Ok((at, None));
                    }
                    let ctx = match parse_trace_ctx(buf) {
                        Ok(ctx) => ctx,
                        Err(e) => return self.poison(e),
                    };
                    let (len, crc) = (*len, *crc);
                    self.state =
                        State::Payload { crc, ctx: Some(ctx), buf: Vec::with_capacity(len), len };
                }
                State::Payload { crc, ctx, buf, len } => {
                    let take = (*len - buf.len()).min(input.len() - at);
                    buf.extend_from_slice(&input[at..at + take]);
                    at += take;
                    if buf.len() < *len {
                        return Ok((at, None));
                    }
                    if let Err(e) = check_crc(buf, *crc) {
                        return self.poison(e);
                    }
                    let frame =
                        AssembledFrame { payload: std::mem::take(buf), ctx: ctx.take() };
                    self.state = State::Prefix { have: 0, buf: [0; PREFIX_LEN] };
                    return Ok((at, Some(frame)));
                }
                State::Poisoned => {
                    return Err(WireError::Malformed("stream poisoned by earlier framing error"))
                }
            }
        }
    }

    fn poison<T>(&mut self, e: WireError) -> Result<T, WireError> {
        self.state = State::Poisoned;
        Err(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{frame, frame_traced, frame_v1, MAX_PAYLOAD};

    fn feed_all(asm: &mut FrameAssembler, mut bytes: &[u8]) -> Vec<AssembledFrame> {
        let mut out = Vec::new();
        while !bytes.is_empty() {
            let (consumed, msg) = asm.feed(bytes).expect("feed");
            assert!(consumed > 0 || msg.is_some(), "progress");
            if let Some(m) = msg {
                out.push(m);
            }
            bytes = &bytes[consumed..];
        }
        // A zero-length payload can complete with no bytes left.
        if let (_, Some(m)) = asm.feed(&[]).expect("flush") {
            out.push(m);
        }
        out
    }

    #[test]
    fn byte_at_a_time_equals_one_shot() {
        let ctx = TraceContext { trace_id: 99, span_id: 3, sampled: true };
        let frames =
            [frame(b"hello"), frame_v1(b"old"), frame_traced(b"traced", Some(&ctx)), frame(b"")];
        let stream: Vec<u8> = frames.concat();
        let mut asm = FrameAssembler::new();
        let mut got = Vec::new();
        for b in &stream {
            let (consumed, msg) = asm.feed(std::slice::from_ref(b)).expect("feed");
            assert_eq!(consumed, 1);
            if let Some(m) = msg {
                got.push(m);
            }
        }
        // The trailing empty-payload frame completes at its final header
        // byte, so all four are out already.
        assert_eq!(got.len(), 4);
        assert_eq!(got[0].payload, b"hello");
        assert_eq!(got[1].payload, b"old");
        assert_eq!(got[1].ctx, None);
        assert_eq!(got[2].payload, b"traced");
        assert_eq!(got[2].ctx, Some(ctx));
        assert_eq!(got[3].payload, b"");
        assert!(asm.at_boundary());
    }

    #[test]
    fn feed_stops_at_the_frame_boundary() {
        let mut bytes = frame(b"one");
        bytes.extend_from_slice(&frame(b"two"));
        let mut asm = FrameAssembler::new();
        let (consumed, msg) = asm.feed(&bytes).expect("feed");
        assert_eq!(msg.expect("first frame").payload, b"one");
        assert!(consumed < bytes.len(), "second frame untouched");
        let got = feed_all(&mut asm, &bytes[consumed..]);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].payload, b"two");
    }

    #[test]
    fn hostile_length_rejected_at_the_header_without_allocation() {
        let mut framed = frame(b"x");
        framed[6..10].copy_from_slice(&(MAX_PAYLOAD as u32 + 1).to_le_bytes());
        let mut asm = FrameAssembler::new();
        // Feed exactly through the header: the error must land there,
        // before any payload byte exists to allocate for.
        let err = asm.feed(&framed[..HEADER_LEN_V2]).expect_err("oversized");
        assert!(matches!(err, WireError::Oversized { .. }));
        // Poisoned thereafter.
        assert!(asm.feed(b"more").is_err());
    }

    #[test]
    fn bad_magic_rejected_at_the_prefix() {
        let mut asm = FrameAssembler::new();
        assert!(matches!(asm.feed(b"XXXX!").expect_err("magic"), WireError::BadMagic(_)));
    }

    #[test]
    fn crc_mismatch_rejected_at_the_last_payload_byte() {
        let mut framed = frame(b"abcdef");
        let n = framed.len();
        framed[n - 1] ^= 0x01;
        let mut asm = FrameAssembler::new();
        let (_, msg) = asm
            .feed(&framed[..n - 1])
            .expect("everything before the corrupt byte is plausible");
        assert!(msg.is_none());
        assert!(matches!(
            asm.feed(&framed[n - 1..]).expect_err("crc"),
            WireError::BadCrc { .. }
        ));
    }

    #[test]
    fn boundary_tracking() {
        let framed = frame(b"abc");
        let mut asm = FrameAssembler::new();
        assert!(asm.at_boundary());
        asm.feed(&framed[..1]).expect("feed");
        assert!(!asm.at_boundary(), "mid-frame after one byte");
        asm.feed(&framed[1..]).expect("feed");
        assert!(asm.at_boundary(), "back at the boundary after completion");
    }
}

//! Typed errors for the wire protocol and transports.

use std::fmt;

/// Errors raised while parsing frames or payloads. Every malformed input
/// maps to one of these — the codec never panics and never hangs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ends before the frame does. `need` is the total frame
    /// length implied by what was readable so far.
    Truncated {
        /// Bytes available.
        have: usize,
        /// Bytes the complete frame needs.
        need: usize,
    },
    /// The first four bytes are not the protocol magic.
    BadMagic([u8; 4]),
    /// The version byte is not one this endpoint speaks.
    BadVersion(u8),
    /// The declared payload length exceeds [`crate::wire::MAX_PAYLOAD`].
    Oversized {
        /// Declared payload length.
        len: usize,
    },
    /// The payload checksum does not match the header.
    BadCrc {
        /// CRC stored in the header.
        stored: u32,
        /// CRC computed over the received payload.
        computed: u32,
    },
    /// The frame is sound but the payload inside is not a valid message.
    Malformed(&'static str),
    /// The payload's message tag is not one this endpoint knows. Split
    /// from [`WireError::Malformed`] so the server can count version-skew
    /// peers separately from garbage payloads.
    UnknownTag(u8),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { have, need } => {
                write!(f, "truncated frame: have {have} bytes, need {need}")
            }
            WireError::BadMagic(m) => write!(f, "bad magic {m:02x?}"),
            WireError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::Oversized { len } => write!(f, "oversized frame: {len} byte payload"),
            WireError::BadCrc { stored, computed } => {
                write!(f, "crc mismatch: header {stored:08x}, payload {computed:08x}")
            }
            WireError::Malformed(what) => write!(f, "malformed payload: {what}"),
            WireError::UnknownTag(tag) => write!(f, "unknown message tag {tag:#04x}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Errors a transport (TCP or in-memory) can surface to callers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The peer sent bytes that do not parse as protocol frames.
    Wire(WireError),
    /// A connection-level I/O failure (refused, reset, ...).
    Io(std::io::ErrorKind, String),
    /// A read or write missed its deadline.
    Timeout,
    /// The server shed this request under load and retries are exhausted.
    Busy,
    /// The peer answered that it cannot serve this request at all right
    /// now — a dead or demoted backend behind a proxy, not transient
    /// load. Deliberately *not* retryable: unlike [`NetError::Busy`],
    /// backing off and resending the same request would burn the
    /// client's retry budget on a range that won't recover soon.
    Unavailable(String),
    /// The connection closed mid-exchange.
    Closed,
    /// The peer answered with a response the caller cannot use (wrong
    /// variant for the request, or an explicit server-side error report).
    Unexpected(String),
}

impl NetError {
    /// Map an I/O error to the typed equivalent.
    pub fn from_io(err: std::io::Error) -> NetError {
        use std::io::ErrorKind;
        match err.kind() {
            ErrorKind::WouldBlock | ErrorKind::TimedOut => NetError::Timeout,
            // `ConnectionAborted` included: writing into a keep-alive
            // connection the server closed while it sat idle surfaces as
            // an abort on some platforms — it is a dropped connection, not
            // a hard I/O failure, and must stay retryable.
            ErrorKind::UnexpectedEof
            | ErrorKind::ConnectionReset
            | ErrorKind::ConnectionAborted
            | ErrorKind::BrokenPipe => NetError::Closed,
            kind => NetError::Io(kind, err.to_string()),
        }
    }

    /// True for transient failures a client may retry with backoff:
    /// explicit load-shedding, missed deadlines, and dropped connections.
    pub fn is_retryable(&self) -> bool {
        matches!(self, NetError::Busy | NetError::Timeout | NetError::Closed)
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Wire(e) => write!(f, "wire error: {e}"),
            NetError::Io(kind, msg) => write!(f, "io error ({kind:?}): {msg}"),
            NetError::Timeout => write!(f, "deadline exceeded"),
            NetError::Busy => write!(f, "server busy (load shed)"),
            NetError::Unavailable(what) => write!(f, "unavailable: {what}"),
            NetError::Closed => write!(f, "connection closed"),
            NetError::Unexpected(what) => write!(f, "unexpected response: {what}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        NetError::Wire(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_mapping_is_typed() {
        let t = std::io::Error::new(std::io::ErrorKind::TimedOut, "slow");
        assert_eq!(NetError::from_io(t), NetError::Timeout);
        let eof = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "gone");
        assert_eq!(NetError::from_io(eof), NetError::Closed);
        let refused = std::io::Error::new(std::io::ErrorKind::ConnectionRefused, "no");
        assert!(matches!(NetError::from_io(refused), NetError::Io(_, _)));
    }

    #[test]
    fn retryable_classification() {
        assert!(NetError::Busy.is_retryable());
        assert!(NetError::Timeout.is_retryable());
        assert!(NetError::Closed.is_retryable());
        assert!(!NetError::Wire(WireError::BadVersion(9)).is_retryable());
        assert!(!NetError::Unexpected("pong".into()).is_retryable());
        // A dead/demoted backend is not a transient condition: retrying
        // into it is exactly the misbehavior Unavailable exists to stop.
        assert!(!NetError::Unavailable("range 2".into()).is_retryable());
    }
}

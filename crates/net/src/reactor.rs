//! Readiness-driven event-loop server: epoll + non-blocking sockets +
//! per-connection state machines, so an idle connection costs a slab
//! slot, not a thread.
//!
//! Topology: one **reactor thread** owns the listener, an epoll set, a
//! connection slab, and a timer wheel; a fixed **worker pool** executes
//! only *ready, fully-framed* requests. The reactor reads bytes into the
//! incremental [`FrameAssembler`]; the moment a frame completes and its
//! payload decodes, the request crosses to a worker as an explicit
//! `(request, trace-context)` job — the tracer hand-off is that argument,
//! no per-connection thread-local survives the boundary. The worker runs
//! [`FrameService::handle_traced`], writes the response straight to the
//! (non-blocking) socket while the reactor ignores the connection, and
//! posts a completion over an eventfd doorbell; the reactor finishes any
//! short write, re-arms read interest, and the connection goes back to
//! costing nothing.
//!
//! Contracts preserved from the threaded server (`tests/tcp_roundtrip.rs`
//! passes against both):
//!
//! * **Shed** — the bounded accept queue's explicit `Busy` becomes a
//!   max-connection-slots + max-inflight shed with the same wire
//!   behavior: a full slab (or inflight bound) earns the client an
//!   encoded `Busy` frame and a close, never a silent drop.
//! * **Deadlines** — per-connection read/write deadlines live on a
//!   hashed timer wheel; a stalled peer is closed within one tick of its
//!   deadline and counted in `net_deadline_closed_total`.
//! * **One request in flight per connection** — the assembler stops at
//!   each frame boundary and the reactor stops reading while a request
//!   executes, so pipelined bytes sit in the kernel buffer exactly as
//!   they would behind a blocking worker.
//! * **Drain** — shutdown closes idle connections immediately, lets
//!   queued/executing requests finish and their responses flush, then
//!   joins every thread.

use crate::assembler::FrameAssembler;
use crate::server::{FrameService, ProtoErrorKind, ServerConfig, ServerMetrics};
use crate::stream::write_message;
use crate::sys::{
    Epoll, EpollEvent, EventFd, EPOLLIN, EPOLLONESHOT, EPOLLOUT, EPOLLRDHUP,
};
use crate::wire::{Request, Response};
use crossbeam::channel::{Receiver, Sender};
use orsp_obs::{Registry, TraceContext};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Epoll cookie for the listener.
const TOKEN_LISTENER: u64 = u64::MAX;
/// Epoll cookie for the wake eventfd.
const TOKEN_WAKE: u64 = u64::MAX - 1;
/// Events drained per `epoll_wait`.
const EVENT_BATCH: usize = 256;
/// Read chunk size. Most frames fit one chunk; larger payloads loop.
const READ_CHUNK: usize = 16 * 1024;

/// One decoded request on its way to a worker.
struct Job {
    token: usize,
    gen: u64,
    stream: Arc<TcpStream>,
    request: Request,
    /// The trace context the frame arrived with — handed across the
    /// executor boundary explicitly; workers never inherit connection
    /// state through thread-locals.
    ctx: Option<TraceContext>,
}

/// What a worker reports back to the reactor.
struct Completion {
    token: usize,
    gen: u64,
    /// The encoded response frame.
    frame: Vec<u8>,
    /// Bytes the worker already wrote before hitting `WouldBlock`.
    written: usize,
    /// The socket write failed; the reactor should close.
    failed: bool,
    /// The worker already re-armed the connection's read interest
    /// (full write, fast path): the reactor only settles bookkeeping
    /// — no doorbell was rung, no epoll_ctl is owed.
    armed: bool,
}

struct EvShared {
    shutdown: AtomicBool,
    wake: EventFd,
    /// The epoll set, shared so workers can re-arm read interest
    /// directly after a full write (`epoll_ctl` is thread-safe).
    epoll: Arc<Epoll>,
    completions: Mutex<VecDeque<Completion>>,
}

/// The event-loop implementation behind [`crate::server::NetServer`].
pub(crate) struct EventServer {
    shared: Arc<EvShared>,
    reactor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl EventServer {
    pub(crate) fn bind(
        listener: TcpListener,
        service: Arc<dyn FrameService>,
        config: ServerConfig,
    ) -> io::Result<EventServer> {
        listener.set_nonblocking(true)?;
        let obs = Arc::clone(service.obs());
        let metrics = ServerMetrics::resolve(&obs);
        let shared = Arc::new(EvShared {
            shutdown: AtomicBool::new(false),
            wake: EventFd::new()?,
            epoll: Arc::new(Epoll::new()?),
            completions: Mutex::new(VecDeque::new()),
        });
        let (job_tx, job_rx) = crossbeam::channel::unbounded::<Job>();

        let workers: Vec<JoinHandle<()>> = (0..config.workers.max(1))
            .map(|_| {
                let service = Arc::clone(&service);
                let shared = Arc::clone(&shared);
                let rx = job_rx.clone();
                std::thread::spawn(move || worker_loop(&*service, &shared, &rx))
            })
            .collect();
        drop(job_rx);

        let reactor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new().name("orsp-reactor".into()).spawn(move || {
                let mut r = match Reactor::new(listener, config, shared, obs, metrics, job_tx) {
                    Ok(r) => r,
                    Err(_) => return,
                };
                r.run();
            })?
        };

        Ok(EventServer { shared, reactor: Some(reactor), workers })
    }

    pub(crate) fn stop(&mut self) {
        if self.reactor.is_none() {
            return;
        }
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.wake.ring();
        if let Some(handle) = self.reactor.take() {
            let _ = handle.join();
        }
        // The reactor dropped the job sender on exit; workers drain and
        // see the disconnect.
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for EventServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn worker_loop(service: &dyn FrameService, shared: &EvShared, rx: &Receiver<Job>) {
    while let Ok(job) = rx.recv() {
        let response = service.handle_traced(job.request, job.ctx);
        let frame = response.encode();
        // Write directly while the reactor ignores this connection (the
        // fd is disarmed and its timers cancelled for the whole
        // Executing phase, so this thread is the sole writer). The
        // common case — a small response into an empty loopback buffer —
        // completes here; a short write hands the tail to the reactor.
        let mut written = 0usize;
        let mut failed = false;
        loop {
            if written == frame.len() {
                break;
            }
            match (&*job.stream).write(&frame[written..]) {
                Ok(0) => {
                    failed = true;
                    break;
                }
                Ok(n) => written += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    failed = true;
                    break;
                }
            }
        }
        // Fast path: the whole response reached the kernel, so this
        // connection's next event is its next request — re-arm read
        // interest right here and skip the doorbell. The reactor settles
        // the bookkeeping (inflight, state, read deadline) when it next
        // runs; it drains the completion queue on every loop pass, and
        // the connection can't go anywhere meanwhile (the reactor never
        // closes an Executing connection). Short or failed writes take
        // the slow path: post and ring, the reactor owns what's left.
        let armed = !failed
            && written == frame.len()
            && shared
                .epoll
                .modify(
                    job.stream.as_raw_fd(),
                    EPOLLIN | EPOLLRDHUP | EPOLLONESHOT,
                    job.token as u64,
                )
                .is_ok();
        shared.completions.lock().push_back(Completion {
            token: job.token,
            gen: job.gen,
            frame,
            written,
            failed,
            armed,
        });
        if !armed {
            shared.wake.ring();
        }
    }
}

// ------------------------------------------------------------- reactor

enum ConnState {
    /// Waiting for (more of) a request frame.
    Reading,
    /// A decoded request is queued or running on a worker.
    Executing,
    /// Flushing a response (tail the worker could not write, or a
    /// reactor-generated `Busy`/`Error`).
    Writing,
}

struct Conn {
    stream: Arc<TcpStream>,
    state: ConnState,
    asm: FrameAssembler,
    /// Bytes read past the last frame boundary (a pipelining peer);
    /// consumed before the socket when reading resumes.
    backlog: Vec<u8>,
    out: Vec<u8>,
    out_off: usize,
    close_after_write: bool,
    gen: u64,
    /// Bumped on every timer (re-)arm and disarm; stale wheel entries
    /// carry an older value and are skipped.
    timer_gen: u64,
    /// A readable event landed while Executing (the worker had already
    /// re-armed read interest and the next request raced the completion
    /// queue). Consumed — the event was ONESHOT — so the read is owed
    /// the moment the completion settles.
    readable_pending: bool,
}

struct TimerEntry {
    token: usize,
    gen: u64,
    timer_gen: u64,
}

/// A hashed timer wheel: deadline precision is one tick, cancellation is
/// a generation bump (stale entries are skipped at expiry, never
/// searched for).
struct Wheel {
    tick: Duration,
    slots: Vec<Vec<TimerEntry>>,
    cursor: usize,
    next_tick_at: Instant,
}

impl Wheel {
    fn new(read_timeout: Duration, write_timeout: Duration) -> Wheel {
        let shortest = read_timeout.min(write_timeout).max(Duration::from_millis(1));
        let longest = read_timeout.max(write_timeout).max(Duration::from_millis(1));
        let tick = (shortest / 8)
            .clamp(Duration::from_millis(1), Duration::from_millis(200));
        let slots = (longest.as_micros() / tick.as_micros()) as usize + 2;
        Wheel {
            tick,
            slots: (0..slots).map(|_| Vec::new()).collect(),
            cursor: 0,
            next_tick_at: Instant::now() + tick,
        }
    }

    fn arm(&mut self, token: usize, conn: &mut Conn, timeout: Duration) {
        conn.timer_gen += 1;
        let ticks = ((timeout.as_micros() / self.tick.as_micros()) as usize + 1)
            .min(self.slots.len() - 1)
            .max(1);
        let idx = (self.cursor + ticks) % self.slots.len();
        self.slots[idx].push(TimerEntry { token, gen: conn.gen, timer_gen: conn.timer_gen });
    }

    /// Milliseconds until the next tick (for `epoll_wait`).
    fn poll_timeout_ms(&self, now: Instant) -> i32 {
        let until = self.next_tick_at.saturating_duration_since(now);
        (until.as_millis() as i32 + 1).clamp(1, 1000)
    }

    /// Pop every entry whose tick has passed.
    fn expired(&mut self, now: Instant) -> Vec<TimerEntry> {
        let mut out = Vec::new();
        while now >= self.next_tick_at {
            self.cursor = (self.cursor + 1) % self.slots.len();
            out.append(&mut self.slots[self.cursor]);
            self.next_tick_at += self.tick;
        }
        out
    }
}

struct Reactor {
    epoll: Arc<Epoll>,
    listener: Option<TcpListener>,
    config: ServerConfig,
    shared: Arc<EvShared>,
    obs: Arc<Registry>,
    metrics: ServerMetrics,
    job_tx: Sender<Job>,
    slab: Vec<Option<Conn>>,
    /// Per-slot generation, bumped on every close so stale completions
    /// and timer entries cannot touch a reused slot.
    slot_gens: Vec<u64>,
    free: Vec<usize>,
    open: usize,
    high_water: usize,
    inflight: usize,
    /// Connections whose ONESHOT readable event was consumed while they
    /// were still Executing: their completion is owed within microseconds
    /// (the worker pushes right after arming), so the next `epoll_wait`
    /// keeps a 1ms leash instead of sleeping a full wheel tick.
    readable_hint: usize,
    /// Reusable read buffer — `pump_read` takes it for the duration of a
    /// read burst instead of zeroing a fresh `READ_CHUNK` on every call.
    /// A nested `pump_read` (shed-response flush draining backlog) finds
    /// it empty and falls back to a one-off allocation.
    read_buf: Vec<u8>,
    wheel: Wheel,
    draining: bool,
}

impl Reactor {
    fn new(
        listener: TcpListener,
        config: ServerConfig,
        shared: Arc<EvShared>,
        obs: Arc<Registry>,
        metrics: ServerMetrics,
        job_tx: Sender<Job>,
    ) -> io::Result<Reactor> {
        let epoll = Arc::clone(&shared.epoll);
        epoll.add(listener.as_raw_fd(), EPOLLIN | EPOLLONESHOT, TOKEN_LISTENER)?;
        epoll.add(shared.wake.raw(), EPOLLIN | EPOLLONESHOT, TOKEN_WAKE)?;
        let slots = config.effective_max_connections();
        let wheel = Wheel::new(config.read_timeout, config.write_timeout);
        Ok(Reactor {
            epoll,
            listener: Some(listener),
            config,
            shared,
            obs,
            metrics,
            job_tx,
            slab: (0..slots).map(|_| None).collect(),
            slot_gens: vec![0; slots],
            free: (0..slots).rev().collect(),
            open: 0,
            high_water: 0,
            inflight: 0,
            readable_hint: 0,
            read_buf: vec![0u8; READ_CHUNK],
            wheel,
            draining: false,
        })
    }

    fn run(&mut self) {
        let mut events = [EpollEvent { events: 0, data: 0 }; EVENT_BATCH];
        loop {
            // Completions drain on every pass, not only on the doorbell:
            // a worker that fully wrote its response re-arms the socket
            // itself and posts without ringing.
            self.drain_completions();
            if !self.draining && self.shared.shutdown.load(Ordering::SeqCst) {
                self.enter_drain();
            }
            if self.draining && self.open == 0 && self.inflight == 0 {
                return;
            }
            let timeout = if self.readable_hint > 0 {
                1 // a completion is owed momentarily; don't oversleep it
            } else {
                self.wheel.poll_timeout_ms(Instant::now())
            };
            let n = match self.epoll.wait(&mut events, timeout) {
                Ok(n) => n,
                Err(_) => continue,
            };
            if n > 0 {
                self.metrics.readiness_wakeups.inc();
            }
            for ev in &events[..n] {
                let (token, mask) = ({ ev.data }, { ev.events });
                match token {
                    TOKEN_LISTENER => self.on_listener(),
                    TOKEN_WAKE => self.on_wake(),
                    _ => self.on_conn(token as usize, mask),
                }
            }
            // Drain again before timers: a readable event consumed while
            // its connection was Executing resolves here, as soon as the
            // worker's unrung completion lands.
            self.drain_completions();
            for entry in self.wheel.expired(Instant::now()) {
                self.on_deadline(entry);
            }
        }
    }

    fn drain_completions(&mut self) {
        loop {
            let Some(done) = self.shared.completions.lock().pop_front() else { break };
            self.on_completion(done);
        }
    }

    // ------------------------------------------------------------ accept

    fn on_listener(&mut self) {
        loop {
            let Some(listener) = self.listener.as_ref() else { return };
            match listener.accept() {
                Ok((stream, peer)) => {
                    if self.shared.shutdown.load(Ordering::SeqCst) {
                        return; // drain is imminent; the listener is about to drop
                    }
                    self.admit(stream, peer);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
        if let Some(listener) = self.listener.as_ref() {
            let _ = self.epoll.modify(
                listener.as_raw_fd(),
                EPOLLIN | EPOLLONESHOT,
                TOKEN_LISTENER,
            );
        }
    }

    fn admit(&mut self, stream: TcpStream, peer: SocketAddr) {
        let Some(token) = self.free.pop() else {
            // Slab full: the explicit load shed, same wire behavior as
            // the threaded server's full accept queue.
            self.shed(stream, peer);
            return;
        };
        let _ = stream.set_nodelay(true);
        if stream.set_nonblocking(true).is_err() {
            self.free.push(token);
            return;
        }
        self.metrics.accepted.inc();
        self.open += 1;
        if self.open > self.high_water {
            self.high_water = self.open;
            self.metrics.slab_high_water.set(self.high_water as i64);
        }
        self.metrics.open_connections.set(self.open as i64);
        let gen = self.slot_gens[token];
        self.slab[token] = Some(Conn {
            stream: Arc::new(stream),
            state: ConnState::Reading,
            asm: FrameAssembler::new(),
            backlog: Vec::new(),
            out: Vec::new(),
            out_off: 0,
            close_after_write: false,
            gen,
            timer_gen: 0,
            readable_pending: false,
        });
        // Drain anything already buffered, then arm read interest.
        self.pump_read(token);
    }

    fn shed(&mut self, mut stream: TcpStream, peer: SocketAddr) {
        self.metrics.shed.inc();
        self.obs.event("shed", peer.to_string());
        let _ = stream.set_write_timeout(Some(self.config.write_timeout));
        let _ = write_message(&mut stream, &Response::Busy.encode());
    }

    // ------------------------------------------------------------- wake

    fn on_wake(&mut self) {
        self.shared.wake.drain();
        let _ = self.epoll.modify(self.shared.wake.raw(), EPOLLIN | EPOLLONESHOT, TOKEN_WAKE);
        self.drain_completions();
    }

    fn on_completion(&mut self, done: Completion) {
        self.inflight -= 1;
        // Settle any readable event that raced this completion, whatever
        // branch runs below: the slow paths read after flushing anyway,
        // and `close` must not double-count the hint.
        let owed_read = {
            let Some(conn) = self.conn_mut(done.token, done.gen) else { return };
            debug_assert!(matches!(conn.state, ConnState::Executing));
            std::mem::take(&mut conn.readable_pending)
        };
        if owed_read {
            self.readable_hint -= 1;
        }
        if done.failed {
            self.close(done.token);
            return;
        }
        if done.armed {
            // Fast path: the worker flushed the whole response and
            // re-armed read interest itself; only bookkeeping is left.
            if self.draining {
                self.close(done.token);
                return;
            }
            let timeout = self.config.read_timeout;
            let conn = self.slab[done.token].as_mut().expect("checked above");
            conn.state = ConnState::Reading;
            conn.out = Vec::new();
            conn.out_off = 0;
            let has_backlog = !conn.backlog.is_empty();
            self.wheel.arm(done.token, conn, timeout);
            // The consumed ONESHOT event (or a pipelining peer's stashed
            // backlog) means bytes are owed a read right now; otherwise
            // the armed fd sleeps until the next request.
            if owed_read || has_backlog {
                self.pump_read(done.token);
            }
            return;
        }
        if done.written == done.frame.len() {
            self.response_flushed(done.token);
            return;
        }
        // Short write: the reactor owns the tail.
        let conn = self.slab[done.token].as_mut().expect("checked above");
        conn.out = done.frame;
        conn.out_off = done.written;
        conn.state = ConnState::Writing;
        self.arm_write(done.token);
    }

    // ------------------------------------------------------------- conns

    fn conn_mut(&mut self, token: usize, gen: u64) -> Option<&mut Conn> {
        match self.slab.get_mut(token) {
            Some(Some(conn)) if conn.gen == gen => Some(conn),
            _ => None,
        }
    }

    fn on_conn(&mut self, token: usize, _mask: u32) {
        let Some(conn) = self.slab.get_mut(token).and_then(Option::as_mut) else { return };
        match conn.state {
            ConnState::Reading => self.pump_read(token),
            ConnState::Writing => self.pump_write(token),
            // The worker re-armed this fd after its full write and the
            // next request (or a hangup) beat the completion queue here.
            // The ONESHOT event is consumed — note the debt; the read
            // happens the moment the completion settles.
            ConnState::Executing => {
                if !conn.readable_pending {
                    conn.readable_pending = true;
                    self.readable_hint += 1;
                }
            }
        }
    }

    /// Read until a frame completes, the kernel buffer empties, or the
    /// peer goes away. Called on readable events and whenever a
    /// connection returns to the Reading state.
    fn pump_read(&mut self, token: usize) {
        // Backlog first: bytes already read past the previous frame.
        loop {
            let conn = match self.slab.get_mut(token).and_then(Option::as_mut) {
                Some(c) => c,
                None => return,
            };
            if conn.backlog.is_empty() {
                break;
            }
            let bytes = std::mem::take(&mut conn.backlog);
            match self.feed(token, &bytes) {
                Feed::Continue => {}
                Feed::Done => return,
            }
        }
        let mut buf = std::mem::take(&mut self.read_buf);
        if buf.len() != READ_CHUNK {
            // Re-entered while the buffer is checked out (or first use
            // after a take): pay for a one-off allocation.
            buf = vec![0u8; READ_CHUNK];
        }
        loop {
            let conn = match self.slab.get_mut(token).and_then(Option::as_mut) {
                Some(c) => c,
                None => break,
            };
            let n = match (&*conn.stream).read(&mut buf) {
                Ok(0) => {
                    if conn.asm.at_boundary() {
                        // Clean close between frames.
                        self.close(token);
                    } else {
                        self.metrics.protocol_error(ProtoErrorKind::Truncated);
                        self.obs.event("protocol_error", "peer closed mid-frame");
                        self.close(token);
                    }
                    break;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.arm_read(token);
                    break;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    // Reset/teardown: the deadline did its job in the
                    // threaded server; here the error itself closes.
                    self.close(token);
                    break;
                }
                Ok(n) => n,
            };
            match self.feed(token, &buf[..n]) {
                Feed::Continue => {}
                Feed::Done => break,
            }
        }
        self.read_buf = buf;
    }

    /// Feed bytes into the connection's assembler; dispatch a completed
    /// frame. Returns whether the caller should keep reading.
    fn feed(&mut self, token: usize, mut bytes: &[u8]) -> Feed {
        while !bytes.is_empty() {
            let conn = match self.slab.get_mut(token).and_then(Option::as_mut) {
                Some(c) => c,
                None => return Feed::Done,
            };
            match conn.asm.feed(bytes) {
                Ok((consumed, None)) => {
                    bytes = &bytes[consumed..];
                    debug_assert!(bytes.is_empty());
                }
                Ok((consumed, Some(frame))) => {
                    // Stash the tail for after the response; stop reading.
                    conn.backlog = bytes[consumed..].to_vec();
                    self.dispatch(token, frame.payload, frame.ctx);
                    return Feed::Done;
                }
                Err(e) => {
                    // Framing is unrecoverable mid-stream: report, answer
                    // with a typed Error frame, close once it flushes.
                    self.metrics.protocol_error((&e).into());
                    self.obs.event("protocol_error", e.to_string());
                    let reply = Response::Error { detail: e.to_string() };
                    self.respond_and_close(token, reply);
                    return Feed::Done;
                }
            }
        }
        Feed::Continue
    }

    fn dispatch(&mut self, token: usize, payload: Vec<u8>, ctx: Option<TraceContext>) {
        match Request::decode_payload(&payload) {
            Ok(request) => {
                if self.config.max_inflight > 0 && self.inflight >= self.config.max_inflight {
                    // Inflight bound: shed with the same wire behavior as
                    // a full slab.
                    self.metrics.shed.inc();
                    self.obs.event("shed", "inflight bound".to_string());
                    self.respond_and_close(token, Response::Busy);
                    return;
                }
                self.metrics.requests.inc();
                let conn = self.slab[token].as_mut().expect("dispatch on live conn");
                conn.state = ConnState::Executing;
                conn.timer_gen += 1; // no deadline while executing
                self.inflight += 1;
                let job = Job {
                    token,
                    gen: conn.gen,
                    stream: Arc::clone(&conn.stream),
                    request,
                    ctx,
                };
                if self.job_tx.send(job).is_err() {
                    self.inflight -= 1;
                    self.close(token);
                }
            }
            Err(e) => {
                // A sound frame with an unusable payload: per-request
                // error, the connection survives (matching the threaded
                // server).
                self.metrics.protocol_error((&e).into());
                self.obs.event("protocol_error", e.to_string());
                self.respond(token, Response::Error { detail: e.to_string() }, false);
            }
        }
    }

    /// Queue a reactor-generated response and flush what fits now.
    fn respond(&mut self, token: usize, response: Response, close_after: bool) {
        let Some(conn) = self.slab.get_mut(token).and_then(Option::as_mut) else { return };
        conn.out = response.encode();
        conn.out_off = 0;
        conn.close_after_write = close_after;
        conn.state = ConnState::Writing;
        conn.timer_gen += 1;
        self.pump_write(token);
    }

    fn respond_and_close(&mut self, token: usize, response: Response) {
        self.respond(token, response, true);
    }

    fn pump_write(&mut self, token: usize) {
        loop {
            let conn = match self.slab.get_mut(token).and_then(Option::as_mut) {
                Some(c) => c,
                None => return,
            };
            if conn.out_off >= conn.out.len() {
                self.response_flushed(token);
                return;
            }
            match (&*conn.stream).write(&conn.out[conn.out_off..]) {
                Ok(0) => {
                    self.close(token);
                    return;
                }
                Ok(n) => conn.out_off += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.arm_write(token);
                    return;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(token);
                    return;
                }
            }
        }
    }

    /// A response fully reached the kernel: close if this connection is
    /// done (drain, or an error reply), otherwise resume reading.
    fn response_flushed(&mut self, token: usize) {
        let Some(conn) = self.slab.get_mut(token).and_then(Option::as_mut) else { return };
        if conn.close_after_write || self.draining {
            self.close(token);
            return;
        }
        conn.state = ConnState::Reading;
        conn.out = Vec::new();
        conn.out_off = 0;
        self.pump_read(token);
    }

    // ----------------------------------------------------- timers/close

    fn arm_read(&mut self, token: usize) {
        let timeout = self.config.read_timeout;
        let Some(conn) = self.slab.get_mut(token).and_then(Option::as_mut) else { return };
        let fd = conn.stream.as_raw_fd();
        let gen_entry = token as u64;
        self.wheel.arm(token, conn, timeout);
        if self
            .epoll
            .modify(fd, EPOLLIN | EPOLLRDHUP | EPOLLONESHOT, gen_entry)
            .is_err()
        {
            // First arm for this fd.
            if self.epoll.add(fd, EPOLLIN | EPOLLRDHUP | EPOLLONESHOT, gen_entry).is_err() {
                self.close(token);
            }
        }
    }

    fn arm_write(&mut self, token: usize) {
        let timeout = self.config.write_timeout;
        let Some(conn) = self.slab.get_mut(token).and_then(Option::as_mut) else { return };
        let fd = conn.stream.as_raw_fd();
        let gen_entry = token as u64;
        self.wheel.arm(token, conn, timeout);
        if self.epoll.modify(fd, EPOLLOUT | EPOLLONESHOT, gen_entry).is_err() {
            if self.epoll.add(fd, EPOLLOUT | EPOLLONESHOT, gen_entry).is_err() {
                self.close(token);
            }
        }
    }

    fn on_deadline(&mut self, entry: TimerEntry) {
        let Some(conn) = self.conn_mut(entry.token, entry.gen) else { return };
        if conn.timer_gen != entry.timer_gen {
            return; // re-armed or state-changed since; stale entry
        }
        if matches!(conn.state, ConnState::Executing) {
            return; // execution has no deadline (parity with threaded)
        }
        self.metrics.deadline_closed.inc();
        self.obs.event("deadline_closed", "connection deadline expired".to_string());
        self.close(entry.token);
    }

    fn close(&mut self, token: usize) {
        let Some(conn) = self.slab.get_mut(token).and_then(Option::take) else { return };
        if conn.readable_pending {
            self.readable_hint -= 1;
        }
        let _ = self.epoll.delete(conn.stream.as_raw_fd());
        self.slot_gens[token] = self.slot_gens[token].wrapping_add(1);
        // A reused slot must hand out the bumped generation.
        self.free.push(token);
        self.open -= 1;
        self.metrics.open_connections.set(self.open as i64);
        // Dropping `conn` closes the socket once any executing worker
        // drops its clone of the stream handle.
    }

    // ------------------------------------------------------------ drain

    fn enter_drain(&mut self) {
        self.draining = true;
        if let Some(listener) = self.listener.take() {
            let _ = self.epoll.delete(listener.as_raw_fd());
        }
        // Idle and mid-frame readers close now; executing and writing
        // connections finish their in-flight response first.
        let reading: Vec<usize> = self
            .slab
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| {
                slot.as_ref()
                    .filter(|c| matches!(c.state, ConnState::Reading))
                    .map(|_| i)
            })
            .collect();
        for token in reading {
            self.close(token);
        }
    }
}

enum Feed {
    /// Keep reading from the socket.
    Continue,
    /// Stop: a request dispatched, an error reply queued, or the
    /// connection closed.
    Done,
}

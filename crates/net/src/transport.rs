//! The `Transport` abstraction: one blocking request/response call.
//!
//! Two implementations ship: [`InMemoryTransport`] routes through the
//! full codec to an in-process [`RspService`] — deterministic, so
//! integration tests stay bit-reproducible — and
//! [`crate::client::TcpTransport`] crosses a real socket. Code written
//! against the trait (the served pipeline, the token issuer below) cannot
//! tell them apart.

use crate::error::NetError;
use crate::router::RspService;
use crate::wire::{Request, Response};
use orsp_crypto::{BlindSignature, BlindedMessage, TokenIssuer};
use orsp_types::{DeviceId, OrspError, Timestamp};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A blocking request/response channel to an RSP service.
///
/// `&self` receivers + `Sync` so one transport can serve many worker
/// threads (implementations use interior mutability where needed).
pub trait Transport: Sync {
    /// Send one request and wait for its response.
    fn call(&self, request: &Request) -> Result<Response, NetError>;
}

/// In-process transport: every call still round-trips through the wire
/// codec (encode → decode → handle → encode → decode), so the bytes a
/// TCP peer would see are exactly the bytes exercised here — only the
/// socket is missing. Deterministic and loss-free.
pub struct InMemoryTransport {
    service: Arc<RspService>,
    calls: AtomicU64,
}

impl InMemoryTransport {
    /// A transport owning its service.
    pub fn new(service: RspService) -> Self {
        InMemoryTransport { service: Arc::new(service), calls: AtomicU64::new(0) }
    }

    /// The service behind the transport.
    pub fn service(&self) -> &RspService {
        &self.service
    }

    /// Total calls made through this transport.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Recover the service (fails if clones of the internal handle are
    /// still alive; the base transport holds the only one).
    pub fn into_service(self) -> RspService {
        Arc::try_unwrap(self.service)
            .unwrap_or_else(|_| panic!("service handle still shared"))
    }
}

impl Transport for InMemoryTransport {
    fn call(&self, request: &Request) -> Result<Response, NetError> {
        self.calls.fetch_add(1, Ordering::Relaxed);
        // Full codec fidelity: what arrives at the service is what a
        // socket peer would have delivered.
        let request_frame = request.encode();
        let response_frame = self.service.handle_frame(&request_frame);
        Ok(Response::decode(&response_frame)?)
    }
}

/// A [`TokenIssuer`] that issues over any transport: lets the unmodified
/// client wallet (`TokenWallet::request_token`) pull blind signatures
/// from a remote mint.
pub struct RemoteIssuer<'a, T: Transport + ?Sized> {
    transport: &'a T,
}

impl<'a, T: Transport + ?Sized> RemoteIssuer<'a, T> {
    /// An issuer over `transport`.
    pub fn new(transport: &'a T) -> Self {
        RemoteIssuer { transport }
    }
}

impl<T: Transport + ?Sized> TokenIssuer for RemoteIssuer<'_, T> {
    fn issue(
        &mut self,
        device: DeviceId,
        blinded: &BlindedMessage,
        now: Timestamp,
    ) -> orsp_types::Result<BlindSignature> {
        let request = Request::IssueToken { device, blinded: blinded.clone(), now };
        match self.transport.call(&request) {
            Ok(Response::TokenIssued { signature }) => Ok(signature),
            Ok(Response::TokenDenied { reason }) => Err(OrspError::InvalidToken(reason)),
            Ok(other) => Err(OrspError::Crypto(format!("unexpected response {other:?}"))),
            Err(e) => Err(OrspError::Crypto(format!("transport failure: {e}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::ServiceConfig;
    use orsp_crypto::{TokenMint, TokenWallet};
    use orsp_search::{Ranker, SearchIndex};
    use orsp_types::rng::rng_for;
    use orsp_types::SimDuration;
    use std::collections::HashMap;

    fn transport() -> InMemoryTransport {
        let mut rng = rng_for(11, "transport-test");
        let mint = TokenMint::new(&mut rng, 256, 8, SimDuration::DAY);
        InMemoryTransport::new(RspService::new(
            mint,
            SearchIndex::build(Vec::new()),
            HashMap::new(),
            Ranker::default(),
            ServiceConfig::default(),
        ))
    }

    #[test]
    fn ping_through_full_codec() {
        let t = transport();
        assert_eq!(t.call(&Request::Ping).unwrap(), Response::Pong);
        assert_eq!(t.calls(), 1);
    }

    #[test]
    fn wallet_fills_over_transport() {
        let t = transport();
        let mut rng = rng_for(12, "transport-wallet");
        let mut wallet = TokenWallet::new(DeviceId::new(5), t.service().mint_public_key());
        let mut issuer = RemoteIssuer::new(&t);
        // `request_token` unblinds and verifies against the public key:
        // a signature that survived the codec round trip proves the
        // `BigUint` encoding is lossless.
        for _ in 0..3 {
            wallet
                .request_token(&mut rng, &mut issuer, orsp_types::Timestamp::EPOCH)
                .expect("issued");
        }
        assert_eq!(wallet.balance(), 3);
        assert_eq!(t.calls(), 3);
        assert_eq!(t.service().tokens_issued(), 3);
    }

    #[test]
    fn rate_limit_surfaces_as_invalid_token() {
        let t = transport();
        let mut rng = rng_for(13, "transport-limit");
        let mut wallet = TokenWallet::new(DeviceId::new(6), t.service().mint_public_key());
        let mut issuer = RemoteIssuer::new(&t);
        let got = wallet.top_up(&mut rng, &mut issuer, orsp_types::Timestamp::EPOCH, 100);
        assert_eq!(got, 8, "mint caps at tokens_per_window");
    }
}

//! The attestation gate: tokens only for attested devices (§4.3).
//!
//! Attestation runs on the *authenticated* token-issuance path, so it
//! costs no anonymity: the RSP already knows which device is asking for
//! tokens (that is how rate limiting works); it simply also demands proof
//! that the device runs an unmodified client. Uploads remain anonymous —
//! the tokens themselves are blind.

use orsp_crypto::{
    AttestError, AttestationChallenge, AttestationVerifier, KeyRegistry, Measurement, Quote,
};
use orsp_types::{DeviceId, SimDuration, Timestamp};
use rand::Rng;
use std::collections::HashMap;

/// Gate state per device.
#[derive(Debug, Clone, Copy)]
struct Session {
    challenge: AttestationChallenge,
    issued_at: Timestamp,
    passed: Option<Timestamp>,
}

/// Outcome of presenting a quote.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateOutcome {
    /// Device attested; token issuance unlocked until expiry.
    Attested,
    /// Quote rejected.
    Rejected(AttestError),
    /// No outstanding challenge for this device (ask for one first).
    NoChallenge,
    /// Device key unknown (register at install time).
    UnknownDevice,
}

/// The attestation gate in front of the token mint.
pub struct AttestationGate {
    verifier: AttestationVerifier,
    registry: KeyRegistry,
    sessions: HashMap<DeviceId, Session>,
    /// How long a successful attestation stays valid.
    validity: SimDuration,
    /// Challenges expire if unanswered this long.
    challenge_ttl: SimDuration,
}

impl AttestationGate {
    /// A gate for the given genuine client measurement.
    pub fn new(genuine: Measurement, validity: SimDuration) -> Self {
        AttestationGate {
            verifier: AttestationVerifier::new(genuine),
            registry: KeyRegistry::new(),
            sessions: HashMap::new(),
            validity,
            challenge_ttl: SimDuration::minutes(10),
        }
    }

    /// Register a device's attestation key (install time).
    pub fn register_device(&mut self, device: DeviceId, key: orsp_crypto::RsaPublicKey) {
        self.registry.register(device, key);
    }

    /// Start (or restart) an attestation: hand the device a challenge.
    pub fn challenge<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        device: DeviceId,
        now: Timestamp,
    ) -> AttestationChallenge {
        let challenge = self.verifier.challenge(rng);
        self.sessions.insert(device, Session { challenge, issued_at: now, passed: None });
        challenge
    }

    /// The device answers with a quote.
    pub fn present_quote(&mut self, device: DeviceId, quote: &Quote, now: Timestamp) -> GateOutcome {
        let Some(key) = self.registry.key_of(device) else {
            return GateOutcome::UnknownDevice;
        };
        let Some(session) = self.sessions.get_mut(&device) else {
            return GateOutcome::NoChallenge;
        };
        if now - session.issued_at > self.challenge_ttl {
            self.sessions.remove(&device);
            return GateOutcome::NoChallenge;
        }
        match self.verifier.verify(key, &session.challenge, quote) {
            Ok(()) => {
                session.passed = Some(now);
                GateOutcome::Attested
            }
            Err(e) => GateOutcome::Rejected(e),
        }
    }

    /// Is the device currently allowed to draw tokens?
    pub fn is_attested(&self, device: DeviceId, now: Timestamp) -> bool {
        self.sessions
            .get(&device)
            .and_then(|s| s.passed)
            .map(|t| now - t <= self.validity)
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orsp_crypto::Attestor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const GENUINE: &[u8] = b"client v1";
    const HACKED: &[u8] = b"client v1 + spoofing";

    fn setup() -> (AttestationGate, Attestor, StdRng) {
        let mut rng = StdRng::seed_from_u64(3);
        let attestor = Attestor::provision(&mut rng, 256, GENUINE);
        let mut gate =
            AttestationGate::new(Measurement::of_binary(GENUINE), SimDuration::DAY);
        gate.register_device(DeviceId::new(1), attestor.public_key().clone());
        (gate, attestor, rng)
    }

    #[test]
    fn genuine_device_unlocks_tokens() {
        let (mut gate, attestor, mut rng) = setup();
        let now = Timestamp::EPOCH;
        assert!(!gate.is_attested(DeviceId::new(1), now));
        let challenge = gate.challenge(&mut rng, DeviceId::new(1), now);
        let quote = attestor.quote(&challenge);
        assert_eq!(gate.present_quote(DeviceId::new(1), &quote, now), GateOutcome::Attested);
        assert!(gate.is_attested(DeviceId::new(1), now));
    }

    #[test]
    fn attestation_expires() {
        let (mut gate, attestor, mut rng) = setup();
        let now = Timestamp::EPOCH;
        let challenge = gate.challenge(&mut rng, DeviceId::new(1), now);
        gate.present_quote(DeviceId::new(1), &attestor.quote(&challenge), now);
        assert!(gate.is_attested(DeviceId::new(1), now + SimDuration::hours(23)));
        assert!(!gate.is_attested(DeviceId::new(1), now + SimDuration::days(2)));
    }

    #[test]
    fn hacked_client_is_rejected() {
        let (mut gate, mut attestor, mut rng) = setup();
        attestor.replace_binary(HACKED);
        let now = Timestamp::EPOCH;
        let challenge = gate.challenge(&mut rng, DeviceId::new(1), now);
        let quote = attestor.quote(&challenge);
        assert_eq!(
            gate.present_quote(DeviceId::new(1), &quote, now),
            GateOutcome::Rejected(AttestError::ModifiedClient)
        );
        assert!(!gate.is_attested(DeviceId::new(1), now));
    }

    #[test]
    fn stale_challenge_rejected() {
        let (mut gate, attestor, mut rng) = setup();
        let now = Timestamp::EPOCH;
        let challenge = gate.challenge(&mut rng, DeviceId::new(1), now);
        let quote = attestor.quote(&challenge);
        let late = now + SimDuration::hours(1);
        assert_eq!(gate.present_quote(DeviceId::new(1), &quote, late), GateOutcome::NoChallenge);
    }

    #[test]
    fn unknown_device_rejected() {
        let (mut gate, attestor, mut rng) = setup();
        let now = Timestamp::EPOCH;
        let challenge = gate.challenge(&mut rng, DeviceId::new(99), now);
        let quote = attestor.quote(&challenge);
        assert_eq!(gate.present_quote(DeviceId::new(99), &quote, now), GateOutcome::UnknownDevice);
    }

    #[test]
    fn quote_without_challenge_rejected() {
        let (mut gate, attestor, mut rng) = setup();
        let now = Timestamp::EPOCH;
        // Build a quote against a challenge the gate never issued.
        let verifier = AttestationVerifier::new(Measurement::of_binary(GENUINE));
        let rogue_challenge = verifier.challenge(&mut rng);
        let quote = attestor.quote(&rogue_challenge);
        assert_eq!(gate.present_quote(DeviceId::new(1), &quote, now), GateOutcome::NoChallenge);
    }
}

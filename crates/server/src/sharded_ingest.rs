//! The service-facing ingest domain: admission control sharded for
//! concurrent RPC traffic.
//!
//! [`crate::IngestService`] is the single-threaded admission engine the
//! in-process pipeline uses; this module is the same admission logic
//! re-partitioned so a multi-worker server can run it without a global
//! lock. Three independently synchronized pieces:
//!
//! * **Spend ledger**, sharded by `shard_index(token.ledger_key())` — the
//!   double-spend check must be global per *token*, and the ledger key is
//!   a hash of the token message, so sharding by it spreads tokens
//!   uniformly while keeping each token's first-presentation-wins
//!   decision on a single lock.
//! * **History store**, sharded by `shard_index(record_id)` — matching
//!   the storage engine's on-disk segment sharding, so when the shard
//!   counts agree each ingest shard appends to exactly its own shard log.
//! * **Per-shard WAL order locks** — the order-preserving handoff
//!   (acquire the shard's WAL-order lock *before* releasing its store
//!   lock) that keeps log order identical to apply order per shard while
//!   moving the fsync out of the store lock. Reads never queue behind a
//!   disk flush.
//!
//! Counters are atomics: every stat is an order-independent sum, which is
//! one of the two facts that keep a sharded run bit-identical to the
//! sequential reference (the other: admission decisions only ever depend
//! on single-token or single-record state, never on cross-shard state).

use crate::ingest::{IngestService, IngestStats, RejectReason};
use crate::lockorder::{self, rank};
use crate::sharded::shard_index;
use crate::store::{HistoryStore, StoredHistory};
use crate::wal::{WalEntry, WalSink};
use orsp_client::UploadRequest;
use orsp_crypto::blind::verify_unblinded;
use orsp_crypto::RsaPublicKey;
use orsp_types::{EntityId, OrspError, RecordId};
use parking_lot::{Mutex, RwLock};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

/// Result of one admission attempt.
#[derive(Debug)]
pub enum IngestOutcome {
    /// Applied to the store and (when a sink is wired) durably logged.
    Accepted,
    /// Applied to the store, but the durability sink failed — the caller
    /// must surface this rather than acknowledge a clean accept, and the
    /// client must not retry (the token is spent, the record applied).
    AcceptedNotDurable(OrspError),
    /// Refused; nothing was applied. (The token *is* consumed for store
    /// rejections — same semantics as the sequential path, where
    /// redemption precedes the append.)
    Rejected(RejectReason),
}

#[derive(Default)]
struct AtomicStats {
    accepted: AtomicU64,
    bad_token: AtomicU64,
    double_spend: AtomicU64,
    bad_record: AtomicU64,
    entity_mismatch: AtomicU64,
}

impl AtomicStats {
    fn from_stats(stats: IngestStats) -> Self {
        AtomicStats {
            accepted: AtomicU64::new(stats.accepted),
            bad_token: AtomicU64::new(stats.bad_token),
            double_spend: AtomicU64::new(stats.double_spend),
            bad_record: AtomicU64::new(stats.bad_record),
            entity_mismatch: AtomicU64::new(stats.entity_mismatch),
        }
    }

    fn count(&self, reason: RejectReason) {
        match reason {
            RejectReason::BadToken => self.bad_token.fetch_add(1, Relaxed),
            RejectReason::DoubleSpend => self.double_spend.fetch_add(1, Relaxed),
            RejectReason::BadRecord => self.bad_record.fetch_add(1, Relaxed),
            RejectReason::EntityMismatch => self.entity_mismatch.fetch_add(1, Relaxed),
        };
    }

    fn snapshot(&self) -> IngestStats {
        IngestStats {
            accepted: self.accepted.load(Relaxed),
            bad_token: self.bad_token.load(Relaxed),
            double_spend: self.double_spend.load(Relaxed),
            bad_record: self.bad_record.load(Relaxed),
            entity_mismatch: self.entity_mismatch.load(Relaxed),
        }
    }
}

struct StoreShard {
    store: Mutex<HistoryStore>,
    /// Order-preserving WAL handoff for this shard only.
    wal_order: Mutex<()>,
}

/// Shard-partitioned admission control for the request path.
pub struct ShardedIngest {
    ledgers: Vec<Mutex<HashSet<[u8; 32]>>>,
    shards: Vec<StoreShard>,
    wal: RwLock<Option<Arc<dyn WalSink>>>,
    stats: AtomicStats,
}

impl ShardedIngest {
    /// An empty ingest domain with `n` shards (clamped to ≥ 1).
    pub fn new(n: usize) -> Self {
        Self::with_parts(HistoryStore::new(), IngestStats::default(), n)
    }

    /// Reshard an existing service's store (recovery resume path): every
    /// history is redistributed by `shard_index(record_id)`. The spend
    /// ledger starts empty, matching the sequential resume path — spent
    /// tokens are not persisted, a fresh mint means a fresh ledger.
    pub fn from_service(service: IngestService, n: usize) -> Self {
        let (store, stats) = service.into_parts();
        Self::with_parts(store, stats, n)
    }

    fn with_parts(store: HistoryStore, stats: IngestStats, n: usize) -> Self {
        let n = n.max(1);
        let ledgers = (0..n).map(|_| Mutex::new(HashSet::new())).collect();
        let mut shards: Vec<StoreShard> = (0..n)
            .map(|_| StoreShard {
                store: Mutex::new(HistoryStore::new()),
                wal_order: Mutex::new(()),
            })
            .collect();
        for (rid, stored) in store.into_histories() {
            let shard = shard_index(rid.as_bytes(), n);
            shards[shard].store.get_mut().insert_history(rid, stored);
        }
        ShardedIngest {
            ledgers,
            shards,
            wal: RwLock::new(None),
            stats: AtomicStats::from_stats(stats),
        }
    }

    /// Wire (or replace) the durability sink every accepted upload is
    /// logged through.
    pub fn set_wal(&self, sink: Arc<dyn WalSink>) {
        *self.wal.write() = Some(sink);
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Which shard owns a record id.
    pub fn shard_of(&self, record_id: &RecordId) -> usize {
        shard_index(record_id.as_bytes(), self.shards.len())
    }

    /// Admit one upload: verify the token signature (pure RSA, no lock),
    /// then delegate to [`Self::ingest_verified`].
    pub fn ingest(&self, upload: &UploadRequest, mint_key: &RsaPublicKey) -> IngestOutcome {
        let valid =
            verify_unblinded(mint_key, &upload.token.message, &upload.token.signature);
        self.ingest_verified(upload, valid)
    }

    /// Admit one upload whose signature verdict was computed by the
    /// caller. Locks touched, in rank order, each held only for the
    /// in-memory operation: the token's ledger shard, then the record's
    /// store shard, then — for durable accepts — that shard's WAL-order
    /// lock across the sink append (the store lock is released first, so
    /// reads and other shards never wait on the fsync).
    pub fn ingest_verified(&self, upload: &UploadRequest, signature_valid: bool) -> IngestOutcome {
        if !signature_valid {
            self.stats.count(RejectReason::BadToken);
            return IngestOutcome::Rejected(RejectReason::BadToken);
        }

        let key = upload.token.ledger_key();
        {
            let _rank = lockorder::enter(rank::LEDGER_SHARD);
            let mut ledger = self.ledgers[shard_index(&key, self.ledgers.len())].lock();
            if !ledger.insert(key) {
                drop(ledger);
                drop(_rank);
                self.stats.count(RejectReason::DoubleSpend);
                return IngestOutcome::Rejected(RejectReason::DoubleSpend);
            }
        }
        // From here the token stays spent even if the store refuses the
        // record — identical to the sequential redeem-then-append path.

        let shard = &self.shards[self.shard_of(&upload.record_id)];
        let rank_store = lockorder::enter(rank::STORE_SHARD);
        let mut store = shard.store.lock();
        match store.append(upload.record_id, upload.entity, upload.interaction) {
            Ok(()) => {
                self.stats.accepted.fetch_add(1, Relaxed);
                let sink = self.wal.read().clone();
                match sink {
                    Some(sink) => {
                        // Per-shard order-preserving handoff: claim this
                        // shard's WAL slot before releasing its store
                        // lock, so log order equals apply order for every
                        // record, then flush outside the store lock.
                        let rank_wal = lockorder::enter(rank::WAL_ORDER);
                        let order = shard.wal_order.lock();
                        drop(store);
                        drop(rank_store);
                        let entry = WalEntry {
                            record_id: upload.record_id,
                            entity: upload.entity,
                            interaction: upload.interaction,
                        };
                        let result = sink.log_append(&entry);
                        drop(order);
                        drop(rank_wal);
                        match result {
                            Ok(()) => IngestOutcome::Accepted,
                            Err(e) => IngestOutcome::AcceptedNotDurable(e),
                        }
                    }
                    None => IngestOutcome::Accepted,
                }
            }
            Err(OrspError::UploadRejected(_)) => {
                self.stats.count(RejectReason::EntityMismatch);
                IngestOutcome::Rejected(RejectReason::EntityMismatch)
            }
            Err(_) => {
                self.stats.count(RejectReason::BadRecord);
                IngestOutcome::Rejected(RejectReason::BadRecord)
            }
        }
    }

    /// Counter snapshot (atomic sums; exact once concurrent callers have
    /// returned).
    pub fn stats(&self) -> IngestStats {
        self.stats.snapshot()
    }

    /// Total histories across shards.
    pub fn store_len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                let _rank = lockorder::enter(rank::STORE_SHARD);
                s.store.lock().len()
            })
            .sum()
    }

    /// Total interactions across shards.
    pub fn total_interactions(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                let _rank = lockorder::enter(rank::STORE_SHARD);
                s.store.lock().total_interactions()
            })
            .sum()
    }

    /// Clone out every history for one entity, one brief shard lock at a
    /// time. Callers sort by record id before accumulating floats
    /// ([`crate::AggregatePublisher::from_histories`] does), which makes
    /// the result independent of shard layout.
    pub fn histories_for_entity(&self, entity: EntityId) -> Vec<(RecordId, StoredHistory)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let _rank = lockorder::enter(rank::STORE_SHARD);
            let store = shard.store.lock();
            out.extend(
                store.histories_for_entity(entity).map(|(rid, s)| (*rid, s.clone())),
            );
        }
        out
    }

    /// Collapse back into the single-threaded service (drain/checkpoint
    /// path). Consumes the domain, so no locks are contended.
    pub fn into_merged(self) -> (HistoryStore, IngestStats) {
        let stats = self.stats.snapshot();
        let mut merged = HistoryStore::new();
        for shard in self.shards {
            for (rid, stored) in shard.store.into_inner().into_histories() {
                merged.insert_history(rid, stored);
            }
        }
        (merged, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orsp_crypto::{TokenMint, TokenWallet};
    use orsp_types::{
        DeviceId, Interaction, InteractionKind, SimDuration, Timestamp,
    };
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn minted_uploads(n: usize, seed: u64) -> (Vec<UploadRequest>, RsaPublicKey) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut mint = TokenMint::new(&mut rng, 256, u32::MAX, SimDuration::DAY);
        let mut wallet = TokenWallet::new(DeviceId::new(1), mint.public_key().clone());
        let ups = (0..n)
            .map(|i| {
                wallet.request_token(&mut rng, &mut mint, Timestamp::EPOCH).unwrap();
                UploadRequest {
                    record_id: RecordId::from_bytes({
                        let mut b = [0u8; 32];
                        b[0] = (i % 251) as u8;
                        b[1] = (i / 251) as u8;
                        b
                    }),
                    entity: EntityId::new((i % 5) as u64),
                    interaction: Interaction::solo(
                        InteractionKind::Visit,
                        Timestamp::from_seconds(i as i64 * 1_000),
                        SimDuration::minutes(30),
                        75.0,
                    ),
                    token: wallet.take_token().unwrap(),
                    release_at: Timestamp::EPOCH,
                }
            })
            .collect();
        (ups, mint.public_key().clone())
    }

    #[test]
    fn sharded_admission_matches_sequential_counters() {
        let (ups, key) = minted_uploads(30, 7);
        let ingest = ShardedIngest::new(8);
        for u in &ups {
            assert!(matches!(ingest.ingest(u, &key), IngestOutcome::Accepted));
        }
        // Replays double-spend; a forged token is caught with no lock.
        assert!(matches!(
            ingest.ingest(&ups[0], &key),
            IngestOutcome::Rejected(RejectReason::DoubleSpend)
        ));
        let mut forged = ups[1].clone();
        forged.token.signature = orsp_crypto::BigUint::from_u64(3);
        assert!(matches!(
            ingest.ingest(&forged, &key),
            IngestOutcome::Rejected(RejectReason::BadToken)
        ));
        let stats = ingest.stats();
        assert_eq!(stats.accepted, 30);
        assert_eq!(stats.double_spend, 1);
        assert_eq!(stats.bad_token, 1);
        assert_eq!(ingest.store_len(), 30);
        assert_eq!(ingest.total_interactions(), 30);
    }

    #[test]
    fn reshard_then_merge_round_trips() {
        let (ups, key) = minted_uploads(40, 8);
        let ingest = ShardedIngest::new(4);
        for u in &ups {
            ingest.ingest(u, &key);
        }
        let (store, stats) = ingest.into_merged();
        assert_eq!(store.len(), 40);
        assert_eq!(stats.accepted, 40);

        // Reshard to a different count: same contents, same counters.
        let resharded =
            ShardedIngest::from_service(IngestService::from_parts(store, stats), 16);
        assert_eq!(resharded.shard_count(), 16);
        assert_eq!(resharded.store_len(), 40);
        assert_eq!(resharded.stats().accepted, 40);
        let (merged, _) = resharded.into_merged();
        assert_eq!(merged.total_interactions(), 40);
    }

    #[test]
    fn entity_histories_aggregate_identically_to_merged_store() {
        let (ups, key) = minted_uploads(35, 9);
        let ingest = ShardedIngest::new(8);
        for u in &ups {
            ingest.ingest(u, &key);
        }
        let entity = EntityId::new(2);
        let via_shards = crate::AggregatePublisher::from_histories(
            entity,
            ingest.histories_for_entity(entity),
        );
        let (merged, _) = ingest.into_merged();
        let via_merged = crate::AggregatePublisher::for_entity(&merged, entity);
        assert_eq!(via_shards, via_merged, "shard layout must not leak into aggregates");
    }

    #[test]
    fn store_rejection_still_consumes_the_token() {
        let (ups, key) = minted_uploads(2, 10);
        let ingest = ShardedIngest::new(4);
        assert!(matches!(ingest.ingest(&ups[0], &key), IngestOutcome::Accepted));
        // Same record id, different entity: entity mismatch, token spent.
        let mut rebind = ups[1].clone();
        rebind.record_id = ups[0].record_id;
        rebind.entity = EntityId::new(99);
        assert!(matches!(
            ingest.ingest(&rebind, &key),
            IngestOutcome::Rejected(RejectReason::EntityMismatch)
        ));
        // Retrying the same token now double-spends even with a good record.
        let mut retry = rebind.clone();
        retry.record_id = RecordId::from_bytes([77; 32]);
        retry.entity = ups[1].entity;
        assert!(matches!(
            ingest.ingest(&retry, &key),
            IngestOutcome::Rejected(RejectReason::DoubleSpend)
        ));
    }

    #[test]
    fn concurrent_uploads_from_many_threads_count_exactly() {
        let (ups, key) = minted_uploads(200, 11);
        let ingest = ShardedIngest::new(8);
        std::thread::scope(|s| {
            for chunk in ups.chunks(50) {
                let (ingest, key) = (&ingest, &key);
                s.spawn(move || {
                    for u in chunk {
                        assert!(matches!(
                            ingest.ingest(u, key),
                            IngestOutcome::Accepted
                        ));
                    }
                });
            }
        });
        assert_eq!(ingest.stats().accepted, 200);
        assert_eq!(ingest.store_len(), 200);
    }
}

//! The service-facing ingest domain: admission control sharded for
//! concurrent RPC traffic.
//!
//! [`crate::IngestService`] is the single-threaded admission engine the
//! in-process pipeline uses; this module is the same admission logic
//! re-partitioned so a multi-worker server can run it without a global
//! lock. Three independently synchronized pieces:
//!
//! * **Spend ledger**, sharded by `shard_index(token.ledger_key())` — the
//!   double-spend check must be global per *token*, and the ledger key is
//!   a hash of the token message, so sharding by it spreads tokens
//!   uniformly while keeping each token's first-presentation-wins
//!   decision on a single lock.
//! * **History store**, sharded by `shard_index(record_id)` — matching
//!   the storage engine's on-disk segment sharding, so when the shard
//!   counts agree each ingest shard appends to exactly its own shard log.
//! * **Per-shard group commit** — each accepted upload enqueues its
//!   encoded WAL work *under the store lock* (so queue order equals
//!   apply order), releases the store, and then contends for the shard's
//!   commit lock. Whoever wins is the **leader**: it drains the queue
//!   (up to `group_commit_batch_max` items), hands the whole batch to
//!   the sink — one buffered write, **one fsync** — and publishes the
//!   durable watermark. Followers that arrive after their ticket is
//!   covered just read their verdict and return. Every ack still waits
//!   for the fsync covering its own record, so durability semantics are
//!   byte-for-byte those of one-fsync-per-record, but under concurrency
//!   the fsync cost is amortized across the whole group. Reads never
//!   queue behind a disk flush.
//!
//! Counters are atomics: every stat is an order-independent sum, which is
//! one of the two facts that keep a sharded run bit-identical to the
//! sequential reference (the other: admission decisions only ever depend
//! on single-token or single-record state, never on cross-shard state).

use crate::ingest::{IngestService, IngestStats, RejectReason};
use crate::lockorder::{self, rank};
use crate::sharded::shard_index;
use crate::store::{HistoryStore, StoredHistory};
use crate::wal::{WalBatchItem, WalEntry, WalSink};
use orsp_client::UploadRequest;
use orsp_crypto::blind::verify_unblinded;
use orsp_crypto::RsaPublicKey;
use orsp_types::{EntityId, OrspError, RecordId};
use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

/// Tuning for the per-shard group commit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupCommitConfig {
    /// Most items one leader commits in a single batch (≥ 1). Larger
    /// batches amortize the fsync further but lengthen the tail an
    /// unlucky follower waits behind.
    pub batch_max: usize,
    /// Microseconds the leader holds its window open before draining,
    /// letting more concurrent uploaders join the group. 0 (the
    /// default) drains immediately — batches then form naturally from
    /// whatever queued while the previous fsync was in flight.
    pub window_us: u64,
}

impl Default for GroupCommitConfig {
    fn default() -> Self {
        GroupCommitConfig { batch_max: 64, window_us: 0 }
    }
}

/// Result of one admission attempt.
#[derive(Debug)]
pub enum IngestOutcome {
    /// Applied to the store and (when a sink is wired) durably logged.
    Accepted,
    /// Applied to the store, but the durability sink failed — the caller
    /// must surface this rather than acknowledge a clean accept, and the
    /// client must not retry (the token is spent, the record applied).
    AcceptedNotDurable(OrspError),
    /// Refused; nothing was applied. (The token *is* consumed for store
    /// rejections — same semantics as the sequential path, where
    /// redemption precedes the append.)
    Rejected(RejectReason),
}

#[derive(Default)]
struct AtomicStats {
    accepted: AtomicU64,
    bad_token: AtomicU64,
    double_spend: AtomicU64,
    bad_record: AtomicU64,
    entity_mismatch: AtomicU64,
}

impl AtomicStats {
    fn from_stats(stats: IngestStats) -> Self {
        AtomicStats {
            accepted: AtomicU64::new(stats.accepted),
            bad_token: AtomicU64::new(stats.bad_token),
            double_spend: AtomicU64::new(stats.double_spend),
            bad_record: AtomicU64::new(stats.bad_record),
            entity_mismatch: AtomicU64::new(stats.entity_mismatch),
        }
    }

    fn count(&self, reason: RejectReason) {
        match reason {
            RejectReason::BadToken => self.bad_token.fetch_add(1, Relaxed),
            RejectReason::DoubleSpend => self.double_spend.fetch_add(1, Relaxed),
            RejectReason::BadRecord => self.bad_record.fetch_add(1, Relaxed),
            RejectReason::EntityMismatch => self.entity_mismatch.fetch_add(1, Relaxed),
        };
    }

    fn snapshot(&self) -> IngestStats {
        IngestStats {
            accepted: self.accepted.load(Relaxed),
            bad_token: self.bad_token.load(Relaxed),
            double_spend: self.double_spend.load(Relaxed),
            bad_record: self.bad_record.load(Relaxed),
            entity_mismatch: self.entity_mismatch.load(Relaxed),
        }
    }
}

/// Pending WAL work for one shard, in apply order. Tickets are dense
/// and monotonic; `durable_through` is the exclusive watermark below
/// which every ticket's commit attempt has finished.
struct GroupQueue {
    pending: VecDeque<(u64, WalBatchItem)>,
    next_ticket: u64,
    durable_through: u64,
    /// Sink errors for decided tickets, removed by each ticket's sole
    /// owner; commits that succeed never touch this map.
    failed: HashMap<u64, OrspError>,
}

impl GroupQueue {
    fn new() -> Self {
        GroupQueue {
            pending: VecDeque::new(),
            next_ticket: 0,
            durable_through: 0,
            failed: HashMap::new(),
        }
    }
}

struct StoreShard {
    store: Mutex<HistoryStore>,
    /// Group-commit leader lock: the holder drains `queue` and commits
    /// batches until its own ticket is covered. Rank [`rank::WAL_ORDER`].
    commit: Mutex<()>,
    /// Enqueued-but-not-yet-durable uploads. Rank [`rank::GROUP_QUEUE`];
    /// held only for push/drain instants, never across I/O.
    queue: Mutex<GroupQueue>,
}

/// Shard-partitioned admission control for the request path.
pub struct ShardedIngest {
    ledgers: Vec<Mutex<HashSet<[u8; 32]>>>,
    shards: Vec<StoreShard>,
    wal: RwLock<Option<(Arc<dyn WalSink>, GroupCommitConfig)>>,
    stats: AtomicStats,
    /// Times any store-shard lock was taken, read paths included — the
    /// hammer suite asserts this stays flat across read-only traffic.
    store_locks: AtomicU64,
}

impl ShardedIngest {
    /// An empty ingest domain with `n` shards (clamped to ≥ 1).
    pub fn new(n: usize) -> Self {
        Self::with_parts(HistoryStore::new(), IngestStats::default(), n)
    }

    /// Reshard an existing service's store (recovery resume path): every
    /// history is redistributed by `shard_index(record_id)`. The spend
    /// ledger starts empty; durable runs re-seed it from the recovered
    /// log via [`Self::seed_spent_tokens`].
    pub fn from_service(service: IngestService, n: usize) -> Self {
        let (store, stats) = service.into_parts();
        Self::with_parts(store, stats, n)
    }

    fn with_parts(store: HistoryStore, stats: IngestStats, n: usize) -> Self {
        let n = n.max(1);
        let ledgers = (0..n).map(|_| Mutex::new(HashSet::new())).collect();
        let mut shards: Vec<StoreShard> = (0..n)
            .map(|_| StoreShard {
                store: Mutex::new(HistoryStore::new()),
                commit: Mutex::new(()),
                queue: Mutex::new(GroupQueue::new()),
            })
            .collect();
        for (rid, stored) in store.into_histories() {
            let shard = shard_index(rid.as_bytes(), n);
            shards[shard].store.get_mut().insert_history(rid, stored);
        }
        ShardedIngest {
            ledgers,
            shards,
            wal: RwLock::new(None),
            stats: AtomicStats::from_stats(stats),
            store_locks: AtomicU64::new(0),
        }
    }

    /// Wire (or replace) the durability sink every accepted upload is
    /// logged through, with default group-commit tuning.
    pub fn set_wal(&self, sink: Arc<dyn WalSink>) {
        self.set_wal_with(sink, GroupCommitConfig::default());
    }

    /// Wire (or replace) the durability sink with explicit group-commit
    /// tuning.
    pub fn set_wal_with(&self, sink: Arc<dyn WalSink>, config: GroupCommitConfig) {
        *self.wal.write() = Some((sink, config));
    }

    /// Seed the spend ledger with keys recovered from the durable log,
    /// so tokens spent before a crash stay spent after it.
    pub fn seed_spent_tokens<I: IntoIterator<Item = [u8; 32]>>(&self, keys: I) {
        for key in keys {
            let _rank = lockorder::enter(rank::LEDGER_SHARD);
            self.ledgers[shard_index(&key, self.ledgers.len())].lock().insert(key);
        }
    }

    /// Snapshot of every spent-token ledger key across shards (the
    /// checkpoint path folds this into the snapshot at drain).
    pub fn spent_tokens(&self) -> HashSet<[u8; 32]> {
        let mut out = HashSet::new();
        for ledger in &self.ledgers {
            let _rank = lockorder::enter(rank::LEDGER_SHARD);
            out.extend(ledger.lock().iter().copied());
        }
        out
    }

    /// Times any store-shard lock has been acquired since construction
    /// (ingest and publish paths both count; the served read path must
    /// not move this).
    pub fn store_lock_acquisitions(&self) -> u64 {
        self.store_locks.load(Relaxed)
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Which shard owns a record id.
    pub fn shard_of(&self, record_id: &RecordId) -> usize {
        shard_index(record_id.as_bytes(), self.shards.len())
    }

    /// Admit one upload: verify the token signature (pure RSA, no lock),
    /// then delegate to [`Self::ingest_verified`].
    pub fn ingest(&self, upload: &UploadRequest, mint_key: &RsaPublicKey) -> IngestOutcome {
        let valid =
            verify_unblinded(mint_key, &upload.token.message, &upload.token.signature);
        self.ingest_verified(upload, valid)
    }

    /// Admit one upload whose signature verdict was computed by the
    /// caller. Locks touched, in rank order, each held only for the
    /// in-memory operation: the token's ledger shard, then the record's
    /// store shard (under which the WAL work is enqueued, so log order
    /// equals apply order), then — for durable accepts — the shard's
    /// group-commit lock while this thread either leads a batch commit
    /// or collects the verdict a previous leader already published. The
    /// store lock is released before any I/O, so reads and other shards
    /// never wait on the fsync.
    pub fn ingest_verified(&self, upload: &UploadRequest, signature_valid: bool) -> IngestOutcome {
        if !signature_valid {
            self.stats.count(RejectReason::BadToken);
            return IngestOutcome::Rejected(RejectReason::BadToken);
        }

        // Trace the shard handoff (ledger spend + store append + WAL
        // enqueue) as one span; the durability wait below is a sibling.
        // A no-op unless this thread is inside a sampled trace.
        let ingest_span = orsp_obs::trace::child("ingest_shard");

        let key = upload.token.ledger_key();
        {
            let _rank = lockorder::enter(rank::LEDGER_SHARD);
            let mut ledger = self.ledgers[shard_index(&key, self.ledgers.len())].lock();
            if !ledger.insert(key) {
                drop(ledger);
                drop(_rank);
                self.stats.count(RejectReason::DoubleSpend);
                return IngestOutcome::Rejected(RejectReason::DoubleSpend);
            }
        }
        // From here the token stays spent even if the store refuses the
        // record — identical to the sequential redeem-then-append path.

        let shard = &self.shards[self.shard_of(&upload.record_id)];
        let rank_store = lockorder::enter(rank::STORE_SHARD);
        self.store_locks.fetch_add(1, Relaxed);
        let mut store = shard.store.lock();
        match store.append(upload.record_id, upload.entity, upload.interaction) {
            Ok(()) => {
                self.stats.accepted.fetch_add(1, Relaxed);
                let wired = self.wal.read().clone();
                match wired {
                    Some((sink, config)) => {
                        // Enqueue while the store lock is still held:
                        // the queue sequences items exactly in apply
                        // order. The spend rides along so one fsync
                        // covers both the ledger entry and the record.
                        let entry = WalEntry {
                            record_id: upload.record_id,
                            entity: upload.entity,
                            interaction: upload.interaction,
                        };
                        let ticket = {
                            let _rank_q = lockorder::enter(rank::GROUP_QUEUE);
                            let mut q = shard.queue.lock();
                            let t = q.next_ticket;
                            q.next_ticket += 1;
                            q.pending.push_back((
                                t,
                                WalBatchItem { spend: Some(key), entry },
                            ));
                            t
                        };
                        drop(store);
                        drop(rank_store);
                        ingest_span.end();
                        match self.await_durable(shard, &*sink, config, ticket) {
                            Ok(()) => IngestOutcome::Accepted,
                            Err(e) => IngestOutcome::AcceptedNotDurable(e),
                        }
                    }
                    None => IngestOutcome::Accepted,
                }
            }
            Err(OrspError::UploadRejected(_)) => {
                self.stats.count(RejectReason::EntityMismatch);
                IngestOutcome::Rejected(RejectReason::EntityMismatch)
            }
            Err(_) => {
                self.stats.count(RejectReason::BadRecord);
                IngestOutcome::Rejected(RejectReason::BadRecord)
            }
        }
    }

    /// Block until the fsync covering `ticket` has returned, leading the
    /// commit if this thread wins the shard's commit lock first.
    ///
    /// Leader election is a non-blocking bid: every enqueuer polls the
    /// queue's `durable_through` and, while uncovered, `try_lock`s
    /// `shard.commit`; the winner drains the queue in ticket order — up
    /// to `config.batch_max` items per batch, one sink call (one fsync)
    /// per batch — until its own ticket is covered, then releases the
    /// lock. Losers spin-then-nap on the queue state instead of queueing
    /// on the commit lock: a follower whose record just became durable
    /// must return (and get back to producing) without waiting out the
    /// *next* leader's fsync, which is what blocking on the lock would
    /// cost — measured, that convoy caps grouping near two records per
    /// fsync no matter how many uploaders a shard has. No thread ever
    /// returns before the sink call covering its record has, which is
    /// the whole durability contract.
    fn await_durable(
        &self,
        shard: &StoreShard,
        sink: &dyn WalSink,
        config: GroupCommitConfig,
        ticket: u64,
    ) -> orsp_types::Result<()> {
        // Covers the whole durability wait, leader or follower; the
        // leader opens `group_commit_lead`/`wal_fsync` children inside.
        let _wait_span = orsp_obs::trace::child("group_commit_wait");
        let mut bids_lost = 0u32;
        let _commit = loop {
            {
                let _rank_q = lockorder::enter(rank::GROUP_QUEUE);
                let mut q = shard.queue.lock();
                if q.durable_through > ticket {
                    // A leader carried this ticket.
                    return match q.failed.remove(&ticket) {
                        Some(e) => Err(e),
                        None => Ok(()),
                    };
                }
            }
            let _rank_commit = lockorder::enter(rank::WAL_ORDER);
            match shard.commit.try_lock() {
                Some(guard) => break (guard, _rank_commit),
                None => {
                    drop(_rank_commit);
                    bids_lost += 1;
                    if bids_lost <= 64 {
                        std::thread::yield_now();
                    } else {
                        std::thread::sleep(std::time::Duration::from_micros(20));
                    }
                }
            }
        };
        {
            // The bid raced a leader's publish: re-check now that the
            // lock is held (tickets drain only under it, so from here
            // an uncovered ticket is still in the queue).
            let _rank_q = lockorder::enter(rank::GROUP_QUEUE);
            let mut q = shard.queue.lock();
            if q.durable_through > ticket {
                return match q.failed.remove(&ticket) {
                    Some(e) => Err(e),
                    None => Ok(()),
                };
            }
        }
        let _lead_span = orsp_obs::trace::child("group_commit_lead");
        // This thread is the leader. Optionally hold the first batch
        // open so concurrent uploaders can join it — but adaptively:
        // poll the queue and sync as soon as arrivals dry up or the
        // batch is full, so `window_us` bounds the straggler wait
        // instead of being paid in full on every commit.
        if config.window_us > 0 {
            let deadline = std::time::Instant::now()
                + std::time::Duration::from_micros(config.window_us);
            let mut seen = {
                let _rank_q = lockorder::enter(rank::GROUP_QUEUE);
                shard.queue.lock().pending.len()
            };
            while seen < config.batch_max && std::time::Instant::now() < deadline {
                std::thread::sleep(std::time::Duration::from_micros(25));
                let len = {
                    let _rank_q = lockorder::enter(rank::GROUP_QUEUE);
                    shard.queue.lock().pending.len()
                };
                if len == seen {
                    break; // arrivals dried up; waiting longer is dead air
                }
                seen = len;
            }
        }
        loop {
            let (first, batch) = {
                let _rank_q = lockorder::enter(rank::GROUP_QUEUE);
                let mut q = shard.queue.lock();
                let n = q.pending.len().min(config.batch_max.max(1));
                debug_assert!(n > 0, "leader with an undrained ticket, empty queue");
                let first = q.pending.front().map(|(t, _)| *t).unwrap_or(ticket);
                let batch: Vec<WalBatchItem> =
                    q.pending.drain(..n).map(|(_, item)| item).collect();
                (first, batch)
            };
            let last = first + batch.len() as u64 - 1;
            let fsync_span = orsp_obs::trace::child("wal_fsync");
            let result = sink.log_upload_batch(&batch);
            fsync_span.end();
            {
                let _rank_q = lockorder::enter(rank::GROUP_QUEUE);
                let mut q = shard.queue.lock();
                q.durable_through = last + 1;
                if let Err(e) = &result {
                    for t in first..=last {
                        if t != ticket {
                            q.failed.insert(t, e.clone());
                        }
                    }
                }
            }
            if ticket <= last {
                // Our own record was in this batch: its fsync (or
                // failure) is the verdict, and leadership ends here —
                // anything still queued belongs to the next leader.
                return result;
            }
        }
    }

    /// Counter snapshot (atomic sums; exact once concurrent callers have
    /// returned).
    pub fn stats(&self) -> IngestStats {
        self.stats.snapshot()
    }

    /// Total histories across shards.
    pub fn store_len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                let _rank = lockorder::enter(rank::STORE_SHARD);
                self.store_locks.fetch_add(1, Relaxed);
                s.store.lock().len()
            })
            .sum()
    }

    /// Total interactions across shards.
    pub fn total_interactions(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                let _rank = lockorder::enter(rank::STORE_SHARD);
                self.store_locks.fetch_add(1, Relaxed);
                s.store.lock().total_interactions()
            })
            .sum()
    }

    /// Clone out every stored history grouped by entity, one brief shard
    /// lock at a time — the aggregate-publish path, which walks the
    /// whole store once instead of re-locking per entity.
    pub fn histories_by_entity(
        &self,
    ) -> HashMap<EntityId, Vec<(RecordId, StoredHistory)>> {
        let mut out: HashMap<EntityId, Vec<(RecordId, StoredHistory)>> = HashMap::new();
        for shard in &self.shards {
            let _rank = lockorder::enter(rank::STORE_SHARD);
            self.store_locks.fetch_add(1, Relaxed);
            let store = shard.store.lock();
            for (rid, stored) in store.iter() {
                out.entry(stored.entity).or_default().push((*rid, stored.clone()));
            }
        }
        out
    }

    /// Clone out every history for one entity, one brief shard lock at a
    /// time. Callers sort by record id before accumulating floats
    /// ([`crate::AggregatePublisher::from_histories`] does), which makes
    /// the result independent of shard layout.
    pub fn histories_for_entity(&self, entity: EntityId) -> Vec<(RecordId, StoredHistory)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let _rank = lockorder::enter(rank::STORE_SHARD);
            self.store_locks.fetch_add(1, Relaxed);
            let store = shard.store.lock();
            out.extend(
                store.histories_for_entity(entity).map(|(rid, s)| (*rid, s.clone())),
            );
        }
        out
    }

    /// Fold a recovered range of histories and spent-token keys into the
    /// serving domain — the promotion path: a follower elected primary
    /// absorbs the replicated range it had been applying to its dormant
    /// engine. Replace semantics per record (the absorbed copy is the
    /// authoritative one; a record already present is superseded, not
    /// double-appended), so absorbing is idempotent across repeated
    /// promotions of the same range. `accepted` grows by the number of
    /// *new* interactions absorbed, keeping the counter an
    /// order-independent sum.
    pub fn absorb_histories<R, T>(&self, records: R, spent_tokens: T)
    where
        R: IntoIterator<Item = (RecordId, StoredHistory)>,
        T: IntoIterator<Item = [u8; 32]>,
    {
        for (rid, stored) in records {
            let shard = &self.shards[shard_index(rid.as_bytes(), self.shards.len())];
            let _rank = lockorder::enter(rank::STORE_SHARD);
            self.store_locks.fetch_add(1, Relaxed);
            let mut store = shard.store.lock();
            let prior = store.get(&rid).map(|s| s.history.len()).unwrap_or(0);
            store.delete_record(&rid);
            let absorbed = stored.history.len();
            store.insert_history(rid, stored);
            self.stats.accepted.fetch_add(absorbed.saturating_sub(prior) as u64, Relaxed);
        }
        self.seed_spent_tokens(spent_tokens);
    }

    /// Collapse back into the single-threaded service (drain/checkpoint
    /// path). Consumes the domain, so no locks are contended.
    pub fn into_merged(self) -> (HistoryStore, IngestStats) {
        let stats = self.stats.snapshot();
        let mut merged = HistoryStore::new();
        for shard in self.shards {
            for (rid, stored) in shard.store.into_inner().into_histories() {
                merged.insert_history(rid, stored);
            }
        }
        (merged, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orsp_crypto::{TokenMint, TokenWallet};
    use orsp_types::{
        DeviceId, Interaction, InteractionKind, SimDuration, Timestamp,
    };
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn minted_uploads(n: usize, seed: u64) -> (Vec<UploadRequest>, RsaPublicKey) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut mint = TokenMint::new(&mut rng, 256, u32::MAX, SimDuration::DAY);
        let mut wallet = TokenWallet::new(DeviceId::new(1), mint.public_key().clone());
        let ups = (0..n)
            .map(|i| {
                wallet.request_token(&mut rng, &mut mint, Timestamp::EPOCH).unwrap();
                UploadRequest {
                    record_id: RecordId::from_bytes({
                        let mut b = [0u8; 32];
                        b[0] = (i % 251) as u8;
                        b[1] = (i / 251) as u8;
                        b
                    }),
                    entity: EntityId::new((i % 5) as u64),
                    interaction: Interaction::solo(
                        InteractionKind::Visit,
                        Timestamp::from_seconds(i as i64 * 1_000),
                        SimDuration::minutes(30),
                        75.0,
                    ),
                    token: wallet.take_token().unwrap(),
                    release_at: Timestamp::EPOCH,
                }
            })
            .collect();
        (ups, mint.public_key().clone())
    }

    #[test]
    fn sharded_admission_matches_sequential_counters() {
        let (ups, key) = minted_uploads(30, 7);
        let ingest = ShardedIngest::new(8);
        for u in &ups {
            assert!(matches!(ingest.ingest(u, &key), IngestOutcome::Accepted));
        }
        // Replays double-spend; a forged token is caught with no lock.
        assert!(matches!(
            ingest.ingest(&ups[0], &key),
            IngestOutcome::Rejected(RejectReason::DoubleSpend)
        ));
        let mut forged = ups[1].clone();
        forged.token.signature = orsp_crypto::BigUint::from_u64(3);
        assert!(matches!(
            ingest.ingest(&forged, &key),
            IngestOutcome::Rejected(RejectReason::BadToken)
        ));
        let stats = ingest.stats();
        assert_eq!(stats.accepted, 30);
        assert_eq!(stats.double_spend, 1);
        assert_eq!(stats.bad_token, 1);
        assert_eq!(ingest.store_len(), 30);
        assert_eq!(ingest.total_interactions(), 30);
    }

    #[test]
    fn reshard_then_merge_round_trips() {
        let (ups, key) = minted_uploads(40, 8);
        let ingest = ShardedIngest::new(4);
        for u in &ups {
            ingest.ingest(u, &key);
        }
        let (store, stats) = ingest.into_merged();
        assert_eq!(store.len(), 40);
        assert_eq!(stats.accepted, 40);

        // Reshard to a different count: same contents, same counters.
        let resharded =
            ShardedIngest::from_service(IngestService::from_parts(store, stats), 16);
        assert_eq!(resharded.shard_count(), 16);
        assert_eq!(resharded.store_len(), 40);
        assert_eq!(resharded.stats().accepted, 40);
        let (merged, _) = resharded.into_merged();
        assert_eq!(merged.total_interactions(), 40);
    }

    #[test]
    fn entity_histories_aggregate_identically_to_merged_store() {
        let (ups, key) = minted_uploads(35, 9);
        let ingest = ShardedIngest::new(8);
        for u in &ups {
            ingest.ingest(u, &key);
        }
        let entity = EntityId::new(2);
        let via_shards = crate::AggregatePublisher::from_histories(
            entity,
            ingest.histories_for_entity(entity),
        );
        let (merged, _) = ingest.into_merged();
        let via_merged = crate::AggregatePublisher::for_entity(&merged, entity);
        assert_eq!(via_shards, via_merged, "shard layout must not leak into aggregates");
    }

    #[test]
    fn store_rejection_still_consumes_the_token() {
        let (ups, key) = minted_uploads(2, 10);
        let ingest = ShardedIngest::new(4);
        assert!(matches!(ingest.ingest(&ups[0], &key), IngestOutcome::Accepted));
        // Same record id, different entity: entity mismatch, token spent.
        let mut rebind = ups[1].clone();
        rebind.record_id = ups[0].record_id;
        rebind.entity = EntityId::new(99);
        assert!(matches!(
            ingest.ingest(&rebind, &key),
            IngestOutcome::Rejected(RejectReason::EntityMismatch)
        ));
        // Retrying the same token now double-spends even with a good record.
        let mut retry = rebind.clone();
        retry.record_id = RecordId::from_bytes([77; 32]);
        retry.entity = ups[1].entity;
        assert!(matches!(
            ingest.ingest(&retry, &key),
            IngestOutcome::Rejected(RejectReason::DoubleSpend)
        ));
    }

    /// A sink that records every batch handed to `log_upload_batch`.
    struct BatchSink {
        batches: Mutex<Vec<Vec<WalBatchItem>>>,
    }

    impl WalSink for BatchSink {
        fn log_append(&self, entry: &WalEntry) -> orsp_types::Result<()> {
            self.batches.lock().push(vec![WalBatchItem { spend: None, entry: *entry }]);
            Ok(())
        }

        fn log_upload_batch(&self, items: &[WalBatchItem]) -> orsp_types::Result<()> {
            self.batches.lock().push(items.to_vec());
            Ok(())
        }
    }

    #[test]
    fn group_commit_logs_every_upload_once_in_apply_order() {
        let (ups, key) = minted_uploads(60, 21);
        let ingest = ShardedIngest::new(1); // one shard: one global queue
        let sink = Arc::new(BatchSink { batches: Mutex::new(Vec::new()) });
        ingest.set_wal_with(
            Arc::clone(&sink) as Arc<dyn WalSink>,
            GroupCommitConfig { batch_max: 8, window_us: 0 },
        );
        std::thread::scope(|s| {
            for chunk in ups.chunks(15) {
                let (ingest, key) = (&ingest, &key);
                s.spawn(move || {
                    for u in chunk {
                        assert!(matches!(ingest.ingest(u, key), IngestOutcome::Accepted));
                    }
                });
            }
        });
        let batches = sink.batches.lock();
        let total: usize = batches.iter().map(|b| b.len()).sum();
        assert_eq!(total, 60, "every accepted upload logged exactly once");
        assert!(batches.iter().all(|b| !b.is_empty() && b.len() <= 8), "batch_max respected");
        assert!(batches.iter().all(|b| b.iter().all(|i| i.spend.is_some())));
        // Single shard ⇒ the concatenated batches are the apply order;
        // the store must agree record for record.
        let logged: Vec<RecordId> =
            batches.iter().flatten().map(|i| i.entry.record_id).collect();
        let (store, _) = ingest.into_merged();
        assert_eq!(logged.len(), store.len());
        for rid in &logged {
            assert!(store.iter().any(|(id, _)| id == rid));
        }
        // Each logged spend is a distinct token.
        let spends: HashSet<[u8; 32]> =
            batches.iter().flatten().filter_map(|i| i.spend).collect();
        assert_eq!(spends.len(), 60);
    }

    /// A sink whose batch commits always fail.
    struct FailingSink;

    impl WalSink for FailingSink {
        fn log_append(&self, _entry: &WalEntry) -> orsp_types::Result<()> {
            Err(OrspError::Storage("disk on fire".into()))
        }

        fn log_upload_batch(&self, _items: &[WalBatchItem]) -> orsp_types::Result<()> {
            Err(OrspError::Storage("disk on fire".into()))
        }
    }

    #[test]
    fn every_member_of_a_failed_group_learns_of_the_failure() {
        let (ups, key) = minted_uploads(24, 22);
        let ingest = ShardedIngest::new(1);
        ingest.set_wal(Arc::new(FailingSink));
        let not_durable = AtomicU64::new(0);
        std::thread::scope(|s| {
            for chunk in ups.chunks(6) {
                let (ingest, key, not_durable) = (&ingest, &key, &not_durable);
                s.spawn(move || {
                    for u in chunk {
                        match ingest.ingest(u, key) {
                            IngestOutcome::AcceptedNotDurable(OrspError::Storage(_)) => {
                                not_durable.fetch_add(1, Relaxed);
                            }
                            other => panic!("expected AcceptedNotDurable, got {other:?}"),
                        }
                    }
                });
            }
        });
        assert_eq!(not_durable.load(Relaxed), 24, "no follower mistakes failure for an ack");
        assert_eq!(ingest.stats().accepted, 24, "records applied despite sink failure");
    }

    #[test]
    fn spent_token_seed_round_trips_and_rejects_replay() {
        let (ups, key) = minted_uploads(10, 23);
        let ingest = ShardedIngest::new(4);
        for u in &ups {
            assert!(matches!(ingest.ingest(u, &key), IngestOutcome::Accepted));
        }
        let tokens = ingest.spent_tokens();
        assert_eq!(tokens.len(), 10);
        // A fresh domain seeded with the old ledger refuses the replay.
        let fresh = ShardedIngest::new(4);
        fresh.seed_spent_tokens(tokens);
        assert!(matches!(
            fresh.ingest(&ups[3], &key),
            IngestOutcome::Rejected(RejectReason::DoubleSpend)
        ));
    }

    #[test]
    fn read_paths_do_not_touch_store_locks_counter_only_moves_on_ingest() {
        let (ups, key) = minted_uploads(5, 24);
        let ingest = ShardedIngest::new(2);
        assert_eq!(ingest.store_lock_acquisitions(), 0);
        for u in &ups {
            ingest.ingest(u, &key);
        }
        let after_ingest = ingest.store_lock_acquisitions();
        assert_eq!(after_ingest, 5, "one store lock per accepted upload");
        // Ledger-only work leaves the store locks alone.
        let _ = ingest.spent_tokens();
        assert_eq!(ingest.store_lock_acquisitions(), after_ingest);
    }

    #[test]
    fn concurrent_uploads_from_many_threads_count_exactly() {
        let (ups, key) = minted_uploads(200, 11);
        let ingest = ShardedIngest::new(8);
        std::thread::scope(|s| {
            for chunk in ups.chunks(50) {
                let (ingest, key) = (&ingest, &key);
                s.spawn(move || {
                    for u in chunk {
                        assert!(matches!(
                            ingest.ingest(u, key),
                            IngestOutcome::Accepted
                        ));
                    }
                });
            }
        });
        assert_eq!(ingest.stats().accepted, 200);
        assert_eq!(ingest.store_len(), 200);
    }
}

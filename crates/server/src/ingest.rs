//! Ingest: admission control for anonymous uploads.
//!
//! Every upload must present a valid, unspent blind token (§4.2) and a
//! well-formed record; entity re-binding attempts are rejected by the
//! store. The service counts every rejection by reason so the experiments
//! can report exactly what the defences caught.
//!
//! [`concurrent_ingest`] runs the same admission logic on a worker thread
//! fed by a crossbeam channel — the shape a production ingest tier would
//! take, exercised by the throughput benches.

use crate::store::HistoryStore;
use orsp_client::UploadRequest;
use orsp_crypto::{SpendOutcome, TokenMint};
use orsp_types::Timestamp;
use serde::{Deserialize, Serialize};

/// Why an upload was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RejectReason {
    /// Token signature invalid (forged).
    BadToken,
    /// Token already spent.
    DoubleSpend,
    /// Interaction malformed or out of order for its history.
    BadRecord,
    /// Record id already bound to a different entity.
    EntityMismatch,
}

/// Ingest counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IngestStats {
    /// Uploads accepted into the store.
    pub accepted: u64,
    /// Forged tokens.
    pub bad_token: u64,
    /// Double-spent tokens.
    pub double_spend: u64,
    /// Malformed or out-of-order records.
    pub bad_record: u64,
    /// Entity re-binding attempts.
    pub entity_mismatch: u64,
}

impl IngestStats {
    /// Total rejected.
    pub fn rejected(&self) -> u64 {
        self.bad_token + self.double_spend + self.bad_record + self.entity_mismatch
    }

    fn count(&mut self, reason: RejectReason) {
        match reason {
            RejectReason::BadToken => self.bad_token += 1,
            RejectReason::DoubleSpend => self.double_spend += 1,
            RejectReason::BadRecord => self.bad_record += 1,
            RejectReason::EntityMismatch => self.entity_mismatch += 1,
        }
    }
}

/// The ingest service: token check then store append.
pub struct IngestService {
    store: HistoryStore,
    stats: IngestStats,
}

impl Default for IngestService {
    fn default() -> Self {
        Self::new()
    }
}

impl IngestService {
    /// A fresh service with an empty store.
    pub fn new() -> Self {
        IngestService { store: HistoryStore::new(), stats: IngestStats::default() }
    }

    /// Assemble a service from an already-populated store and its
    /// counters — how [`crate::deterministic_ingest`] hands back the
    /// result of a multi-threaded admission run.
    pub fn from_parts(store: HistoryStore, stats: IngestStats) -> Self {
        IngestService { store, stats }
    }

    /// Process one upload at time `now`. The mint is consulted for token
    /// redemption (it owns the spend ledger).
    pub fn ingest(
        &mut self,
        upload: &UploadRequest,
        mint: &mut TokenMint,
        now: Timestamp,
    ) -> Result<(), RejectReason> {
        match mint.redeem(&upload.token, now) {
            SpendOutcome::Invalid => {
                self.stats.count(RejectReason::BadToken);
                return Err(RejectReason::BadToken);
            }
            SpendOutcome::DoubleSpend => {
                self.stats.count(RejectReason::DoubleSpend);
                return Err(RejectReason::DoubleSpend);
            }
            SpendOutcome::Accepted => {}
        }
        match self.store.append(upload.record_id, upload.entity, upload.interaction) {
            Ok(()) => {
                self.stats.accepted += 1;
                Ok(())
            }
            Err(orsp_types::OrspError::UploadRejected(_)) => {
                self.stats.count(RejectReason::EntityMismatch);
                Err(RejectReason::EntityMismatch)
            }
            Err(_) => {
                self.stats.count(RejectReason::BadRecord);
                Err(RejectReason::BadRecord)
            }
        }
    }

    /// Ingest a batch (a mix flush) in order.
    pub fn ingest_batch(
        &mut self,
        uploads: &[UploadRequest],
        mint: &mut TokenMint,
        now: Timestamp,
    ) -> usize {
        uploads.iter().filter(|u| self.ingest(u, mint, now).is_ok()).count()
    }

    /// Counters so far.
    pub fn stats(&self) -> IngestStats {
        self.stats
    }

    /// Break the service into its store and counters — the shard
    /// redistribution path ([`crate::ShardedIngest::from_service`]).
    pub fn into_parts(self) -> (HistoryStore, IngestStats) {
        (self.store, self.stats)
    }

    /// The underlying store (server-internal analytics).
    pub fn store(&self) -> &HistoryStore {
        &self.store
    }

    /// Mutable store access (fraud filter discards).
    pub fn store_mut(&mut self) -> &mut HistoryStore {
        &mut self.store
    }
}

/// Run admission on a worker thread: uploads stream in over a crossbeam
/// channel, the populated service comes back when the channel closes.
///
/// One worker owns the store and mint outright — no locks on the hot path,
/// the channel is the synchronization point (the "share memory by
/// communicating" shape the async guides recommend for state owned by one
/// task).
pub fn concurrent_ingest(
    uploads: Vec<UploadRequest>,
    mut mint: TokenMint,
    now: Timestamp,
) -> (IngestService, TokenMint) {
    let (tx, rx) = crossbeam::channel::bounded::<UploadRequest>(1024);
    let worker = std::thread::spawn(move || {
        let mut service = IngestService::new();
        for upload in rx.iter() {
            let _ = service.ingest(&upload, &mut mint, now);
        }
        (service, mint)
    });
    for u in uploads {
        tx.send(u).expect("worker alive");
    }
    drop(tx);
    worker.join().expect("ingest worker panicked")
}

#[cfg(test)]
mod tests {
    use super::*;
    use orsp_crypto::{BigUint, Token, TokenWallet};
    use orsp_types::{
        DeviceId, EntityId, Interaction, InteractionKind, RecordId, SimDuration,
    };
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (TokenMint, TokenWallet, StdRng) {
        let mut rng = StdRng::seed_from_u64(5);
        let mint = TokenMint::new(&mut rng, 256, 1_000, SimDuration::DAY);
        let wallet = TokenWallet::new(DeviceId::new(1), mint.public_key().clone());
        (mint, wallet, rng)
    }

    fn upload(token: Token, record: u8, entity: u64, t: i64) -> UploadRequest {
        UploadRequest {
            record_id: RecordId::from_bytes([record; 32]),
            entity: EntityId::new(entity),
            interaction: Interaction::solo(
                InteractionKind::Visit,
                Timestamp::from_seconds(t),
                SimDuration::minutes(30),
                100.0,
            ),
            token,
            release_at: Timestamp::from_seconds(t),
        }
    }

    fn fresh_token(
        wallet: &mut TokenWallet,
        mint: &mut TokenMint,
        rng: &mut StdRng,
    ) -> Token {
        wallet.request_token(rng, mint, Timestamp::EPOCH).unwrap();
        wallet.take_token().unwrap()
    }

    #[test]
    fn valid_upload_accepted() {
        let (mut mint, mut wallet, mut rng) = setup();
        let mut svc = IngestService::new();
        let t = fresh_token(&mut wallet, &mut mint, &mut rng);
        assert!(svc.ingest(&upload(t, 1, 5, 0), &mut mint, Timestamp::EPOCH).is_ok());
        assert_eq!(svc.stats().accepted, 1);
        assert_eq!(svc.store().len(), 1);
    }

    #[test]
    fn forged_token_rejected() {
        let (mut mint, _, _) = setup();
        let mut svc = IngestService::new();
        let forged = Token { message: [9u8; 32], signature: BigUint::from_u64(42) };
        let err = svc.ingest(&upload(forged, 1, 5, 0), &mut mint, Timestamp::EPOCH);
        assert_eq!(err, Err(RejectReason::BadToken));
        assert_eq!(svc.stats().bad_token, 1);
        assert!(svc.store().is_empty());
    }

    #[test]
    fn double_spend_rejected() {
        let (mut mint, mut wallet, mut rng) = setup();
        let mut svc = IngestService::new();
        let t = fresh_token(&mut wallet, &mut mint, &mut rng);
        assert!(svc.ingest(&upload(t.clone(), 1, 5, 0), &mut mint, Timestamp::EPOCH).is_ok());
        let err = svc.ingest(&upload(t, 2, 5, 100), &mut mint, Timestamp::EPOCH);
        assert_eq!(err, Err(RejectReason::DoubleSpend));
        assert_eq!(svc.stats().double_spend, 1);
    }

    #[test]
    fn entity_mismatch_rejected() {
        let (mut mint, mut wallet, mut rng) = setup();
        let mut svc = IngestService::new();
        let t1 = fresh_token(&mut wallet, &mut mint, &mut rng);
        let t2 = fresh_token(&mut wallet, &mut mint, &mut rng);
        assert!(svc.ingest(&upload(t1, 1, 5, 0), &mut mint, Timestamp::EPOCH).is_ok());
        let err = svc.ingest(&upload(t2, 1, 6, 100), &mut mint, Timestamp::EPOCH);
        assert_eq!(err, Err(RejectReason::EntityMismatch));
        assert_eq!(svc.stats().entity_mismatch, 1);
    }

    #[test]
    fn out_of_order_record_rejected() {
        let (mut mint, mut wallet, mut rng) = setup();
        let mut svc = IngestService::new();
        let t1 = fresh_token(&mut wallet, &mut mint, &mut rng);
        let t2 = fresh_token(&mut wallet, &mut mint, &mut rng);
        assert!(svc.ingest(&upload(t1, 1, 5, 1_000), &mut mint, Timestamp::EPOCH).is_ok());
        let err = svc.ingest(&upload(t2, 1, 5, 10), &mut mint, Timestamp::EPOCH);
        assert_eq!(err, Err(RejectReason::BadRecord));
        assert_eq!(svc.stats().bad_record, 1);
        assert_eq!(svc.stats().rejected(), 1);
    }

    #[test]
    fn batch_ingest_counts_accepted() {
        let (mut mint, mut wallet, mut rng) = setup();
        let mut svc = IngestService::new();
        let batch: Vec<UploadRequest> = (0..5)
            .map(|i| {
                let t = fresh_token(&mut wallet, &mut mint, &mut rng);
                upload(t, i as u8, i, i as i64 * 10)
            })
            .collect();
        assert_eq!(svc.ingest_batch(&batch, &mut mint, Timestamp::EPOCH), 5);
    }

    #[test]
    fn concurrent_ingest_matches_serial() {
        let (mut mint, mut wallet, mut rng) = setup();
        let uploads: Vec<UploadRequest> = (0..40)
            .map(|i| {
                let t = fresh_token(&mut wallet, &mut mint, &mut rng);
                upload(t, i as u8, i % 7, i as i64 * 50)
            })
            .collect();
        let (svc, _mint) = concurrent_ingest(uploads, mint, Timestamp::EPOCH);
        assert_eq!(svc.stats().accepted, 40);
        assert_eq!(svc.store().total_interactions(), 40);
    }
}

//! The fraud detector (§4.3).
//!
//! Verifies "whether the user's engagement with that entity reflects that
//! of a typical user": each stored history is scored against its
//! category's [`CategoryProfile`] on four axes —
//!
//! * **gap** — calls/visits "appropriately spaced apart": a minimum gap
//!   far below the typical p05 (back-to-back call spam) scores high;
//! * **duration** — "of reasonable duration": second-long hang-up calls or
//!   8-hour daily "visits" sit outside the typical duration band;
//! * **count** — interaction counts beyond the typical p99;
//! * **presence** — near-daily activity at one entity over a long span
//!   (the restaurant-employee signature).
//!
//! Histories scoring above a threshold are discarded. The paper is
//! explicit that this "will not completely eliminate fake recommendations"
//! — the experiments measure both the detection rate and what slips
//! through ("such an interaction history will have limited influence").

use crate::profile::{CategoryProfile, HistoryStats};
use crate::store::HistoryStore;
use orsp_types::{Category, EntityId, RecordId};
use serde::Serialize;
use std::collections::HashMap;

/// Verdict on one history.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FraudVerdict {
    /// Combined anomaly score in `[0, 1]`.
    pub score: f64,
    /// Per-axis contributions, for explainability: (axis, score).
    pub reasons: Vec<(&'static str, f64)>,
}

impl FraudVerdict {
    /// Whether the history should be discarded at a given threshold.
    pub fn is_fraudulent(&self, threshold: f64) -> bool {
        self.score >= threshold
    }
}

/// The detector.
#[derive(Debug, Clone)]
pub struct FraudDetector {
    /// Typical-user profiles per category.
    pub profiles: HashMap<Category, CategoryProfile>,
    /// Discard threshold on the combined score.
    pub threshold: f64,
}

impl FraudDetector {
    /// A detector from profiles with the default threshold.
    pub fn new(profiles: HashMap<Category, CategoryProfile>) -> Self {
        FraudDetector { profiles, threshold: 0.75 }
    }

    /// Score one history against its category profile. Histories in
    /// categories without a profile, or with a single interaction, score
    /// 0 — the paper: "it is hard to evaluate whether the interactions
    /// ... are fake if the number of interactions is small, [but] such an
    /// interaction history will have limited influence".
    pub fn score(&self, category: Category, stats: &HistoryStats) -> FraudVerdict {
        let Some(profile) = self.profiles.get(&category) else {
            return FraudVerdict { score: 0.0, reasons: Vec::new() };
        };
        if stats.count < 2.0 {
            return FraudVerdict { score: 0.0, reasons: Vec::new() };
        }

        let mut reasons = Vec::new();
        // Gap: only *too small* is suspicious (slow users are just rare).
        let gap_score = if stats.min_gap_days < profile.min_gap_days.p05 {
            profile.min_gap_days.outlier_score(stats.min_gap_days)
        } else {
            0.0
        };
        reasons.push(("gap", gap_score));

        // Duration: both directions are suspicious (hang-up calls, all-day
        // presence).
        let duration_score = profile.duration_min.outlier_score(stats.median_duration_min);
        reasons.push(("duration", duration_score));

        // Count: only *too many*.
        let count_score = if stats.count > profile.count.p95 {
            profile.count.outlier_score(stats.count)
        } else {
            0.0
        };
        reasons.push(("count", count_score));

        // Presence: near-daily activity far beyond the typical fraction.
        let presence_score = if stats.active_day_fraction > profile.active_day_fraction.p95 {
            profile.active_day_fraction.outlier_score(stats.active_day_fraction)
        } else {
            0.0
        };
        reasons.push(("presence", presence_score));

        // Combine: the two strongest axes, averaged — one wild axis alone
        // can be bad luck; two independent anomalies rarely are.
        let mut scores: Vec<f64> = reasons.iter().map(|(_, s)| *s).collect();
        scores.sort_by(|a, b| b.total_cmp(a));
        let score = ((scores[0] + scores[1]) / 2.0).min(1.0);
        FraudVerdict { score, reasons }
    }

    /// Sweep the store: return the record ids whose histories exceed the
    /// threshold.
    pub fn sweep(
        &self,
        store: &HistoryStore,
        entity_categories: &HashMap<EntityId, Category>,
    ) -> Vec<RecordId> {
        let mut flagged = Vec::new();
        for (id, stored) in store.iter() {
            let Some(&cat) = entity_categories.get(&stored.entity) else { continue };
            let stats = HistoryStats::of(&stored.history);
            if self.score(cat, &stats).is_fraudulent(self.threshold) {
                flagged.push(*id);
            }
        }
        flagged.sort();
        flagged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Quantiles;
    use orsp_types::Trade;

    fn electrician_profile() -> CategoryProfile {
        // Typical electrician histories: gaps of 30–400 days, calls of
        // 3–15 minutes, 2–6 interactions, sparse active days.
        CategoryProfile {
            min_gap_days: Quantiles { p01: 12.0, p05: 25.0, p50: 90.0, p95: 400.0, p99: 600.0 },
            duration_min: Quantiles { p01: 1.5, p05: 3.0, p50: 7.0, p95: 15.0, p99: 25.0 },
            count: Quantiles { p01: 2.0, p05: 2.0, p50: 3.0, p95: 6.0, p99: 9.0 },
            active_day_fraction: Quantiles {
                p01: 0.001,
                p05: 0.004,
                p50: 0.02,
                p95: 0.08,
                p99: 0.15,
            },
            support: 100,
        }
    }

    fn detector() -> FraudDetector {
        let mut profiles = HashMap::new();
        profiles.insert(Category::ServiceProvider(Trade::Electrician), electrician_profile());
        FraudDetector::new(profiles)
    }

    #[test]
    fn typical_history_scores_low() {
        let d = detector();
        let stats = HistoryStats {
            min_gap_days: 60.0,
            median_duration_min: 8.0,
            count: 3.0,
            active_day_fraction: 0.02,
        };
        let v = d.score(Category::ServiceProvider(Trade::Electrician), &stats);
        assert!(v.score < 0.1, "score {}", v.score);
        assert!(!v.is_fraudulent(0.75));
    }

    #[test]
    fn call_spam_scores_high() {
        // Back-to-back hang-up calls: minute-scale gaps, second-scale
        // durations, large count.
        let d = detector();
        let stats = HistoryStats {
            min_gap_days: 0.002,
            median_duration_min: 0.1,
            count: 25.0,
            active_day_fraction: 0.9,
        };
        let v = d.score(Category::ServiceProvider(Trade::Electrician), &stats);
        assert!(v.score > 0.9, "score {}", v.score);
        assert!(v.is_fraudulent(0.75));
        let gap = v.reasons.iter().find(|(n, _)| *n == "gap").unwrap().1;
        assert!(gap > 0.9);
    }

    #[test]
    fn unknown_category_scores_zero() {
        let d = detector();
        let stats = HistoryStats {
            min_gap_days: 0.001,
            median_duration_min: 0.1,
            count: 100.0,
            active_day_fraction: 1.0,
        };
        let v = d.score(Category::Restaurant(orsp_types::Cuisine::Thai), &stats);
        assert_eq!(v.score, 0.0);
    }

    #[test]
    fn single_interaction_scores_zero() {
        let d = detector();
        let stats = HistoryStats {
            min_gap_days: f64::MAX,
            median_duration_min: 0.05,
            count: 1.0,
            active_day_fraction: 1.0,
        };
        let v = d.score(Category::ServiceProvider(Trade::Electrician), &stats);
        assert_eq!(v.score, 0.0, "one interaction has limited influence anyway");
    }

    #[test]
    fn one_mild_anomaly_is_not_fraud() {
        // A slightly unusual duration alone must not trip the filter —
        // combining two axes protects honest outliers.
        let d = detector();
        let stats = HistoryStats {
            min_gap_days: 60.0,
            median_duration_min: 20.0, // above p95 but below p99
            count: 3.0,
            active_day_fraction: 0.02,
        };
        let v = d.score(Category::ServiceProvider(Trade::Electrician), &stats);
        assert!(!v.is_fraudulent(0.75), "score {}", v.score);
    }

    #[test]
    fn sweep_flags_only_bad_records() {
        use orsp_types::{Interaction, InteractionKind, SimDuration, Timestamp};
        let mut store = HistoryStore::new();
        let entity = EntityId::new(1);
        let mut cats = HashMap::new();
        cats.insert(entity, Category::ServiceProvider(Trade::Electrician));

        // Honest record: three calls, months apart, minutes long.
        for (i, day) in [0i64, 90, 200].iter().enumerate() {
            store
                .append(
                    RecordId::from_bytes([1; 32]),
                    entity,
                    Interaction::solo(
                        InteractionKind::PhoneCall,
                        Timestamp::from_seconds(day * 86_400 + i as i64),
                        SimDuration::minutes(8),
                        0.0,
                    ),
                )
                .unwrap();
        }
        // Spam record: 20 calls, 2 minutes apart, 5 seconds long.
        for i in 0..20i64 {
            store
                .append(
                    RecordId::from_bytes([2; 32]),
                    entity,
                    Interaction::solo(
                        InteractionKind::PhoneCall,
                        Timestamp::from_seconds(i * 120),
                        SimDuration::seconds(5),
                        0.0,
                    ),
                )
                .unwrap();
        }
        let flagged = detector().sweep(&store, &cats);
        assert_eq!(flagged, vec![RecordId::from_bytes([2; 32])]);
    }
}

//! The anonymous history store.
//!
//! Each record is one (user, entity) interaction history keyed by the
//! opaque [`RecordId`] the client derived as `hash(Ru, e)`. The store
//! knows which *entity* each history concerns (needed for aggregation and
//! profiles) but has no idea which user — and cannot find out, because the
//! id derivation is one-way and keyed by a secret it never sees.
//!
//! API shape enforces §4.2's asymmetry: clients can *append*; nothing can
//! *read back* an individual history through the client-facing surface.
//! (The RSP's own analytics — profiles, fraud, aggregates — iterate
//! internally; that is the design's trust model: the server is trusted
//! not to learn user identity, which the ids guarantee, not to forgo
//! statistics.)

use orsp_types::{EntityId, Interaction, InteractionHistory, OrspError, RecordId};
use std::collections::hash_map::Entry;
use std::collections::HashMap;

/// One stored anonymous history.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredHistory {
    /// The entity this history concerns.
    pub entity: EntityId,
    /// The interaction sequence.
    pub history: InteractionHistory,
}

/// The server's record store.
#[derive(Debug, Default)]
pub struct HistoryStore {
    records: HashMap<RecordId, StoredHistory>,
    /// Entity → record ids, maintained on every append/delete so
    /// per-entity lookups (aggregates, search scoring) cost O(matches)
    /// instead of a full-store scan.
    by_entity: HashMap<EntityId, Vec<RecordId>>,
}

impl HistoryStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an interaction to the history with id `record_id`,
    /// initializing the history on first sight ("if the server is not
    /// already storing a history with this identifier, it initializes a
    /// new interaction history for entity e").
    ///
    /// Rejects appends that try to re-bind an existing record to a
    /// different entity — a corruption attempt (§4.2's Ru-guessing
    /// attacker).
    pub fn append(
        &mut self,
        record_id: RecordId,
        entity: EntityId,
        interaction: Interaction,
    ) -> orsp_types::Result<()> {
        let stored = match self.records.entry(record_id) {
            Entry::Occupied(e) => e.into_mut(),
            Entry::Vacant(v) => {
                self.by_entity.entry(entity).or_default().push(record_id);
                v.insert(StoredHistory { entity, history: InteractionHistory::new() })
            }
        };
        if stored.entity != entity {
            return Err(OrspError::UploadRejected(format!(
                "record {} is bound to {} but upload names {}",
                record_id.short_hex(),
                stored.entity,
                entity
            )));
        }
        stored.history.push(interaction)
    }

    /// Number of stored histories.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total interactions across all histories.
    pub fn total_interactions(&self) -> usize {
        self.records.values().map(|s| s.history.len()).sum()
    }

    /// Server-internal iteration for analytics (profiles, fraud,
    /// aggregates). Not part of the client-facing API.
    pub fn iter(&self) -> impl Iterator<Item = (&RecordId, &StoredHistory)> {
        self.records.iter()
    }

    /// Look up one record. Server-internal (the replication promote-fold
    /// compares its absorbed copy against the one already serving) — no
    /// public RPC retrieves an individual record, by design.
    pub fn get(&self, id: &RecordId) -> Option<&StoredHistory> {
        self.records.get(id)
    }

    /// Server-internal: histories for one entity, via the entity index.
    pub fn histories_for_entity(
        &self,
        entity: EntityId,
    ) -> impl Iterator<Item = (&RecordId, &StoredHistory)> {
        self.by_entity.get(&entity).into_iter().flatten().map(move |rid| {
            (rid, self.records.get(rid).expect("entity index out of sync"))
        })
    }

    /// Move an already-built history into the store. Server-side
    /// plumbing only (shard redistribution, cluster merges, reshard) —
    /// clients append interaction by interaction through [`Self::append`],
    /// which enforces the entity-binding check. Each record id must be
    /// inserted at most once (the shard/backend partitions guarantee it).
    pub fn insert_history(&mut self, record_id: RecordId, stored: StoredHistory) {
        self.by_entity.entry(stored.entity).or_default().push(record_id);
        let previous = self.records.insert(record_id, stored);
        debug_assert!(previous.is_none(), "insert_history over an existing record");
    }

    /// Consume the store, yielding every history (shard redistribution,
    /// cluster merges, reshard).
    pub fn into_histories(self) -> impl Iterator<Item = (RecordId, StoredHistory)> {
        self.records.into_iter()
    }

    /// Delete one record at its owner's request.
    ///
    /// This is the right-to-be-forgotten the `hash(Ru, e)` design enables
    /// for free: the 256-bit record id is deriveable only by the device
    /// holding `Ru`, so presenting it *is* the proof of ownership — the
    /// server honours the deletion without ever learning who asked.
    /// Returns true iff the record existed.
    pub fn delete_record(&mut self, id: &RecordId) -> bool {
        match self.records.remove(id) {
            Some(stored) => {
                if let Some(ids) = self.by_entity.get_mut(&stored.entity) {
                    ids.retain(|r| r != id);
                    if ids.is_empty() {
                        self.by_entity.remove(&stored.entity);
                    }
                }
                true
            }
            None => false,
        }
    }

    /// Remove a set of records (the fraud filter's discard action).
    /// Returns how many were present and removed.
    pub fn remove_records(&mut self, ids: &[RecordId]) -> usize {
        let mut removed = 0;
        for id in ids {
            if self.delete_record(id) {
                removed += 1;
            }
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orsp_types::{InteractionKind, SimDuration, Timestamp};

    fn rid(n: u8) -> RecordId {
        RecordId::from_bytes([n; 32])
    }

    fn visit(t: i64) -> Interaction {
        Interaction::solo(
            InteractionKind::Visit,
            Timestamp::from_seconds(t),
            SimDuration::minutes(30),
            200.0,
        )
    }

    #[test]
    fn first_append_initializes_history() {
        let mut s = HistoryStore::new();
        s.append(rid(1), EntityId::new(5), visit(0)).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.total_interactions(), 1);
    }

    #[test]
    fn appends_accumulate_in_order() {
        let mut s = HistoryStore::new();
        s.append(rid(1), EntityId::new(5), visit(0)).unwrap();
        s.append(rid(1), EntityId::new(5), visit(1_000)).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.total_interactions(), 2);
        assert!(s.append(rid(1), EntityId::new(5), visit(500)).is_err(), "out of order");
    }

    #[test]
    fn entity_rebinding_rejected() {
        let mut s = HistoryStore::new();
        s.append(rid(1), EntityId::new(5), visit(0)).unwrap();
        let err = s.append(rid(1), EntityId::new(6), visit(1_000));
        assert!(matches!(err, Err(OrspError::UploadRejected(_))));
        assert_eq!(s.total_interactions(), 1);
    }

    #[test]
    fn histories_for_entity_filters() {
        let mut s = HistoryStore::new();
        s.append(rid(1), EntityId::new(5), visit(0)).unwrap();
        s.append(rid(2), EntityId::new(5), visit(0)).unwrap();
        s.append(rid(3), EntityId::new(9), visit(0)).unwrap();
        assert_eq!(s.histories_for_entity(EntityId::new(5)).count(), 2);
        assert_eq!(s.histories_for_entity(EntityId::new(9)).count(), 1);
        assert_eq!(s.histories_for_entity(EntityId::new(7)).count(), 0);
    }

    #[test]
    fn remove_records_discards() {
        let mut s = HistoryStore::new();
        s.append(rid(1), EntityId::new(5), visit(0)).unwrap();
        s.append(rid(2), EntityId::new(5), visit(0)).unwrap();
        assert_eq!(s.remove_records(&[rid(1), rid(9)]), 1);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn owner_initiated_deletion() {
        let mut s = HistoryStore::new();
        s.append(rid(1), EntityId::new(5), visit(0)).unwrap();
        s.append(rid(2), EntityId::new(5), visit(0)).unwrap();
        // Only the holder of Ru can derive rid(1); presenting it deletes
        // exactly that history.
        assert!(s.delete_record(&rid(1)));
        assert!(!s.delete_record(&rid(1)), "second delete is a no-op");
        assert_eq!(s.len(), 1);
        // A guessing attacker (wrong id) deletes nothing.
        assert!(!s.delete_record(&rid(99)));
    }

    #[test]
    fn distinct_records_stay_distinct() {
        // Two users, same entity: two record ids, two histories.
        let mut s = HistoryStore::new();
        s.append(rid(1), EntityId::new(5), visit(0)).unwrap();
        s.append(rid(2), EntityId::new(5), visit(0)).unwrap();
        assert_eq!(s.len(), 2);
    }
}

//! The typical-user profile (§4.3).
//!
//! *"since the history of interactions for every (user, entity) pair is
//! stored on an RSP's servers, it can merge these individual histories to
//! generate a profile of the typical user. For example, an RSP ... can use
//! its knowledge of the observed distribution of gaps between interactions
//! with the same provider to detect fraud when a user's frequency of
//! interaction is significantly greater than is typical."*
//!
//! A [`CategoryProfile`] holds empirical quantiles of three per-history
//! statistics: the minimum gap between interactions, the median
//! interaction duration, and the interaction count. Profiles are built per
//! entity category because cadence differs wildly (a dentist twice a year,
//! a restaurant weekly).

use crate::store::HistoryStore;
use orsp_types::{Category, EntityId, InteractionHistory};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Empirical quantiles of one statistic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Quantiles {
    /// 1st percentile.
    pub p01: f64,
    /// 5th percentile.
    pub p05: f64,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Quantiles {
    /// Compute from samples; `None` if fewer than 5 samples (too little
    /// data to call anything atypical).
    pub fn from_samples(mut samples: Vec<f64>) -> Option<Quantiles> {
        if samples.len() < 5 {
            return None;
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let at = |q: f64| {
            let idx = (q * (samples.len() - 1) as f64).round() as usize;
            samples[idx]
        };
        Some(Quantiles { p01: at(0.01), p05: at(0.05), p50: at(0.50), p95: at(0.95), p99: at(0.99) })
    }

    /// Where a value sits relative to the bulk: 0 inside `[p05, p95]`,
    /// growing toward 1 as it passes p01/p99.
    pub fn outlier_score(&self, value: f64) -> f64 {
        if value >= self.p05 && value <= self.p95 {
            0.0
        } else if value < self.p05 {
            let span = (self.p05 - self.p01).max(1e-9);
            ((self.p05 - value) / span).min(1.0)
        } else {
            let span = (self.p99 - self.p95).max(1e-9);
            ((value - self.p95) / span).min(1.0)
        }
    }
}

/// Per-history summary statistics the profile is built over.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistoryStats {
    /// Minimum gap between consecutive interactions, in days (`f64::MAX`
    /// when fewer than 2 interactions).
    pub min_gap_days: f64,
    /// Median interaction duration, minutes.
    pub median_duration_min: f64,
    /// Number of interactions.
    pub count: f64,
    /// Fraction of days in the history span with at least one interaction
    /// (1.0 for single-interaction histories). Near-daily presence is the
    /// employee signature.
    pub active_day_fraction: f64,
}

impl HistoryStats {
    /// Compute the summary for one history.
    pub fn of(history: &InteractionHistory) -> HistoryStats {
        let gaps = history.gaps();
        let min_gap_days = gaps
            .iter()
            .map(|g| g.as_days_f64())
            .fold(f64::MAX, f64::min);
        let mut durations: Vec<f64> =
            history.iter().map(|r| r.duration.as_minutes_f64()).collect();
        durations.sort_by(|a, b| a.total_cmp(b));
        let median_duration_min =
            durations.get(durations.len() / 2).copied().unwrap_or(0.0);
        let span_days = history.span().as_days_f64().max(1.0);
        let active_days: std::collections::HashSet<i64> =
            history.iter().map(|r| r.start.day_index()).collect();
        HistoryStats {
            min_gap_days,
            median_duration_min,
            count: history.len() as f64,
            active_day_fraction: (active_days.len() as f64 / span_days).min(1.0),
        }
    }
}

/// The typical-user profile for one category.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CategoryProfile {
    /// Quantiles of per-history minimum gaps (days).
    pub min_gap_days: Quantiles,
    /// Quantiles of per-history median durations (minutes).
    pub duration_min: Quantiles,
    /// Quantiles of per-history interaction counts.
    pub count: Quantiles,
    /// Quantiles of active-day fractions.
    pub active_day_fraction: Quantiles,
    /// Histories the profile was built from.
    pub support: usize,
}

/// Builds typical-user profiles from the store.
pub struct ProfileBuilder<'a> {
    /// Category of each entity (the server's own listing data).
    pub entity_categories: &'a HashMap<EntityId, Category>,
}

impl<'a> ProfileBuilder<'a> {
    /// Build profiles for every category with enough support.
    pub fn build(&self, store: &HistoryStore) -> HashMap<Category, CategoryProfile> {
        let mut samples: HashMap<Category, Vec<HistoryStats>> = HashMap::new();
        for (_, stored) in store.iter() {
            let Some(&cat) = self.entity_categories.get(&stored.entity) else { continue };
            // Single-interaction histories say nothing about cadence.
            if stored.history.len() < 2 {
                continue;
            }
            samples.entry(cat).or_default().push(HistoryStats::of(&stored.history));
        }
        samples
            .into_iter()
            .filter_map(|(cat, stats)| {
                let support = stats.len();
                let q = |f: fn(&HistoryStats) -> f64| {
                    Quantiles::from_samples(stats.iter().map(f).collect())
                };
                Some((
                    cat,
                    CategoryProfile {
                        min_gap_days: q(|s| s.min_gap_days)?,
                        duration_min: q(|s| s.median_duration_min)?,
                        count: q(|s| s.count)?,
                        active_day_fraction: q(|s| s.active_day_fraction)?,
                        support,
                    },
                ))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orsp_types::{Interaction, InteractionKind, SimDuration, Timestamp};

    fn history(starts_days: &[i64], dur_min: i64) -> InteractionHistory {
        InteractionHistory::from_records(
            starts_days
                .iter()
                .map(|&d| {
                    Interaction::solo(
                        InteractionKind::Visit,
                        Timestamp::from_seconds(d * 86_400),
                        SimDuration::minutes(dur_min),
                        100.0,
                    )
                })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn quantiles_of_uniform_samples() {
        let q = Quantiles::from_samples((0..=100).map(|i| i as f64).collect()).unwrap();
        assert_eq!(q.p50, 50.0);
        assert_eq!(q.p05, 5.0);
        assert_eq!(q.p95, 95.0);
    }

    #[test]
    fn too_few_samples_yield_none() {
        assert!(Quantiles::from_samples(vec![1.0, 2.0]).is_none());
        assert!(Quantiles::from_samples(vec![]).is_none());
    }

    #[test]
    fn outlier_score_zero_in_bulk() {
        let q = Quantiles::from_samples((0..=100).map(|i| i as f64).collect()).unwrap();
        assert_eq!(q.outlier_score(50.0), 0.0);
        assert_eq!(q.outlier_score(5.0), 0.0);
        assert_eq!(q.outlier_score(95.0), 0.0);
        assert!(q.outlier_score(0.5) > 0.5, "below p01-ish");
        assert!(q.outlier_score(100.0) >= 1.0);
        assert!(q.outlier_score(-50.0) >= 1.0);
    }

    #[test]
    fn history_stats_basics() {
        let h = history(&[0, 30, 60, 90], 45);
        let s = HistoryStats::of(&h);
        assert!((s.min_gap_days - 30.0).abs() < 0.01);
        assert!((s.median_duration_min - 45.0).abs() < 0.01);
        assert_eq!(s.count, 4.0);
        assert!(s.active_day_fraction < 0.1);
    }

    #[test]
    fn daily_presence_has_high_active_fraction() {
        let days: Vec<i64> = (0..30).collect();
        let s = HistoryStats::of(&history(&days, 480));
        assert!(s.active_day_fraction > 0.9, "fraction {}", s.active_day_fraction);
        assert!((s.min_gap_days - 1.0).abs() < 0.01);
    }

    #[test]
    fn profile_built_per_category() {
        let mut store = HistoryStore::new();
        let mut cats = HashMap::new();
        // 10 normal dentist-style histories on entity 1.
        cats.insert(EntityId::new(1), Category::Doctor(orsp_types::Specialty::Dentist));
        for i in 0..10u8 {
            let h = history(&[i as i64, 180 + i as i64, 360 + i as i64], 45);
            for r in h.iter() {
                store
                    .append(orsp_types::RecordId::from_bytes([i; 32]), EntityId::new(1), *r)
                    .unwrap();
            }
        }
        let builder = ProfileBuilder { entity_categories: &cats };
        let profiles = builder.build(&store);
        let p = profiles
            .get(&Category::Doctor(orsp_types::Specialty::Dentist))
            .expect("dentist profile");
        assert_eq!(p.support, 10);
        assert!(p.min_gap_days.p50 > 100.0, "typical dentist gap is months");
    }

    #[test]
    fn single_interaction_histories_excluded() {
        let mut store = HistoryStore::new();
        let mut cats = HashMap::new();
        cats.insert(EntityId::new(1), Category::Restaurant(orsp_types::Cuisine::Thai));
        for i in 0..10u8 {
            store
                .append(
                    orsp_types::RecordId::from_bytes([i; 32]),
                    EntityId::new(1),
                    Interaction::solo(
                        InteractionKind::Visit,
                        Timestamp::EPOCH,
                        SimDuration::minutes(30),
                        10.0,
                    ),
                )
                .unwrap();
        }
        let builder = ProfileBuilder { entity_categories: &cats };
        assert!(builder.build(&store).is_empty(), "no multi-interaction support");
    }
}

//! The privacy-preserving egress: per-entity aggregates.
//!
//! §4.2: *"If an RSP uses histograms of inferred ratings or visualizations
//! of aggregate user interactions to export its inferences to users, no
//! information about any individual user is revealed."*
//!
//! [`EntityAggregate`] carries exactly the series the paper's Figure 3
//! visualizations need — the visits-per-user histogram (3a) and the
//! (visit count, average distance) points (3b) — plus summary statistics
//! the search layer shows beside explicit reviews.

use crate::store::{HistoryStore, StoredHistory};
use orsp_types::{EntityId, InteractionKind, RecordId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Aggregate interaction statistics for one entity.
///
/// "Per user" here means per anonymous history: the server cannot count
/// users, only `hash(Ru, e)` records — which is one per (user, entity)
/// pair, exactly the right unit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EntityAggregate {
    /// The entity.
    pub entity: EntityId,
    /// Number of anonymous histories (≈ distinct users who interacted).
    pub histories: usize,
    /// Total interactions across histories.
    pub interactions: usize,
    /// Histogram of interactions-per-history: index = count (capped),
    /// value = how many histories. Figure 3(a)'s series.
    pub visits_per_user: Vec<usize>,
    /// (interaction count, mean distance travelled) per history —
    /// Figure 3(b)'s scatter, with no user identity attached.
    pub effort_points: Vec<(usize, f64)>,
    /// Mean dwell minutes across visit interactions.
    pub mean_dwell_min: f64,
    /// Fraction of histories with 2+ interactions (repeat rate).
    pub repeat_fraction: f64,
}

/// Cap for the visits-per-user histogram.
const HISTOGRAM_CAP: usize = 20;

/// The mergeable form of an [`EntityAggregate`]: every accumulator is
/// either an exact integer sum or an order-canonicalized list, so partial
/// aggregates computed over disjoint record subsets (per ingest shard, or
/// per backend in a multi-node deployment) merge into *bit-identical*
/// results no matter how the records were partitioned.
///
/// The float fields of [`EntityAggregate`] are derived only at
/// [`AggregateParts::finalize`]: `mean_dwell_min` from an integer
/// second-sum (addition over `i64` is associative, unlike `f64`), and
/// `repeat_fraction` from two integer counts. `effort_points` entries are
/// per-history values — independent of every other history — and the
/// finalize step sorts them, so concatenation order cannot show through.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggregateParts {
    /// The entity.
    pub entity: EntityId,
    /// Number of anonymous histories.
    pub histories: u64,
    /// Total interactions across histories.
    pub interactions: u64,
    /// Histogram of interactions-per-history (index = capped count).
    pub visits_per_user: Vec<u64>,
    /// Histories with 2+ interactions.
    pub repeats: u64,
    /// Exact sum of visit dwell time, in seconds.
    pub dwell_secs: i64,
    /// Number of visit interactions behind `dwell_secs`.
    pub dwell_n: u64,
    /// (interaction count, mean distance) per history, unsorted until
    /// finalize.
    pub effort_points: Vec<(u64, f64)>,
}

impl AggregateParts {
    /// Empty parts for one entity.
    pub fn empty(entity: EntityId) -> Self {
        AggregateParts {
            entity,
            histories: 0,
            interactions: 0,
            visits_per_user: vec![0; HISTOGRAM_CAP + 1],
            repeats: 0,
            dwell_secs: 0,
            dwell_n: 0,
            effort_points: Vec::new(),
        }
    }

    /// Fold one stored history into the accumulators.
    pub fn add(&mut self, stored: &StoredHistory) {
        let n = stored.history.len();
        self.histories += 1;
        self.interactions += n as u64;
        self.visits_per_user[n.min(HISTOGRAM_CAP)] += 1;
        if n >= 2 {
            self.repeats += 1;
        }
        let mean_dist = stored.history.mean_distance_m().unwrap_or(0.0);
        self.effort_points.push((n as u64, mean_dist));
        for r in stored.history.iter() {
            if r.kind == InteractionKind::Visit {
                self.dwell_secs += r.duration.as_seconds();
                self.dwell_n += 1;
            }
        }
    }

    /// Merge another partial aggregate for the same entity. Integer sums
    /// and list concatenation only — commutative and associative, so any
    /// merge tree over any partition of the records finalizes to the same
    /// bytes.
    pub fn merge(&mut self, other: &AggregateParts) {
        debug_assert_eq!(self.entity, other.entity, "merging parts for different entities");
        self.histories += other.histories;
        self.interactions += other.interactions;
        if other.visits_per_user.len() > self.visits_per_user.len() {
            self.visits_per_user.resize(other.visits_per_user.len(), 0);
        }
        for (slot, v) in self.visits_per_user.iter_mut().zip(&other.visits_per_user) {
            *slot += v;
        }
        self.repeats += other.repeats;
        self.dwell_secs += other.dwell_secs;
        self.dwell_n += other.dwell_n;
        self.effort_points.extend(other.effort_points.iter().copied());
    }

    /// Derive the published aggregate: floats computed once from the
    /// exact integer accumulators, effort points canonically sorted.
    pub fn finalize(&self) -> EntityAggregate {
        let mean_dwell_min = if self.dwell_n == 0 {
            0.0
        } else {
            (self.dwell_secs as f64 / 60.0) / self.dwell_n as f64
        };
        let repeat_fraction = if self.histories == 0 {
            0.0
        } else {
            self.repeats as f64 / self.histories as f64
        };
        let mut effort_points: Vec<(usize, f64)> =
            self.effort_points.iter().map(|&(n, d)| (n as usize, d)).collect();
        effort_points.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
        EntityAggregate {
            entity: self.entity,
            histories: self.histories as usize,
            interactions: self.interactions as usize,
            visits_per_user: self.visits_per_user.iter().map(|&v| v as usize).collect(),
            effort_points,
            mean_dwell_min,
            repeat_fraction,
        }
    }
}

/// Default k-anonymity floor: aggregates for entities with fewer
/// anonymous histories than this are suppressed. The paper's claim that
/// histograms reveal "no information about any individual user" is only
/// true above a support floor — a histogram over one history *is* that
/// user's visit pattern.
pub const MIN_AGGREGATE_SUPPORT: usize = 5;

/// Builds aggregates from the store.
pub struct AggregatePublisher;

impl AggregatePublisher {
    /// Build the aggregate for one entity.
    pub fn for_entity(store: &HistoryStore, entity: EntityId) -> EntityAggregate {
        // Fix the iteration order before accumulating floats: the store's
        // map iterates in arbitrary order, and float addition is not
        // associative — mean_dwell_min must not depend on hash seeds.
        let mut histories: Vec<_> = store.histories_for_entity(entity).collect();
        histories.sort_by_key(|(rid, _)| **rid);
        Self::accumulate(entity, histories.into_iter().map(|(_, s)| s)).finalize()
    }

    /// Build the aggregate from histories gathered out of several shard
    /// stores. Sorting by record id here reproduces [`Self::for_entity`]'s
    /// accumulation order exactly, so the result is bit-identical to
    /// computing over the merged store.
    pub fn from_histories(
        entity: EntityId,
        histories: Vec<(RecordId, StoredHistory)>,
    ) -> EntityAggregate {
        Self::parts_from_histories(entity, histories).finalize()
    }

    /// The mergeable partial aggregate over a subset of an entity's
    /// histories — what a backend exports so a front-door proxy can merge
    /// per-backend partials into the exact whole-cluster aggregate.
    /// Accumulation runs in record-id order (the canonical order; the
    /// accumulators are order-free, so this is belt and braces).
    pub fn parts_from_histories(
        entity: EntityId,
        mut histories: Vec<(RecordId, StoredHistory)>,
    ) -> AggregateParts {
        histories.sort_by_key(|(rid, _)| *rid);
        Self::accumulate(entity, histories.iter().map(|(_, s)| s))
    }

    fn accumulate<'a>(
        entity: EntityId,
        sorted: impl Iterator<Item = &'a StoredHistory>,
    ) -> AggregateParts {
        let mut parts = AggregateParts::empty(entity);
        for stored in sorted {
            parts.add(stored);
        }
        parts
    }

    /// Build aggregates for every entity present in the store.
    pub fn all(store: &HistoryStore) -> HashMap<EntityId, EntityAggregate> {
        let mut entities: Vec<EntityId> = store.iter().map(|(_, s)| s.entity).collect();
        entities.sort_unstable();
        entities.dedup();
        entities.into_iter().map(|e| (e, Self::for_entity(store, e))).collect()
    }

    /// Like [`Self::all`], but suppress aggregates below a k-anonymity
    /// support floor — the publishable egress.
    pub fn all_published(
        store: &HistoryStore,
        min_support: usize,
    ) -> HashMap<EntityId, EntityAggregate> {
        Self::all(store)
            .into_iter()
            .filter(|(_, agg)| agg.histories >= min_support)
            .collect()
    }

    /// Average distance travelled for histories with a given interaction
    /// count — the Figure 3(b) line for one entity.
    pub fn mean_distance_by_count(agg: &EntityAggregate) -> Vec<(usize, f64)> {
        let mut by_count: HashMap<usize, (f64, usize)> = HashMap::new();
        for &(n, d) in &agg.effort_points {
            let e = by_count.entry(n).or_default();
            e.0 += d;
            e.1 += 1;
        }
        let mut out: Vec<(usize, f64)> =
            by_count.into_iter().map(|(n, (sum, c))| (n, sum / c as f64)).collect();
        out.sort_by_key(|&(n, _)| n);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orsp_types::{Interaction, RecordId, SimDuration, Timestamp};

    fn add_history(store: &mut HistoryStore, rid: u8, entity: u64, visits: usize, dist: f64) {
        for i in 0..visits {
            store
                .append(
                    RecordId::from_bytes([rid; 32]),
                    EntityId::new(entity),
                    Interaction::solo(
                        InteractionKind::Visit,
                        Timestamp::from_seconds(i as i64 * 10 * 86_400),
                        SimDuration::minutes(40),
                        dist,
                    ),
                )
                .unwrap();
        }
    }

    #[test]
    fn aggregate_counts_histories_and_interactions() {
        let mut store = HistoryStore::new();
        add_history(&mut store, 1, 5, 3, 100.0);
        add_history(&mut store, 2, 5, 1, 200.0);
        add_history(&mut store, 3, 9, 2, 50.0);
        let agg = AggregatePublisher::for_entity(&store, EntityId::new(5));
        assert_eq!(agg.histories, 2);
        assert_eq!(agg.interactions, 4);
        assert_eq!(agg.visits_per_user[3], 1);
        assert_eq!(agg.visits_per_user[1], 1);
        assert!((agg.repeat_fraction - 0.5).abs() < 1e-12);
        assert!((agg.mean_dwell_min - 40.0).abs() < 1e-9);
    }

    #[test]
    fn effort_points_have_no_identity() {
        let mut store = HistoryStore::new();
        add_history(&mut store, 1, 5, 2, 300.0);
        let agg = AggregatePublisher::for_entity(&store, EntityId::new(5));
        // The aggregate type simply has no user/record field to leak.
        assert_eq!(agg.effort_points, vec![(2, 300.0)]);
    }

    #[test]
    fn histogram_caps_extreme_counts() {
        let mut store = HistoryStore::new();
        add_history(&mut store, 1, 5, 50, 10.0);
        let agg = AggregatePublisher::for_entity(&store, EntityId::new(5));
        assert_eq!(agg.visits_per_user[HISTOGRAM_CAP], 1);
    }

    #[test]
    fn all_builds_every_entity() {
        let mut store = HistoryStore::new();
        add_history(&mut store, 1, 5, 2, 10.0);
        add_history(&mut store, 2, 9, 1, 10.0);
        let all = AggregatePublisher::all(&store);
        assert_eq!(all.len(), 2);
        assert!(all.contains_key(&EntityId::new(5)));
        assert!(all.contains_key(&EntityId::new(9)));
    }

    #[test]
    fn mean_distance_by_count_averages() {
        let mut store = HistoryStore::new();
        add_history(&mut store, 1, 5, 2, 100.0);
        add_history(&mut store, 2, 5, 2, 300.0);
        add_history(&mut store, 3, 5, 4, 500.0);
        let agg = AggregatePublisher::for_entity(&store, EntityId::new(5));
        let line = AggregatePublisher::mean_distance_by_count(&agg);
        assert_eq!(line, vec![(2, 200.0), (4, 500.0)]);
    }

    #[test]
    fn published_aggregates_respect_support_floor() {
        let mut store = HistoryStore::new();
        // Entity 5: 5 histories; entity 9: 1 history (one user's pattern).
        for i in 0..5u8 {
            add_history(&mut store, i, 5, 2, 100.0);
        }
        add_history(&mut store, 10, 9, 4, 100.0);
        let published = AggregatePublisher::all_published(&store, MIN_AGGREGATE_SUPPORT);
        assert!(published.contains_key(&EntityId::new(5)));
        assert!(
            !published.contains_key(&EntityId::new(9)),
            "a single-user histogram must never be published"
        );
        // The unfiltered internal view still has both (analytics need it).
        assert_eq!(AggregatePublisher::all(&store).len(), 2);
    }

    #[test]
    fn merged_parts_finalize_bit_identically_to_the_whole() {
        // Build one store, then partition its histories arbitrarily and
        // merge the partial parts: any partition must finalize to the
        // same bytes as computing over everything at once.
        let mut store = HistoryStore::new();
        for i in 0..9u8 {
            add_history(&mut store, i, 5, 1 + (i as usize % 4), 10.0 * i as f64 + 0.1);
        }
        let whole = AggregatePublisher::for_entity(&store, EntityId::new(5));
        for split in 1..8usize {
            let mut a = AggregateParts::empty(EntityId::new(5));
            let mut b = AggregateParts::empty(EntityId::new(5));
            let mut histories: Vec<_> = store
                .histories_for_entity(EntityId::new(5))
                .map(|(rid, s)| (*rid, s.clone()))
                .collect();
            // Deliberately scramble the order before partitioning.
            histories.reverse();
            for (i, (_, stored)) in histories.iter().enumerate() {
                if i % 8 < split {
                    a.add(stored);
                } else {
                    b.add(stored);
                }
            }
            a.merge(&b);
            assert_eq!(a.finalize(), whole, "split {split}");
            assert_eq!(a.finalize().mean_dwell_min.to_bits(), whole.mean_dwell_min.to_bits());
            assert_eq!(
                a.finalize().repeat_fraction.to_bits(),
                whole.repeat_fraction.to_bits()
            );
        }
    }

    #[test]
    fn empty_entity_aggregate() {
        let store = HistoryStore::new();
        let agg = AggregatePublisher::for_entity(&store, EntityId::new(1));
        assert_eq!(agg.histories, 0);
        assert_eq!(agg.repeat_fraction, 0.0);
        assert_eq!(agg.mean_dwell_min, 0.0);
    }
}

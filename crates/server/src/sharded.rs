//! A sharded, concurrent history store.
//!
//! The single-threaded [`crate::HistoryStore`] is fine for simulation;
//! a production ingest tier shards the keyspace and verifies token
//! signatures in parallel. The expensive step — RSA signature
//! verification — is pure and embarrassingly parallel; only the
//! double-spend ledger and the store appends need coordination, which the
//! shards provide with one lock each (record ids are uniformly
//! distributed, so contention is negligible).

use crate::store::{HistoryStore, StoredHistory};
use orsp_client::UploadRequest;
use orsp_crypto::blind::verify_unblinded;
use orsp_crypto::RsaPublicKey;
use orsp_types::RecordId;
use parking_lot::Mutex;
use std::collections::HashSet;

/// A history store split into independently locked shards.
pub struct ShardedStore {
    shards: Vec<Mutex<HistoryStore>>,
}

impl ShardedStore {
    /// A store with `n` shards (at least 1).
    pub fn new(n: usize) -> Self {
        let n = n.max(1);
        ShardedStore { shards: (0..n).map(|_| Mutex::new(HistoryStore::new())).collect() }
    }

    /// Which shard owns a record id (uniform, since ids are hash outputs).
    fn shard_of(&self, record_id: &RecordId) -> usize {
        let b = record_id.as_bytes();
        (u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]) as usize)
            % self.shards.len()
    }

    /// Append one interaction (locks only the owning shard).
    pub fn append(
        &self,
        record_id: RecordId,
        entity: orsp_types::EntityId,
        interaction: orsp_types::Interaction,
    ) -> orsp_types::Result<()> {
        self.shards[self.shard_of(&record_id)].lock().append(record_id, entity, interaction)
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total histories across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True iff no histories stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total interactions across shards.
    pub fn total_interactions(&self) -> usize {
        self.shards.iter().map(|s| s.lock().total_interactions()).sum()
    }

    /// Collapse into a single store for the analytics tier (profiles,
    /// fraud, aggregates run offline over a merged snapshot).
    pub fn into_merged(self) -> HistoryStore {
        let mut merged = HistoryStore::new();
        for shard in self.shards {
            let shard = shard.into_inner();
            for (rid, stored) in shard.iter() {
                let StoredHistory { entity, history } = stored;
                for r in history.iter() {
                    let _ = merged.append(*rid, *entity, *r);
                }
            }
        }
        merged
    }
}

/// Outcome of a parallel ingest run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ParallelStats {
    /// Uploads accepted.
    pub accepted: u64,
    /// Signature failures.
    pub bad_token: u64,
    /// Double-spends caught by the shared ledger.
    pub double_spend: u64,
    /// Store rejections (malformed / out of order / entity mismatch).
    pub store_rejected: u64,
}

/// Verify and ingest a batch of uploads across `threads` workers.
///
/// Phase 1 (parallel): RSA token verification — pure CPU.
/// Phase 2 (parallel): ledger insert (sharded set) + store append
/// (sharded map). The crossbeam scope guarantees all workers finish
/// before we return.
pub fn parallel_ingest(
    uploads: &[UploadRequest],
    mint_key: &RsaPublicKey,
    store: &ShardedStore,
    threads: usize,
) -> ParallelStats {
    let threads = threads.max(1);
    // Sharded spend ledger, same sharding discipline as the store.
    let ledger_shards: Vec<Mutex<HashSet<[u8; 32]>>> =
        (0..store.shard_count()).map(|_| Mutex::new(HashSet::new())).collect();

    let accepted = std::sync::atomic::AtomicU64::new(0);
    let bad_token = std::sync::atomic::AtomicU64::new(0);
    let double_spend = std::sync::atomic::AtomicU64::new(0);
    let store_rejected = std::sync::atomic::AtomicU64::new(0);
    use std::sync::atomic::Ordering::Relaxed;

    let chunk = uploads.len().div_ceil(threads).max(1);
    crossbeam::scope(|scope| {
        for slice in uploads.chunks(chunk) {
            let (ledger_shards, accepted, bad_token, double_spend, store_rejected) =
                (&ledger_shards, &accepted, &bad_token, &double_spend, &store_rejected);
            scope.spawn(move |_| {
                for upload in slice {
                    if !verify_unblinded(mint_key, &upload.token.message, &upload.token.signature)
                    {
                        bad_token.fetch_add(1, Relaxed);
                        continue;
                    }
                    let key = upload.token.ledger_key();
                    let shard = (key[0] as usize) % ledger_shards.len();
                    if !ledger_shards[shard].lock().insert(key) {
                        double_spend.fetch_add(1, Relaxed);
                        continue;
                    }
                    match store.append(upload.record_id, upload.entity, upload.interaction) {
                        Ok(()) => {
                            accepted.fetch_add(1, Relaxed);
                        }
                        Err(_) => {
                            store_rejected.fetch_add(1, Relaxed);
                        }
                    }
                }
            });
        }
    })
    .expect("ingest worker panicked");

    ParallelStats {
        accepted: accepted.into_inner(),
        bad_token: bad_token.into_inner(),
        double_spend: double_spend.into_inner(),
        store_rejected: store_rejected.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orsp_crypto::{TokenMint, TokenWallet};
    use orsp_types::{
        DeviceId, EntityId, Interaction, InteractionKind, SimDuration, Timestamp,
    };
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn uploads(n: usize, seed: u64) -> (Vec<UploadRequest>, RsaPublicKey) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut mint = TokenMint::new(&mut rng, 256, u32::MAX, SimDuration::DAY);
        let mut wallet = TokenWallet::new(DeviceId::new(1), mint.public_key().clone());
        let ups = (0..n)
            .map(|i| {
                wallet.request_token(&mut rng, &mut mint, Timestamp::EPOCH).unwrap();
                UploadRequest {
                    record_id: RecordId::from_bytes({
                        let mut b = [0u8; 32];
                        b[0] = (i % 251) as u8;
                        b[1] = (i / 251) as u8;
                        b
                    }),
                    entity: EntityId::new((i % 17) as u64),
                    interaction: Interaction::solo(
                        InteractionKind::Visit,
                        Timestamp::from_seconds(i as i64 * 1_000),
                        SimDuration::minutes(30),
                        50.0,
                    ),
                    token: wallet.take_token().unwrap(),
                    release_at: Timestamp::EPOCH,
                }
            })
            .collect();
        (ups, mint.public_key().clone())
    }

    #[test]
    fn parallel_ingest_accepts_valid_uploads() {
        let (ups, key) = uploads(60, 1);
        let store = ShardedStore::new(8);
        let stats = parallel_ingest(&ups, &key, &store, 4);
        assert_eq!(stats.accepted, 60);
        assert_eq!(stats.bad_token, 0);
        assert_eq!(stats.double_spend, 0);
        assert_eq!(store.total_interactions(), 60);
    }

    #[test]
    fn double_spends_caught_across_threads() {
        let (mut ups, key) = uploads(20, 2);
        // Duplicate every upload: the replay must be caught exactly once
        // each, regardless of which thread sees it first.
        let dupes: Vec<UploadRequest> = ups.clone();
        ups.extend(dupes);
        let store = ShardedStore::new(8);
        let stats = parallel_ingest(&ups, &key, &store, 4);
        assert_eq!(stats.accepted + stats.store_rejected, 20);
        assert_eq!(stats.double_spend, 20);
    }

    #[test]
    fn forged_tokens_rejected_in_parallel() {
        let (mut ups, key) = uploads(10, 3);
        for u in &mut ups {
            u.token.signature = orsp_crypto::BigUint::from_u64(99);
        }
        let store = ShardedStore::new(4);
        let stats = parallel_ingest(&ups, &key, &store, 4);
        assert_eq!(stats.accepted, 0);
        assert_eq!(stats.bad_token, 10);
        assert!(store.is_empty());
    }

    #[test]
    fn merged_store_matches_serial_result() {
        let (ups, key) = uploads(50, 4);
        let sharded = ShardedStore::new(8);
        parallel_ingest(&ups, &key, &sharded, 4);
        let merged = sharded.into_merged();

        let mut serial = HistoryStore::new();
        for u in &ups {
            let _ = serial.append(u.record_id, u.entity, u.interaction);
        }
        assert_eq!(merged.len(), serial.len());
        assert_eq!(merged.total_interactions(), serial.total_interactions());
    }

    #[test]
    fn single_shard_single_thread_degenerates_gracefully() {
        let (ups, key) = uploads(10, 5);
        let store = ShardedStore::new(1);
        let stats = parallel_ingest(&ups, &key, &store, 1);
        assert_eq!(stats.accepted, 10);
        assert_eq!(store.shard_count(), 1);
    }
}

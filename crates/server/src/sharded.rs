//! A sharded, concurrent history store.
//!
//! The single-threaded [`crate::HistoryStore`] is fine for simulation;
//! a production ingest tier shards the keyspace and verifies token
//! signatures in parallel. The expensive step — RSA signature
//! verification — is pure and embarrassingly parallel; only the
//! double-spend ledger and the store appends need coordination, which the
//! shards provide with one lock each (record ids are uniformly
//! distributed, so contention is negligible).

use crate::ingest::{IngestService, IngestStats};
use crate::store::{HistoryStore, StoredHistory};
use crate::wal::{WalEntry, WalSink};
use orsp_client::UploadRequest;
use orsp_crypto::blind::verify_unblinded;
use orsp_crypto::{RsaPublicKey, SpendOutcome, TokenMint};
use orsp_types::{RecordId, Timestamp};
use parking_lot::Mutex;
use std::collections::HashSet;

/// Map a 32-byte key to one of `n` shards using its first 8 bytes as a
/// little-endian word. Keys here are hash outputs (record ids, token
/// ledger keys), so this is uniform. Shared by the store and the spend
/// ledger so both keyspaces spread across all shards, not just the first
/// 256 buckets.
pub fn shard_index(bytes: &[u8; 32], n: usize) -> usize {
    let b = bytes;
    (u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]) as usize) % n.max(1)
}

/// A history store split into independently locked shards.
pub struct ShardedStore {
    shards: Vec<Mutex<HistoryStore>>,
}

impl ShardedStore {
    /// A store with `n` shards (at least 1).
    pub fn new(n: usize) -> Self {
        let n = n.max(1);
        ShardedStore { shards: (0..n).map(|_| Mutex::new(HistoryStore::new())).collect() }
    }

    /// Which shard owns a record id (uniform, since ids are hash outputs).
    fn shard_of(&self, record_id: &RecordId) -> usize {
        shard_index(record_id.as_bytes(), self.shards.len())
    }

    /// Append one interaction (locks only the owning shard).
    pub fn append(
        &self,
        record_id: RecordId,
        entity: orsp_types::EntityId,
        interaction: orsp_types::Interaction,
    ) -> orsp_types::Result<()> {
        self.shards[self.shard_of(&record_id)].lock().append(record_id, entity, interaction)
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total histories across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True iff no histories stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total interactions across shards.
    pub fn total_interactions(&self) -> usize {
        self.shards.iter().map(|s| s.lock().total_interactions()).sum()
    }

    /// Collapse into a single store for the analytics tier (profiles,
    /// fraud, aggregates run offline over a merged snapshot).
    pub fn into_merged(self) -> HistoryStore {
        let mut merged = HistoryStore::new();
        for shard in self.shards {
            let shard = shard.into_inner();
            for (rid, stored) in shard.iter() {
                let StoredHistory { entity, history } = stored;
                for r in history.iter() {
                    let _ = merged.append(*rid, *entity, *r);
                }
            }
        }
        merged
    }
}

/// Outcome of a parallel ingest run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ParallelStats {
    /// Uploads accepted.
    pub accepted: u64,
    /// Signature failures.
    pub bad_token: u64,
    /// Double-spends caught by the shared ledger.
    pub double_spend: u64,
    /// Store rejections (malformed / out of order / entity mismatch).
    pub store_rejected: u64,
}

/// Verify and ingest a batch of uploads across `threads` workers.
///
/// Phase 1 (parallel): RSA token verification — pure CPU.
/// Phase 2 (parallel): ledger insert (sharded set) + store append
/// (sharded map). The crossbeam scope guarantees all workers finish
/// before we return.
pub fn parallel_ingest(
    uploads: &[UploadRequest],
    mint_key: &RsaPublicKey,
    store: &ShardedStore,
    threads: usize,
) -> ParallelStats {
    let threads = threads.max(1);
    // Sharded spend ledger, same sharding discipline as the store.
    let ledger_shards: Vec<Mutex<HashSet<[u8; 32]>>> =
        (0..store.shard_count()).map(|_| Mutex::new(HashSet::new())).collect();

    let accepted = std::sync::atomic::AtomicU64::new(0);
    let bad_token = std::sync::atomic::AtomicU64::new(0);
    let double_spend = std::sync::atomic::AtomicU64::new(0);
    let store_rejected = std::sync::atomic::AtomicU64::new(0);
    use std::sync::atomic::Ordering::Relaxed;

    let chunk = uploads.len().div_ceil(threads).max(1);
    crossbeam::scope(|scope| {
        for slice in uploads.chunks(chunk) {
            let (ledger_shards, accepted, bad_token, double_spend, store_rejected) =
                (&ledger_shards, &accepted, &bad_token, &double_spend, &store_rejected);
            scope.spawn(move |_| {
                for upload in slice {
                    if !verify_unblinded(mint_key, &upload.token.message, &upload.token.signature)
                    {
                        bad_token.fetch_add(1, Relaxed);
                        continue;
                    }
                    let key = upload.token.ledger_key();
                    let shard = shard_index(&key, ledger_shards.len());
                    if !ledger_shards[shard].lock().insert(key) {
                        double_spend.fetch_add(1, Relaxed);
                        continue;
                    }
                    match store.append(upload.record_id, upload.entity, upload.interaction) {
                        Ok(()) => {
                            accepted.fetch_add(1, Relaxed);
                        }
                        Err(_) => {
                            store_rejected.fetch_add(1, Relaxed);
                        }
                    }
                }
            });
        }
    })
    .expect("ingest worker panicked");

    ParallelStats {
        accepted: accepted.into_inner(),
        bad_token: bad_token.into_inner(),
        double_spend: double_spend.into_inner(),
        store_rejected: store_rejected.into_inner(),
    }
}

/// Multi-core ingest with bit-for-bit deterministic results: admit the
/// deliveries exactly as a sequential [`IngestService::ingest`] loop
/// would, but spread the CPU-heavy work across `threads` workers.
///
/// Three phases:
///
/// 1. **Verify** (parallel): RSA signature checks — pure functions of the
///    public key, order-free.
/// 2. **Redeem** (sequential): walk the deliveries in order, feeding each
///    pre-computed verdict to the mint's ledger. The spend ledger is the
///    one truly order-dependent piece of state (first presentation wins),
///    so it runs single-threaded over a decided order.
/// 3. **Append** (parallel): store appends partitioned by record shard —
///    every record id maps to exactly one worker, so each history sees
///    its uploads in delivery order and no two workers touch one shard.
///
/// Every counter is either computed in phase 2 or is an order-independent
/// sum, so the returned service is identical for any thread count.
pub fn deterministic_ingest(
    deliveries: &[(Timestamp, UploadRequest)],
    mint: &mut TokenMint,
    threads: usize,
) -> IngestService {
    deterministic_ingest_logged(deliveries, mint, threads, None)
}

/// [`deterministic_ingest`] with a durability hook: every phase-3 append
/// the store accepts is also handed to `sink` (when present) from the
/// worker that owns the record's shard. A record id always maps to one
/// worker, so each record's entries reach the sink in delivery order —
/// the invariant crash recovery replays against. Sink failures never
/// change the in-memory outcome (the run's digests stay identical with
/// or without a sink); they are counted in
/// `storage_append_errors_total`, and a crashed sink simply stops
/// persisting — exactly the state a real crash leaves behind.
pub fn deterministic_ingest_logged(
    deliveries: &[(Timestamp, UploadRequest)],
    mint: &mut TokenMint,
    threads: usize,
    sink: Option<&dyn WalSink>,
) -> IngestService {
    let obs = orsp_obs::global();
    let threads = threads.max(1);
    let mut stats = IngestStats::default();

    // Phase 1: parallel signature verification.
    let verify_span = obs.span("ingest_verify_us");
    let key = mint.public_key().clone();
    let mut valid = vec![false; deliveries.len()];
    let chunk = deliveries.len().div_ceil(threads).max(1);
    crossbeam::scope(|scope| {
        for (slice, out) in deliveries.chunks(chunk).zip(valid.chunks_mut(chunk)) {
            let key = &key;
            scope.spawn(move |_| {
                for ((_, u), v) in slice.iter().zip(out.iter_mut()) {
                    *v = verify_unblinded(key, &u.token.message, &u.token.signature);
                }
            });
        }
    })
    .expect("verify worker panicked");
    verify_span.end();

    // Phase 2: sequential ledger pass in delivery order.
    let ledger_span = obs.span("ingest_ledger_us");
    let mut admitted: Vec<usize> = Vec::with_capacity(deliveries.len());
    for (i, (at, upload)) in deliveries.iter().enumerate() {
        match mint.redeem_preverified(&upload.token, *at, valid[i]) {
            SpendOutcome::Invalid => stats.bad_token += 1,
            SpendOutcome::DoubleSpend => stats.double_spend += 1,
            SpendOutcome::Accepted => admitted.push(i),
        }
    }
    ledger_span.end();

    // Phase 3: parallel appends, one worker per residue class of shards.
    let append_span = obs.span("ingest_append_us");
    let workers = threads.min(admitted.len().max(1));
    let shards = workers * 8;
    let store = ShardedStore::new(shards);
    let mut accepted = 0u64;
    let mut bad_record = 0u64;
    let mut entity_mismatch = 0u64;
    let mut sink_errors = 0u64;
    crossbeam::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let (store, admitted) = (&store, &admitted);
                scope.spawn(move |_| {
                    let (mut acc, mut bad, mut mism, mut serr) = (0u64, 0u64, 0u64, 0u64);
                    for &i in admitted {
                        let upload = &deliveries[i].1;
                        if shard_index(upload.record_id.as_bytes(), shards) % workers != w {
                            continue;
                        }
                        match store.append(upload.record_id, upload.entity, upload.interaction)
                        {
                            Ok(()) => {
                                acc += 1;
                                if let Some(sink) = sink {
                                    let entry = WalEntry {
                                        record_id: upload.record_id,
                                        entity: upload.entity,
                                        interaction: upload.interaction,
                                    };
                                    if sink.log_append(&entry).is_err() {
                                        serr += 1;
                                    }
                                }
                            }
                            Err(orsp_types::OrspError::UploadRejected(_)) => mism += 1,
                            Err(_) => bad += 1,
                        }
                    }
                    (acc, bad, mism, serr)
                })
            })
            .collect();
        for h in handles {
            let (acc, bad, mism, serr) = h.join().expect("append worker panicked");
            accepted += acc;
            bad_record += bad;
            entity_mismatch += mism;
            sink_errors += serr;
        }
    })
    .expect("append worker panicked");
    stats.accepted = accepted;
    stats.bad_record = bad_record;
    stats.entity_mismatch = entity_mismatch;
    if sink_errors > 0 {
        obs.counter("storage_append_errors_total").add(sink_errors);
    }
    append_span.end();

    // Bulk-mirror the batch outcome into the global registry. Recording
    // sums after the phases keeps the hot loops untouched and the counts
    // independent of thread interleaving.
    obs.counter("ingest_accepted_total").add(stats.accepted);
    obs.counter("ingest_rejected_total").add(stats.rejected());

    IngestService::from_parts(store.into_merged(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use orsp_crypto::{TokenMint, TokenWallet};
    use orsp_types::{
        DeviceId, EntityId, Interaction, InteractionKind, SimDuration, Timestamp,
    };
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn uploads(n: usize, seed: u64) -> (Vec<UploadRequest>, RsaPublicKey) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut mint = TokenMint::new(&mut rng, 256, u32::MAX, SimDuration::DAY);
        let mut wallet = TokenWallet::new(DeviceId::new(1), mint.public_key().clone());
        let ups = (0..n)
            .map(|i| {
                wallet.request_token(&mut rng, &mut mint, Timestamp::EPOCH).unwrap();
                UploadRequest {
                    record_id: RecordId::from_bytes({
                        let mut b = [0u8; 32];
                        b[0] = (i % 251) as u8;
                        b[1] = (i / 251) as u8;
                        b
                    }),
                    entity: EntityId::new((i % 17) as u64),
                    interaction: Interaction::solo(
                        InteractionKind::Visit,
                        Timestamp::from_seconds(i as i64 * 1_000),
                        SimDuration::minutes(30),
                        50.0,
                    ),
                    token: wallet.take_token().unwrap(),
                    release_at: Timestamp::EPOCH,
                }
            })
            .collect();
        (ups, mint.public_key().clone())
    }

    #[test]
    fn parallel_ingest_accepts_valid_uploads() {
        let (ups, key) = uploads(60, 1);
        let store = ShardedStore::new(8);
        let stats = parallel_ingest(&ups, &key, &store, 4);
        assert_eq!(stats.accepted, 60);
        assert_eq!(stats.bad_token, 0);
        assert_eq!(stats.double_spend, 0);
        assert_eq!(store.total_interactions(), 60);
    }

    #[test]
    fn double_spends_caught_across_threads() {
        let (mut ups, key) = uploads(20, 2);
        // Duplicate every upload: the replay must be caught exactly once
        // each, regardless of which thread sees it first.
        let dupes: Vec<UploadRequest> = ups.clone();
        ups.extend(dupes);
        let store = ShardedStore::new(8);
        let stats = parallel_ingest(&ups, &key, &store, 4);
        assert_eq!(stats.accepted + stats.store_rejected, 20);
        assert_eq!(stats.double_spend, 20);
    }

    #[test]
    fn forged_tokens_rejected_in_parallel() {
        let (mut ups, key) = uploads(10, 3);
        for u in &mut ups {
            u.token.signature = orsp_crypto::BigUint::from_u64(99);
        }
        let store = ShardedStore::new(4);
        let stats = parallel_ingest(&ups, &key, &store, 4);
        assert_eq!(stats.accepted, 0);
        assert_eq!(stats.bad_token, 10);
        assert!(store.is_empty());
    }

    #[test]
    fn merged_store_matches_serial_result() {
        let (ups, key) = uploads(50, 4);
        let sharded = ShardedStore::new(8);
        parallel_ingest(&ups, &key, &sharded, 4);
        let merged = sharded.into_merged();

        let mut serial = HistoryStore::new();
        for u in &ups {
            let _ = serial.append(u.record_id, u.entity, u.interaction);
        }
        assert_eq!(merged.len(), serial.len());
        assert_eq!(merged.total_interactions(), serial.total_interactions());
    }

    #[test]
    fn single_shard_single_thread_degenerates_gracefully() {
        let (ups, key) = uploads(10, 5);
        let store = ShardedStore::new(1);
        let stats = parallel_ingest(&ups, &key, &store, 1);
        assert_eq!(stats.accepted, 10);
        assert_eq!(store.shard_count(), 1);
    }

    /// A mixed batch for the deterministic-ingest tests: valid uploads,
    /// forged tokens, and replays, with the mint returned for redemption.
    fn mixed_deliveries(seed: u64) -> (Vec<(Timestamp, UploadRequest)>, TokenMint) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut mint = TokenMint::new(&mut rng, 256, u32::MAX, SimDuration::DAY);
        let mut wallet = TokenWallet::new(DeviceId::new(1), mint.public_key().clone());
        let mut out: Vec<(Timestamp, UploadRequest)> = Vec::new();
        for i in 0..60usize {
            wallet.request_token(&mut rng, &mut mint, Timestamp::EPOCH).unwrap();
            let mut u = UploadRequest {
                record_id: RecordId::from_bytes({
                    let mut b = [0u8; 32];
                    b[0] = (i % 23) as u8;
                    b
                }),
                entity: EntityId::new((i % 23 % 7) as u64),
                interaction: Interaction::solo(
                    InteractionKind::Visit,
                    Timestamp::from_seconds(i as i64 * 1_000),
                    SimDuration::minutes(30),
                    50.0,
                ),
                token: wallet.take_token().unwrap(),
                release_at: Timestamp::from_seconds(i as i64),
            };
            if i % 11 == 10 {
                u.token.signature = orsp_crypto::BigUint::from_u64(7); // forged
            }
            let t = Timestamp::from_seconds(i as i64);
            if i % 13 == 12 {
                out.push((t, u.clone())); // replay: second copy double-spends
            }
            out.push((t, u));
        }
        (out, mint)
    }

    /// The whole point: the admitted store and every counter must match a
    /// plain sequential `IngestService::ingest` loop, at any thread count.
    #[test]
    fn deterministic_ingest_matches_sequential() {
        let (deliveries, mut seq_mint) = mixed_deliveries(11);
        let (_, par_mint) = mixed_deliveries(11);

        let mut reference = IngestService::new();
        for (at, u) in &deliveries {
            let _ = reference.ingest(u, &mut seq_mint, *at);
        }

        for threads in [1, 2, 4, 8] {
            let (_, mut mint) = mixed_deliveries(11);
            let svc = deterministic_ingest(&deliveries, &mut mint, threads);
            assert_eq!(svc.stats(), reference.stats(), "stats diverge at {threads} threads");
            assert_eq!(svc.store().len(), reference.store().len());
            assert_eq!(svc.store().total_interactions(), reference.store().total_interactions());
            // Record-level equality, not just counts.
            for (rid, stored) in reference.store().iter() {
                let got = svc
                    .store()
                    .iter()
                    .find(|(r, _)| *r == rid)
                    .map(|(_, s)| s)
                    .expect("record present");
                assert_eq!(got.entity, stored.entity);
                assert_eq!(got.history.len(), stored.history.len());
            }
            assert_eq!(mint.spent_total(), seq_mint.spent_total(), "ledger diverges");
        }
        let _ = par_mint.issued_total();
    }

    #[test]
    fn deterministic_ingest_spends_tokens_once() {
        let (deliveries, _) = mixed_deliveries(12);
        let (_, mut mint) = mixed_deliveries(12);
        let svc = deterministic_ingest(&deliveries, &mut mint, 4);
        // Every valid token hit the ledger exactly once; replays were
        // rejected, forgeries never touched it.
        let valid = deliveries
            .iter()
            .filter(|(_, u)| {
                verify_unblinded(mint.public_key(), &u.token.message, &u.token.signature)
            })
            .map(|(_, u)| u.token.ledger_key())
            .collect::<HashSet<_>>();
        assert_eq!(mint.spent_total(), valid.len());
        assert!(svc.stats().double_spend > 0, "test batch contains replays");
        assert!(svc.stats().bad_token > 0, "test batch contains forgeries");
    }

    proptest::proptest! {
        /// The shard map must stay in bounds and be a stable pure
        /// function — the parallel partitioning depends on both.
        #[test]
        fn shard_index_in_bounds_and_stable(
            bytes in proptest::collection::vec(0u8..=255, 32..33),
            n in 1usize..64,
        ) {
            let mut key = [0u8; 32];
            key.copy_from_slice(&bytes);
            let s = shard_index(&key, n);
            proptest::prop_assert!(s < n);
            proptest::prop_assert_eq!(s, shard_index(&key, n));
        }

        /// n = 0 is clamped rather than panicking.
        #[test]
        fn shard_index_survives_zero_shards(b0 in 0u8..=255) {
            let mut key = [0u8; 32];
            key[0] = b0;
            proptest::prop_assert_eq!(shard_index(&key, 0), 0);
        }
    }
}

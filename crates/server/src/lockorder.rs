//! Debug-only lock-order discipline for the domain-partitioned service.
//!
//! The service core holds at most a handful of locks at once, always in
//! one direction: **mint → ledger shard → store shard → group commit →
//! group queue**, where "group commit" is the per-shard leader lock and
//! "group queue" the pending-batch list. The queue ranks *above* both
//! the store shard (followers enqueue while holding the store lock, so
//! apply order and WAL order coincide) and the commit lock (the leader
//! drains the queue while holding the commit lock).
//! Any path that acquires them in the reverse direction can deadlock
//! against the upload path. This module makes the discipline executable:
//! in debug builds each acquisition registers its rank in a thread-local
//! set and asserts that every rank already held is strictly lower. In
//! release builds everything compiles away.
//!
//! Usage: call [`enter`] with the lock's rank *before* blocking on the
//! lock, and keep the returned guard alive for as long as the lock guard
//! is. Checking before the block is deliberate — a violation is a bug
//! whether or not the lock happens to be contended at that moment.

#[cfg(debug_assertions)]
use std::cell::Cell;

/// Ranks for every lock class in the service core, in required
/// acquisition order.
pub mod rank {
    /// The token mint (issue path accounting).
    pub const MINT: u8 = 1;
    /// A spend-ledger shard (keyed by token ledger key).
    pub const LEDGER_SHARD: u8 = 2;
    /// A store shard (keyed by record id).
    pub const STORE_SHARD: u8 = 3;
    /// A shard's group-commit leader lock (formerly the WAL-order
    /// handoff): whoever holds it drains and durably commits the queue.
    pub const WAL_ORDER: u8 = 4;
    /// A shard's group-commit queue. Ranked above both the store shard
    /// (enqueue happens under the store lock) and the leader lock (the
    /// leader drains under the commit lock); it is only ever held for
    /// push/drain instants, never across I/O.
    pub const GROUP_QUEUE: u8 = 5;
}

#[cfg(debug_assertions)]
thread_local! {
    /// Bitmask of ranks currently held by this thread (bit `r` set when a
    /// rank-`r` guard is alive).
    static HELD: Cell<u8> = const { Cell::new(0) };
}

/// RAII witness that a rank is held; dropping it releases the rank.
/// Guards may drop out of acquisition order (the WAL handoff releases the
/// store shard while still holding WAL order).
#[must_use]
pub struct RankGuard {
    #[cfg(debug_assertions)]
    rank: u8,
}

/// Register intent to acquire a lock of the given rank.
///
/// Panics (debug builds only) when any rank already held is ≥ `rank` —
/// i.e. the acquisition runs against the mint → ledger → store → WAL
/// direction, or re-enters its own class.
#[inline]
pub fn enter(rank: u8) -> RankGuard {
    #[cfg(debug_assertions)]
    {
        HELD.with(|held| {
            let mask = held.get();
            assert!(
                mask >> rank == 0,
                "lock-order violation: acquiring rank {rank} while holding mask \
                 {mask:#b} (required order: mint(1) -> ledger shard(2) -> \
                 store shard(3) -> group commit(4) -> group queue(5), never \
                 reversed)"
            );
            held.set(mask | (1 << rank));
        });
        RankGuard { rank }
    }
    #[cfg(not(debug_assertions))]
    {
        let _ = rank;
        RankGuard {}
    }
}

#[cfg(debug_assertions)]
impl Drop for RankGuard {
    fn drop(&mut self) {
        HELD.with(|held| held.set(held.get() & !(1 << self.rank)));
    }
}

#[cfg(not(debug_assertions))]
impl Drop for RankGuard {
    fn drop(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_order_is_allowed() {
        let a = enter(rank::MINT);
        drop(a);
        let b = enter(rank::LEDGER_SHARD);
        let c = enter(rank::STORE_SHARD);
        // Enqueue shape: the group queue is pushed while the store shard
        // is held, then both release before the commit lock is taken.
        let q = enter(rank::GROUP_QUEUE);
        drop(q);
        drop(c);
        drop(b);
        // Leader shape: drain the queue while holding the commit lock.
        let d = enter(rank::WAL_ORDER);
        let q = enter(rank::GROUP_QUEUE);
        drop(q);
        drop(d);
        // Ranks are reusable once released.
        let _again = enter(rank::MINT);
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "release builds elide the check")]
    fn reverse_order_panics() {
        let _wal = enter(rank::WAL_ORDER);
        let violation = std::panic::catch_unwind(|| enter(rank::MINT));
        assert!(violation.is_err(), "mint after wal order must trip the assertion");
    }
}

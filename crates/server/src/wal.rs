//! A write-ahead log for the history store.
//!
//! Production ingest tiers don't keep a HashMap in RAM and hope; every
//! accepted upload is appended to a durable log and the store is
//! rebuilt by replay after a restart. This module defines the on-disk
//! format and the replay path (over byte buffers — the I/O layer is the
//! deployment's choice):
//!
//! ```text
//! file   := header record*
//! header := magic:u32 "OWAL" | version:u8
//! record := len:u32 | crc32:u32 | payload[len]
//! payload:= record_id[32] | entity:u64 | kind:u8 | start:i64
//!         | duration:i64 | distance:f64 | group:u16
//! ```
//!
//! All integers little-endian. The CRC covers the payload, so bit rot is
//! caught; a truncated final record (crash mid-append) is detected and
//! ignored, exactly like real WAL recovery.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use orsp_types::{
    EntityId, Interaction, InteractionKind, OrspError, RecordId, SimDuration, Timestamp,
};

const MAGIC: u32 = 0x4F57_414C; // "OWAL"
const VERSION: u8 = 1;
const PAYLOAD_LEN: usize = 32 + 8 + 1 + 8 + 8 + 8 + 2;

/// CRC-32 (IEEE 802.3), bitwise implementation — small and dependency-free.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// One logged entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WalEntry {
    /// The anonymous history id.
    pub record_id: RecordId,
    /// The entity the record concerns.
    pub entity: EntityId,
    /// The interaction.
    pub interaction: Interaction,
}

fn kind_to_u8(kind: InteractionKind) -> u8 {
    match kind {
        InteractionKind::Visit => 0,
        InteractionKind::PhoneCall => 1,
        InteractionKind::Payment => 2,
        InteractionKind::OnlineUse => 3,
    }
}

fn kind_from_u8(v: u8) -> Option<InteractionKind> {
    Some(match v {
        0 => InteractionKind::Visit,
        1 => InteractionKind::PhoneCall,
        2 => InteractionKind::Payment,
        3 => InteractionKind::OnlineUse,
        _ => return None,
    })
}

/// Append-only WAL writer over an in-memory buffer.
pub struct WalWriter {
    buf: BytesMut,
    entries: u64,
}

impl Default for WalWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl WalWriter {
    /// A fresh WAL with its header written.
    pub fn new() -> Self {
        let mut buf = BytesMut::with_capacity(4096);
        buf.put_u32_le(MAGIC);
        buf.put_u8(VERSION);
        WalWriter { buf, entries: 0 }
    }

    /// Append one entry.
    pub fn append(&mut self, entry: &WalEntry) {
        let mut payload = BytesMut::with_capacity(PAYLOAD_LEN);
        payload.put_slice(entry.record_id.as_bytes());
        payload.put_u64_le(entry.entity.raw());
        payload.put_u8(kind_to_u8(entry.interaction.kind));
        payload.put_i64_le(entry.interaction.start.as_seconds());
        payload.put_i64_le(entry.interaction.duration.as_seconds());
        payload.put_f64_le(entry.interaction.distance_travelled_m);
        payload.put_u16_le(entry.interaction.group_size);
        self.buf.put_u32_le(payload.len() as u32);
        self.buf.put_u32_le(crc32(&payload));
        self.buf.put_slice(&payload);
        self.entries += 1;
    }

    /// Entries appended so far.
    pub fn len(&self) -> u64 {
        self.entries
    }

    /// True iff no entries appended.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Finish and take the encoded log.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }
}

/// Replay result.
#[derive(Debug, Clone, PartialEq)]
pub struct Replay {
    /// Entries recovered, in append order.
    pub entries: Vec<WalEntry>,
    /// True when the log ended mid-record (crash during the last append);
    /// everything before the tear was recovered.
    pub torn_tail: bool,
}

/// Replay a WAL buffer.
pub fn replay(mut data: &[u8]) -> orsp_types::Result<Replay> {
    if data.len() < 5 {
        return Err(OrspError::InvalidConfig("WAL too short for header".into()));
    }
    let magic = data.get_u32_le();
    if magic != MAGIC {
        return Err(OrspError::InvalidConfig(format!("bad WAL magic {magic:#010x}")));
    }
    let version = data.get_u8();
    if version != VERSION {
        return Err(OrspError::InvalidConfig(format!("unsupported WAL version {version}")));
    }

    let mut entries = Vec::new();
    let mut torn_tail = false;
    while !data.is_empty() {
        if data.len() < 8 {
            torn_tail = true;
            break;
        }
        let len = data.get_u32_le() as usize;
        let crc = data.get_u32_le();
        if len != PAYLOAD_LEN {
            return Err(OrspError::InvalidConfig(format!("bad record length {len}")));
        }
        if data.len() < len {
            torn_tail = true;
            break;
        }
        let payload = &data[..len];
        if crc32(payload) != crc {
            return Err(OrspError::InvalidConfig("WAL record checksum mismatch".into()));
        }
        let mut p = payload;
        let mut record_id = [0u8; 32];
        p.copy_to_slice(&mut record_id);
        let entity = EntityId::new(p.get_u64_le());
        let kind = kind_from_u8(p.get_u8())
            .ok_or_else(|| OrspError::InvalidConfig("bad interaction kind".into()))?;
        let start = Timestamp::from_seconds(p.get_i64_le());
        let duration = SimDuration::seconds(p.get_i64_le());
        let distance = p.get_f64_le();
        let group_size = p.get_u16_le();
        entries.push(WalEntry {
            record_id: RecordId::from_bytes(record_id),
            entity,
            interaction: Interaction {
                kind,
                start,
                duration,
                distance_travelled_m: distance,
                group_size,
            },
        });
        data.advance(len);
    }
    Ok(Replay { entries, torn_tail })
}

/// Rebuild a [`crate::HistoryStore`] from a replayed WAL.
pub fn rebuild_store(replayed: &Replay) -> crate::HistoryStore {
    let mut store = crate::HistoryStore::new();
    for e in &replayed.entries {
        // Replay is idempotent over what the store accepted before; any
        // entry it rejects now was rejected then too.
        let _ = store.append(e.record_id, e.entity, e.interaction);
    }
    store
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn entry(n: u8, t: i64) -> WalEntry {
        WalEntry {
            record_id: RecordId::from_bytes([n; 32]),
            entity: EntityId::new(n as u64),
            interaction: Interaction::solo(
                InteractionKind::Visit,
                Timestamp::from_seconds(t),
                SimDuration::minutes(30),
                123.5,
            ),
        }
    }

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"hello"), 0x3610_A686);
    }

    #[test]
    fn round_trip() {
        let mut w = WalWriter::new();
        for i in 0..10 {
            w.append(&entry(i, i as i64 * 1_000));
        }
        assert_eq!(w.len(), 10);
        let bytes = w.finish();
        let r = replay(&bytes).unwrap();
        assert!(!r.torn_tail);
        assert_eq!(r.entries.len(), 10);
        assert_eq!(r.entries[3], entry(3, 3_000));
    }

    #[test]
    fn empty_log_replays_empty() {
        let w = WalWriter::new();
        assert!(w.is_empty());
        let r = replay(&w.finish()).unwrap();
        assert!(r.entries.is_empty());
        assert!(!r.torn_tail);
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(replay(&[0u8; 16]).is_err());
        assert!(replay(&[]).is_err());
    }

    #[test]
    fn corruption_detected() {
        let mut w = WalWriter::new();
        w.append(&entry(1, 0));
        let mut bytes = w.finish().to_vec();
        // Flip a payload bit.
        let last = bytes.len() - 4;
        bytes[last] ^= 0x40;
        assert!(matches!(replay(&bytes), Err(OrspError::InvalidConfig(_))));
    }

    #[test]
    fn torn_tail_recovers_prefix() {
        let mut w = WalWriter::new();
        w.append(&entry(1, 0));
        w.append(&entry(2, 1_000));
        let bytes = w.finish();
        // Crash mid-way through the second record.
        let torn = &bytes[..bytes.len() - 10];
        let r = replay(torn).unwrap();
        assert!(r.torn_tail);
        assert_eq!(r.entries.len(), 1);
        assert_eq!(r.entries[0], entry(1, 0));
    }

    #[test]
    fn rebuild_matches_original_store() {
        let mut store = crate::HistoryStore::new();
        let mut w = WalWriter::new();
        for i in 0..20u8 {
            let e = entry(i % 5, i as i64 * 10_000);
            if store.append(e.record_id, e.entity, e.interaction).is_ok() {
                w.append(&e);
            }
        }
        let rebuilt = rebuild_store(&replay(&w.finish()).unwrap());
        assert_eq!(rebuilt.len(), store.len());
        assert_eq!(rebuilt.total_interactions(), store.total_interactions());
    }

    proptest! {
        #[test]
        fn round_trip_prop(
            ids in proptest::collection::vec(0u8..=255, 1..40),
            starts in proptest::collection::vec(0i64..1_000_000_000, 1..40),
        ) {
            let mut w = WalWriter::new();
            let n = ids.len().min(starts.len());
            let mut originals = Vec::new();
            for i in 0..n {
                let e = entry(ids[i], starts[i]);
                w.append(&e);
                originals.push(e);
            }
            let r = replay(&w.finish()).unwrap();
            prop_assert_eq!(r.entries, originals);
            prop_assert!(!r.torn_tail);
        }
    }
}

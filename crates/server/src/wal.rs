//! A write-ahead log for the history store.
//!
//! Production ingest tiers don't keep a HashMap in RAM and hope; every
//! accepted upload is appended to a durable log and the store is
//! rebuilt by replay after a restart. This module defines the on-disk
//! format and the replay path over byte buffers; `orsp-storage` owns the
//! real I/O (segment files, rotation, checkpoints, crash recovery) and
//! builds directly on these encode/decode primitives:
//!
//! ```text
//! file    := header record*
//! header  := magic:u32 "OWAL" | version:u8   (current version: 2)
//! record  := len:u32 | crc32:u32 | payload[len]
//! payload := tag:u8 | body                   (v2; v1 had no tag byte)
//! body    := history | token-spend           (selected by tag)
//! history := record_id[32] | entity:u64 | kind:u8 | start:i64
//!          | duration:i64 | distance:f64 | group:u16      (tag 0)
//! token-spend := ledger_key[32]                           (tag 1)
//! ```
//!
//! All integers little-endian. The CRC covers the payload, so bit rot is
//! caught; a truncated final record (crash mid-append) is detected and
//! reported as a typed [`WalFault`] carrying the record index and byte
//! offset — recovery code decides whether a fault is a tolerable crash
//! artifact (torn tail of the active segment) or real corruption.
//!
//! Version 1 segments (history records only, no tag byte) still replay:
//! a data directory written before the spend ledger became durable
//! recovers its histories and an empty spent-token set.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use orsp_types::{
    EntityId, Interaction, InteractionKind, OrspError, RecordId, SimDuration, Timestamp,
};

const MAGIC: u32 = 0x4F57_414C; // "OWAL"
const VERSION: u8 = 2;
const V1: u8 = 1;
/// v1 payload: a bare history body, no tag byte.
const V1_PAYLOAD_LEN: usize = 32 + 8 + 1 + 8 + 8 + 8 + 2;
/// v2 history payload: tag byte + history body.
const HISTORY_PAYLOAD_LEN: usize = 1 + V1_PAYLOAD_LEN;
/// v2 token-spend payload: tag byte + 32-byte ledger key.
const TOKEN_PAYLOAD_LEN: usize = 1 + 32;
const TAG_HISTORY: u8 = 0;
const TAG_TOKEN_SPEND: u8 = 1;

/// Bytes of the segment header (magic + version).
pub const WAL_HEADER_LEN: usize = 5;
/// On-disk bytes of one encoded history record (length + CRC + payload).
pub const WAL_RECORD_LEN: usize = 8 + HISTORY_PAYLOAD_LEN;
/// On-disk bytes of one encoded token-spend record.
pub const WAL_TOKEN_RECORD_LEN: usize = 8 + TOKEN_PAYLOAD_LEN;

const CRC32_TABLE: [u32; 256] = crc32_table();

/// Build the 256-entry CRC-32 (IEEE 802.3) lookup table at compile time.
const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 (IEEE 802.3), table-driven: one lookup per byte instead of
/// eight shift/xor rounds. Both the WAL and the `orsp-net` wire codec
/// run this per byte on their hot paths. Identical outputs to the
/// bitwise form (kept as the oracle in the tests below).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// One logged entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WalEntry {
    /// The anonymous history id.
    pub record_id: RecordId,
    /// The entity the record concerns.
    pub entity: EntityId,
    /// The interaction.
    pub interaction: Interaction,
}

/// One accepted upload bound for the log: the history entry plus,
/// optionally, the spent-token ledger key that admitted it. Group
/// commit logs the pair adjacently so a single fsync covers both —
/// an acked upload's token can never be replayed after a crash.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WalBatchItem {
    /// Ledger key of the token this upload spent, if the caller wants
    /// the spend durable alongside the history record.
    pub spend: Option<[u8; 32]>,
    /// The history entry.
    pub entry: WalEntry,
}

/// A sink for accepted appends: the durability hook the ingest tier
/// calls with every upload it admits, in admission order per record.
/// `orsp-storage`'s engine implements this over segmented on-disk logs;
/// tests implement it over plain vectors.
pub trait WalSink: Send + Sync {
    /// Durably log one accepted entry. An error means the entry may not
    /// survive a restart — callers surface it rather than swallow it.
    fn log_append(&self, entry: &WalEntry) -> orsp_types::Result<()>;

    /// Durably log one spent-token ledger key. The default is a no-op
    /// so vector-backed test sinks that only watch history records keep
    /// working; the storage engine overrides it with a real append.
    fn log_token_spend(&self, _key: &[u8; 32]) -> orsp_types::Result<()> {
        Ok(())
    }

    /// Durably log a whole commit group with (at most) one sync. The
    /// default preserves the single-entry path — it degrades to one
    /// `log_token_spend` + `log_append` per item in order, which is
    /// exactly what test sinks observing individual appends expect.
    /// The storage engine overrides this with one buffered write and
    /// one fsync per group.
    fn log_upload_batch(&self, items: &[WalBatchItem]) -> orsp_types::Result<()> {
        for item in items {
            if let Some(key) = &item.spend {
                self.log_token_spend(key)?;
            }
            self.log_append(&item.entry)?;
        }
        Ok(())
    }
}

fn kind_to_u8(kind: InteractionKind) -> u8 {
    match kind {
        InteractionKind::Visit => 0,
        InteractionKind::PhoneCall => 1,
        InteractionKind::Payment => 2,
        InteractionKind::OnlineUse => 3,
    }
}

fn kind_from_u8(v: u8) -> Option<InteractionKind> {
    Some(match v {
        0 => InteractionKind::Visit,
        1 => InteractionKind::PhoneCall,
        2 => InteractionKind::Payment,
        3 => InteractionKind::OnlineUse,
        _ => return None,
    })
}

/// The 5-byte segment header every WAL buffer starts with.
pub fn wal_header() -> [u8; WAL_HEADER_LEN] {
    let m = MAGIC.to_le_bytes();
    [m[0], m[1], m[2], m[3], VERSION]
}

fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Encode one history record exactly as [`WalWriter::append`] lays it
/// out: `len | crc | tag | body`.
pub fn encode_record(entry: &WalEntry) -> Vec<u8> {
    let mut payload = BytesMut::with_capacity(HISTORY_PAYLOAD_LEN);
    payload.put_u8(TAG_HISTORY);
    payload.put_slice(entry.record_id.as_bytes());
    payload.put_u64_le(entry.entity.raw());
    payload.put_u8(kind_to_u8(entry.interaction.kind));
    payload.put_i64_le(entry.interaction.start.as_seconds());
    payload.put_i64_le(entry.interaction.duration.as_seconds());
    payload.put_f64_le(entry.interaction.distance_travelled_m);
    payload.put_u16_le(entry.interaction.group_size);
    frame(&payload)
}

/// Encode one token-spend record: `len | crc | tag | ledger_key`.
pub fn encode_token_spend(key: &[u8; 32]) -> Vec<u8> {
    let mut payload = BytesMut::with_capacity(TOKEN_PAYLOAD_LEN);
    payload.put_u8(TAG_TOKEN_SPEND);
    payload.put_slice(key);
    frame(&payload)
}

/// Encode one batch item: its token-spend record (if any) followed by
/// its history record — the exact bytes group commit appends.
pub fn encode_batch_item(item: &WalBatchItem) -> Vec<u8> {
    let mut out = match &item.spend {
        Some(key) => encode_token_spend(key),
        None => Vec::with_capacity(WAL_RECORD_LEN),
    };
    out.extend_from_slice(&encode_record(&item.entry));
    out
}

/// Append-only WAL writer over an in-memory buffer.
pub struct WalWriter {
    buf: BytesMut,
    entries: u64,
}

impl Default for WalWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl WalWriter {
    /// A fresh WAL with its header written.
    pub fn new() -> Self {
        let mut buf = BytesMut::with_capacity(4096);
        buf.put_slice(&wal_header());
        WalWriter { buf, entries: 0 }
    }

    /// Append one history entry.
    pub fn append(&mut self, entry: &WalEntry) {
        self.buf.put_slice(&encode_record(entry));
        self.entries += 1;
    }

    /// Append one token-spend record.
    pub fn append_token_spend(&mut self, key: &[u8; 32]) {
        self.buf.put_slice(&encode_token_spend(key));
        self.entries += 1;
    }

    /// Entries appended so far.
    pub fn len(&self) -> u64 {
        self.entries
    }

    /// True iff no entries appended.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Finish and take the encoded log.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }
}

/// Why replay stopped before the end of the buffer. Every variant names
/// the index of the record that failed (0-based, in append order) and
/// the byte offset of that record's length field within the buffer —
/// enough for an operator to find the damage with a hex dump.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalFault {
    /// The log ended mid-record: a crash during the final append. The
    /// tolerable fault — everything before the tear was recovered.
    TornTail {
        /// Index of the truncated record.
        index: u64,
        /// Byte offset where the truncated record starts.
        offset: u64,
    },
    /// A record's payload failed its CRC: bit rot or a torn overwrite.
    BadCrc {
        /// Index of the corrupt record.
        index: u64,
        /// Byte offset where the corrupt record starts.
        offset: u64,
    },
    /// A record announced an impossible length.
    BadLength {
        /// Index of the bad record.
        index: u64,
        /// Byte offset where the bad record starts.
        offset: u64,
        /// The length it claimed.
        len: u32,
    },
    /// A record decoded but named an unknown interaction kind.
    BadKind {
        /// Index of the bad record.
        index: u64,
        /// Byte offset where the bad record starts.
        offset: u64,
    },
    /// A v2 record's tag byte disagrees with its length, or names an
    /// unknown record type.
    BadTag {
        /// Index of the bad record.
        index: u64,
        /// Byte offset where the bad record starts.
        offset: u64,
    },
}

impl WalFault {
    /// Index of the record where replay stopped.
    pub fn index(&self) -> u64 {
        match *self {
            WalFault::TornTail { index, .. }
            | WalFault::BadCrc { index, .. }
            | WalFault::BadLength { index, .. }
            | WalFault::BadKind { index, .. }
            | WalFault::BadTag { index, .. } => index,
        }
    }

    /// Byte offset of the faulty record within the replayed buffer.
    pub fn offset(&self) -> u64 {
        match *self {
            WalFault::TornTail { offset, .. }
            | WalFault::BadCrc { offset, .. }
            | WalFault::BadLength { offset, .. }
            | WalFault::BadKind { offset, .. }
            | WalFault::BadTag { offset, .. } => offset,
        }
    }

    /// True for the one fault a crash legitimately produces.
    pub fn is_torn_tail(&self) -> bool {
        matches!(self, WalFault::TornTail { .. })
    }

    fn obs_name(&self) -> &'static str {
        match self {
            WalFault::TornTail { .. } => "wal_fault_torn_tail_total",
            WalFault::BadCrc { .. } => "wal_fault_bad_crc_total",
            WalFault::BadLength { .. } => "wal_fault_bad_length_total",
            WalFault::BadKind { .. } => "wal_fault_bad_kind_total",
            WalFault::BadTag { .. } => "wal_fault_bad_tag_total",
        }
    }
}

impl std::fmt::Display for WalFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalFault::TornTail { index, offset } => {
                write!(f, "torn tail at record {index} (byte offset {offset})")
            }
            WalFault::BadCrc { index, offset } => {
                write!(f, "CRC mismatch at record {index} (byte offset {offset})")
            }
            WalFault::BadLength { index, offset, len } => {
                write!(f, "bad length {len} at record {index} (byte offset {offset})")
            }
            WalFault::BadKind { index, offset } => {
                write!(f, "unknown interaction kind at record {index} (byte offset {offset})")
            }
            WalFault::BadTag { index, offset } => {
                write!(f, "bad record tag at record {index} (byte offset {offset})")
            }
        }
    }
}

/// Replay result.
#[derive(Debug, Clone, PartialEq)]
pub struct Replay {
    /// Entries recovered, in append order.
    pub entries: Vec<WalEntry>,
    /// Spent-token ledger keys recovered, in append order. Always empty
    /// for version-1 logs, which predate durable spends.
    pub spent_tokens: Vec<[u8; 32]>,
    /// Why replay stopped early, if it did. `None` means the buffer
    /// ended exactly on a record boundary (a clean log).
    pub fault: Option<WalFault>,
}

impl Replay {
    /// True when the log ended mid-record (crash during the last append).
    pub fn torn_tail(&self) -> bool {
        self.fault.map(|f| f.is_torn_tail()).unwrap_or(false)
    }

    /// True when every byte replayed cleanly.
    pub fn is_clean(&self) -> bool {
        self.fault.is_none()
    }
}

/// Replay a WAL buffer.
///
/// Header problems (too short, bad magic, unsupported version) are hard
/// errors — nothing can be recovered. Record-level problems stop the
/// replay and are reported as a typed [`WalFault`] with the failing
/// record's index and byte offset; everything before the fault is
/// recovered. Each fault increments a per-kind counter in the global
/// obs registry (`wal_fault_*_total`).
pub fn replay(data: &[u8]) -> orsp_types::Result<Replay> {
    let total = data.len();
    let mut data = data;
    if data.len() < WAL_HEADER_LEN {
        return Err(OrspError::InvalidConfig("WAL too short for header".into()));
    }
    let magic = data.get_u32_le();
    if magic != MAGIC {
        return Err(OrspError::InvalidConfig(format!("bad WAL magic {magic:#010x}")));
    }
    let version = data.get_u8();
    if version != VERSION && version != V1 {
        return Err(OrspError::InvalidConfig(format!("unsupported WAL version {version}")));
    }

    let mut entries = Vec::new();
    let mut spent_tokens = Vec::new();
    let mut fault = None;
    let mut index = 0u64;
    while !data.is_empty() {
        let offset = (total - data.len()) as u64;
        if data.len() < 8 {
            fault = Some(WalFault::TornTail { index, offset });
            break;
        }
        let len = data.get_u32_le() as usize;
        let crc = data.get_u32_le();
        let len_ok = if version == V1 {
            len == V1_PAYLOAD_LEN
        } else {
            len == HISTORY_PAYLOAD_LEN || len == TOKEN_PAYLOAD_LEN
        };
        if !len_ok {
            fault = Some(WalFault::BadLength { index, offset, len: len as u32 });
            break;
        }
        if data.len() < len {
            fault = Some(WalFault::TornTail { index, offset });
            break;
        }
        let payload = &data[..len];
        if crc32(payload) != crc {
            fault = Some(WalFault::BadCrc { index, offset });
            break;
        }
        let mut p = payload;
        // v1 payloads are bare history bodies; v2 leads with a tag byte
        // whose value must agree with the framed length.
        let tag = if version == V1 { TAG_HISTORY } else { p.get_u8() };
        let expected = match tag {
            TAG_HISTORY if version == V1 => V1_PAYLOAD_LEN,
            TAG_HISTORY => HISTORY_PAYLOAD_LEN,
            TAG_TOKEN_SPEND => TOKEN_PAYLOAD_LEN,
            _ => {
                fault = Some(WalFault::BadTag { index, offset });
                break;
            }
        };
        if len != expected {
            fault = Some(WalFault::BadTag { index, offset });
            break;
        }
        if tag == TAG_TOKEN_SPEND {
            let mut key = [0u8; 32];
            p.copy_to_slice(&mut key);
            spent_tokens.push(key);
            data.advance(len);
            index += 1;
            continue;
        }
        let mut record_id = [0u8; 32];
        p.copy_to_slice(&mut record_id);
        let entity = EntityId::new(p.get_u64_le());
        let Some(kind) = kind_from_u8(p.get_u8()) else {
            fault = Some(WalFault::BadKind { index, offset });
            break;
        };
        let start = Timestamp::from_seconds(p.get_i64_le());
        let duration = SimDuration::seconds(p.get_i64_le());
        let distance = p.get_f64_le();
        let group_size = p.get_u16_le();
        entries.push(WalEntry {
            record_id: RecordId::from_bytes(record_id),
            entity,
            interaction: Interaction {
                kind,
                start,
                duration,
                distance_travelled_m: distance,
                group_size,
            },
        });
        data.advance(len);
        index += 1;
    }
    if let Some(f) = fault {
        orsp_obs::global().counter(f.obs_name()).inc();
    }
    Ok(Replay { entries, spent_tokens, fault })
}

/// Rebuild a [`crate::HistoryStore`] from a replayed WAL.
pub fn rebuild_store(replayed: &Replay) -> crate::HistoryStore {
    let mut store = crate::HistoryStore::new();
    for e in &replayed.entries {
        // Replay is idempotent over what the store accepted before; any
        // entry it rejects now was rejected then too.
        let _ = store.append(e.record_id, e.entity, e.interaction);
    }
    store
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The original bitwise CRC-32: the oracle the table-driven
    /// implementation must match bit for bit on every input.
    fn crc32_bitwise(data: &[u8]) -> u32 {
        let mut crc = 0xFFFF_FFFFu32;
        for &b in data {
            crc ^= b as u32;
            for _ in 0..8 {
                let mask = (crc & 1).wrapping_neg();
                crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            }
        }
        !crc
    }

    fn entry(n: u8, t: i64) -> WalEntry {
        WalEntry {
            record_id: RecordId::from_bytes([n; 32]),
            entity: EntityId::new(n as u64),
            interaction: Interaction::solo(
                InteractionKind::Visit,
                Timestamp::from_seconds(t),
                SimDuration::minutes(30),
                123.5,
            ),
        }
    }

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"hello"), 0x3610_A686);
    }

    #[test]
    fn crc32_matches_bitwise_oracle_on_fixed_inputs() {
        for input in [
            &b""[..],
            b"a",
            b"123456789",
            b"The quick brown fox jumps over the lazy dog",
            &[0u8; 257],
            &[0xFFu8; 64],
        ] {
            assert_eq!(crc32(input), crc32_bitwise(input));
        }
    }

    #[test]
    fn round_trip() {
        let mut w = WalWriter::new();
        for i in 0..10 {
            w.append(&entry(i, i as i64 * 1_000));
        }
        assert_eq!(w.len(), 10);
        let bytes = w.finish();
        assert_eq!(bytes.len(), WAL_HEADER_LEN + 10 * WAL_RECORD_LEN);
        let r = replay(&bytes).unwrap();
        assert!(r.is_clean());
        assert_eq!(r.entries.len(), 10);
        assert_eq!(r.entries[3], entry(3, 3_000));
    }

    #[test]
    fn empty_log_replays_empty() {
        let w = WalWriter::new();
        assert!(w.is_empty());
        let r = replay(&w.finish()).unwrap();
        assert!(r.entries.is_empty());
        assert!(r.is_clean());
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(replay(&[0u8; 16]).is_err());
        assert!(replay(&[]).is_err());
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = WalWriter::new().finish().to_vec();
        bytes[4] = 99;
        assert!(matches!(replay(&bytes), Err(OrspError::InvalidConfig(_))));
    }

    #[test]
    fn corruption_reported_with_index_and_offset() {
        let mut w = WalWriter::new();
        w.append(&entry(1, 0));
        w.append(&entry(2, 1_000));
        let mut bytes = w.finish().to_vec();
        // Flip a bit in the *second* record's payload.
        let second_start = WAL_HEADER_LEN + WAL_RECORD_LEN;
        bytes[second_start + 20] ^= 0x40;
        let r = replay(&bytes).unwrap();
        assert_eq!(r.entries.len(), 1, "prefix before the corruption is recovered");
        assert_eq!(
            r.fault,
            Some(WalFault::BadCrc { index: 1, offset: second_start as u64 })
        );
        assert!(!r.torn_tail());
    }

    #[test]
    fn bad_length_reported() {
        let mut w = WalWriter::new();
        w.append(&entry(1, 0));
        let mut bytes = w.finish().to_vec();
        bytes[WAL_HEADER_LEN] = 0xEE; // clobber the length field
        let r = replay(&bytes).unwrap();
        assert!(r.entries.is_empty());
        assert!(matches!(r.fault, Some(WalFault::BadLength { index: 0, .. })));
    }

    #[test]
    fn bad_kind_reported() {
        let mut w = WalWriter::new();
        w.append(&entry(1, 0));
        let mut bytes = w.finish().to_vec();
        // Kind byte lives after len(4) + crc(4) + tag(1) + id(32) +
        // entity(8); refresh the CRC so only the kind check can fire.
        let kind_at = WAL_HEADER_LEN + 8 + 1 + 32 + 8;
        bytes[kind_at] = 200;
        let payload_start = WAL_HEADER_LEN + 8;
        let crc = crc32(&bytes[payload_start..payload_start + HISTORY_PAYLOAD_LEN]);
        bytes[WAL_HEADER_LEN + 4..WAL_HEADER_LEN + 8].copy_from_slice(&crc.to_le_bytes());
        let r = replay(&bytes).unwrap();
        assert!(r.entries.is_empty());
        assert_eq!(
            r.fault,
            Some(WalFault::BadKind { index: 0, offset: WAL_HEADER_LEN as u64 })
        );
    }

    #[test]
    fn torn_tail_recovers_prefix() {
        let mut w = WalWriter::new();
        w.append(&entry(1, 0));
        w.append(&entry(2, 1_000));
        let bytes = w.finish();
        // Crash mid-way through the second record.
        let torn = &bytes[..bytes.len() - 10];
        let r = replay(torn).unwrap();
        assert!(r.torn_tail());
        assert_eq!(r.fault.unwrap().index(), 1);
        assert_eq!(r.fault.unwrap().offset(), (WAL_HEADER_LEN + WAL_RECORD_LEN) as u64);
        assert_eq!(r.entries.len(), 1);
        assert_eq!(r.entries[0], entry(1, 0));
    }

    #[test]
    fn token_spends_round_trip_interleaved_with_histories() {
        let mut w = WalWriter::new();
        w.append_token_spend(&[7u8; 32]);
        w.append(&entry(1, 0));
        w.append_token_spend(&[9u8; 32]);
        w.append(&entry(2, 1_000));
        assert_eq!(w.len(), 4);
        let bytes = w.finish();
        assert_eq!(
            bytes.len(),
            WAL_HEADER_LEN + 2 * WAL_RECORD_LEN + 2 * WAL_TOKEN_RECORD_LEN
        );
        let r = replay(&bytes).unwrap();
        assert!(r.is_clean());
        assert_eq!(r.entries, vec![entry(1, 0), entry(2, 1_000)]);
        assert_eq!(r.spent_tokens, vec![[7u8; 32], [9u8; 32]]);
    }

    #[test]
    fn batch_item_encoding_is_spend_then_history() {
        let item = WalBatchItem { spend: Some([3u8; 32]), entry: entry(4, 0) };
        let mut expect = encode_token_spend(&[3u8; 32]);
        expect.extend_from_slice(&encode_record(&entry(4, 0)));
        assert_eq!(encode_batch_item(&item), expect);
        let bare = WalBatchItem { spend: None, entry: entry(4, 0) };
        assert_eq!(encode_batch_item(&bare), encode_record(&entry(4, 0)));
    }

    #[test]
    fn version_1_logs_still_replay_without_tokens() {
        // Hand-build a v1 buffer: old header byte, bare history payloads
        // with no tag.
        let e = entry(5, 2_000);
        let mut payload = Vec::with_capacity(V1_PAYLOAD_LEN);
        payload.extend_from_slice(e.record_id.as_bytes());
        payload.extend_from_slice(&e.entity.raw().to_le_bytes());
        payload.push(0); // Visit
        payload.extend_from_slice(&e.interaction.start.as_seconds().to_le_bytes());
        payload.extend_from_slice(&e.interaction.duration.as_seconds().to_le_bytes());
        payload.extend_from_slice(&e.interaction.distance_travelled_m.to_le_bytes());
        payload.extend_from_slice(&e.interaction.group_size.to_le_bytes());
        assert_eq!(payload.len(), V1_PAYLOAD_LEN);
        let mut bytes = wal_header().to_vec();
        bytes[4] = V1;
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        let r = replay(&bytes).unwrap();
        assert!(r.is_clean());
        assert_eq!(r.entries, vec![e]);
        assert!(r.spent_tokens.is_empty());
    }

    #[test]
    fn tag_length_mismatch_reported() {
        // A token-spend length with a history tag: valid frame length,
        // valid CRC, contradictory tag.
        let mut payload = vec![TAG_HISTORY];
        payload.extend_from_slice(&[0u8; 32]);
        assert_eq!(payload.len(), TOKEN_PAYLOAD_LEN);
        let mut bytes = wal_header().to_vec();
        bytes.extend_from_slice(&frame(&payload));
        let r = replay(&bytes).unwrap();
        assert!(r.entries.is_empty());
        assert_eq!(
            r.fault,
            Some(WalFault::BadTag { index: 0, offset: WAL_HEADER_LEN as u64 })
        );
        // An unknown tag with a plausible length fails the same way.
        let mut payload = vec![9u8];
        payload.extend_from_slice(&[0u8; 32]);
        let mut bytes = wal_header().to_vec();
        bytes.extend_from_slice(&frame(&payload));
        let r = replay(&bytes).unwrap();
        assert!(matches!(r.fault, Some(WalFault::BadTag { .. })));
    }

    #[test]
    fn rebuild_matches_original_store() {
        let mut store = crate::HistoryStore::new();
        let mut w = WalWriter::new();
        for i in 0..20u8 {
            let e = entry(i % 5, i as i64 * 10_000);
            if store.append(e.record_id, e.entity, e.interaction).is_ok() {
                w.append(&e);
            }
        }
        let rebuilt = rebuild_store(&replay(&w.finish()).unwrap());
        assert_eq!(rebuilt.len(), store.len());
        assert_eq!(rebuilt.total_interactions(), store.total_interactions());
    }

    proptest! {
        #[test]
        fn crc32_table_matches_bitwise_oracle(
            data in proptest::collection::vec(0u8..=255, 0..300),
        ) {
            prop_assert_eq!(crc32(&data), crc32_bitwise(&data));
        }

        #[test]
        fn round_trip_prop(
            ids in proptest::collection::vec(0u8..=255, 1..40),
            starts in proptest::collection::vec(0i64..1_000_000_000, 1..40),
        ) {
            let mut w = WalWriter::new();
            let n = ids.len().min(starts.len());
            let mut originals = Vec::new();
            for i in 0..n {
                let e = entry(ids[i], starts[i]);
                w.append(&e);
                originals.push(e);
            }
            let r = replay(&w.finish()).unwrap();
            prop_assert_eq!(r.entries, originals);
            prop_assert!(r.is_clean());
        }

        /// The crash matrix in miniature: cut a random batch's encoding
        /// at *every* byte boundary. Below the header nothing recovers
        /// (hard error); past it, exactly the complete records before
        /// the cut come back, a torn tail is reported iff the cut is
        /// mid-record, and nothing ever panics.
        #[test]
        fn crash_cut_at_every_byte_recovers_prefix(
            ids in proptest::collection::vec(0u8..=255, 1..12),
        ) {
            let mut w = WalWriter::new();
            let mut originals = Vec::new();
            for (i, &id) in ids.iter().enumerate() {
                let e = entry(id, i as i64 * 500);
                w.append(&e);
                originals.push(e);
            }
            let bytes = w.finish();
            for cut in 0..=bytes.len() {
                let r = replay(&bytes[..cut]);
                if cut < WAL_HEADER_LEN {
                    prop_assert!(r.is_err(), "cut {cut}: header fragment must error");
                    continue;
                }
                let r = r.unwrap();
                let body = cut - WAL_HEADER_LEN;
                let whole = body / WAL_RECORD_LEN;
                let on_boundary = body % WAL_RECORD_LEN == 0;
                prop_assert_eq!(r.entries.len(), whole, "cut {}", cut);
                prop_assert_eq!(&r.entries[..], &originals[..whole]);
                if on_boundary {
                    prop_assert!(r.is_clean(), "cut {} is a record boundary", cut);
                } else {
                    let fault = r.fault.expect("mid-record cut must report a fault");
                    prop_assert!(fault.is_torn_tail());
                    prop_assert_eq!(fault.index(), whole as u64);
                    prop_assert_eq!(
                        fault.offset(),
                        (WAL_HEADER_LEN + whole * WAL_RECORD_LEN) as u64
                    );
                }
            }
        }
    }
}

//! # orsp-server
//!
//! The RSP's backend, implementing the server half of §4.2 and all of
//! §4.3:
//!
//! * [`store`] — the anonymous history store: append-only records keyed by
//!   opaque `hash(Ru, e)` ids. **There is deliberately no
//!   retrieve-by-record-id in the client-facing API** — "the RSP's service
//!   only need support requests to update histories but not to retrieve
//!   them" — which is what makes a leaked `Ru` useless to a thief.
//! * [`ingest`] — admission control: blind-token redemption (rate
//!   limiting + double-spend), record validation, entity-binding checks;
//!   plus a concurrent ingest pipeline (crossbeam) for throughput benches.
//! * [`profile`] — the *typical user* model of §4.3: quantile profiles of
//!   inter-interaction gaps, durations, and interaction counts, built by
//!   merging all stored histories per category.
//! * [`fraud`] — the detector: scores each history against the typical
//!   profile and discards outliers ("discarding interaction histories
//!   that significantly deviate from the activity patterns of the typical
//!   user").
//! * [`aggregates`] — the privacy-preserving egress: per-entity summaries
//!   (visit counts, distinct-history counts, effort statistics) that
//!   reveal "no information about any individual user".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregates;
pub mod attest_gate;
pub mod fraud;
pub mod ingest;
pub mod lockorder;
pub mod profile;
pub mod sharded;
pub mod sharded_ingest;
pub mod store;
pub mod wal;

pub use aggregates::{AggregateParts, AggregatePublisher, EntityAggregate, MIN_AGGREGATE_SUPPORT};
pub use attest_gate::{AttestationGate, GateOutcome};
pub use fraud::{FraudDetector, FraudVerdict};
pub use ingest::{IngestService, IngestStats, RejectReason};
pub use profile::{CategoryProfile, HistoryStats, ProfileBuilder, Quantiles};
pub use sharded::{
    deterministic_ingest, deterministic_ingest_logged, parallel_ingest, shard_index,
    ParallelStats, ShardedStore,
};
pub use sharded_ingest::{GroupCommitConfig, IngestOutcome, ShardedIngest};
pub use store::{HistoryStore, StoredHistory};
pub use wal::{
    crc32, encode_batch_item, encode_record, encode_token_spend, rebuild_store, replay,
    wal_header, Replay, WalBatchItem, WalEntry, WalFault, WalSink, WalWriter,
    WAL_HEADER_LEN, WAL_RECORD_LEN, WAL_TOKEN_RECORD_LEN,
};

//! One node's replication state machine.
//!
//! A [`ReplicaNode`] owns a [`StorageEngine`] per held range — the born
//! range in the node's main data dir, each followed range in its own
//! subdirectory — so every engine holds exactly one range's records and
//! spent-token keys. That structural split is what makes promotion and
//! catch-up exact: a range's authoritative state is always "whatever
//! one engine's logs replay to", never a filtered view of a shared log.
//!
//! Followed ranges are *dormant*: replicated batches reach the range
//! engine (durable) but not the serving [`ShardedIngest`], so the
//! proxy's scatter reads — which go to current primaries only — never
//! see a record twice. Promotion folds the range dir into the serving
//! store via [`ShardedIngest::absorb_histories`] and checkpoints the
//! engine at the bumped epoch, making the fence durable before the
//! first write under it is acked.

use crate::catchup;
use crate::topology::{PeerLink, ReplicationMode, Topology};
use orsp_net::{NetError, ReplicaHook, ReplicateOutcome, Request, Response};
use orsp_obs::{trace, Counter, Gauge, Registry};
use orsp_server::{ShardedIngest, WalBatchItem};
use orsp_storage::{scan_source, Dir, StorageEngine};
use orsp_types::{OrspError, RecordId};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

/// What went wrong in the replication tier.
#[derive(Debug)]
pub enum ReplicaError {
    /// A peer call failed at the transport layer.
    Net(NetError),
    /// A local engine or scan failed.
    Storage(orsp_storage::StorageError),
    /// A peer answered something the protocol does not allow here.
    Protocol(String),
    /// The catch-up rebuild did not reproduce the primary's state —
    /// the invariant the whole crate exists to uphold.
    DigestMismatch {
        /// Our rebuilt digest.
        ours: u32,
        /// The primary's digest.
        theirs: u32,
    },
}

impl fmt::Display for ReplicaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplicaError::Net(e) => write!(f, "peer call failed: {e}"),
            ReplicaError::Storage(e) => write!(f, "storage failed: {e}"),
            ReplicaError::Protocol(d) => write!(f, "protocol violation: {d}"),
            ReplicaError::DigestMismatch { ours, theirs } => write!(
                f,
                "catch-up digest mismatch: rebuilt {ours:08x}, primary {theirs:08x}"
            ),
        }
    }
}

impl std::error::Error for ReplicaError {}

impl From<NetError> for ReplicaError {
    fn from(e: NetError) -> Self {
        ReplicaError::Net(e)
    }
}

impl From<orsp_storage::StorageError> for ReplicaError {
    fn from(e: orsp_storage::StorageError) -> Self {
        ReplicaError::Storage(e)
    }
}

/// A node's current duty for one range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Serving reads and accepting writes for the range.
    Primary,
    /// Holding a dormant durable copy; refuses direct writes.
    Follower,
}

/// Everything [`ReplicaNode::new`] needs to register one held range.
pub struct RangeInit {
    /// The hash range.
    pub range: u32,
    /// Starting role (the daemon decides after probing its peers).
    pub role: Role,
    /// Starting epoch (from the range engine's recovery report).
    pub epoch: u64,
    /// The range's directory — scanned for promotion and catch-up.
    pub dir: Arc<dyn Dir>,
    /// The range's engine, already recovered from `dir`.
    pub engine: Arc<StorageEngine>,
}

struct RangeState {
    role: Role,
    epoch: u64,
    dir: Arc<dyn Dir>,
    engine: Arc<StorageEngine>,
}

struct Metrics {
    forwarded: Counter,
    degraded: Counter,
    fenced: Counter,
    demotions: Counter,
    applied: Counter,
    promotions: Counter,
    catch_up_chunks: Counter,
    lag: Gauge,
}

impl Metrics {
    fn new(obs: &Registry) -> Metrics {
        Metrics {
            forwarded: obs.counter("replication_forwarded_total"),
            degraded: obs.counter("replication_degraded_total"),
            fenced: obs.counter("replication_fenced_total"),
            demotions: obs.counter("replication_demotions_total"),
            applied: obs.counter("replication_applied_total"),
            promotions: obs.counter("replication_promotions_total"),
            catch_up_chunks: obs.counter("catch_up_chunks_served_total"),
            lag: obs.gauge("replication_lag"),
        }
    }
}

/// State shared with the async forwarding worker.
struct Shared {
    topology: Topology,
    ranges: HashMap<u32, Mutex<RangeState>>,
    peers: Vec<Option<Arc<dyn PeerLink>>>,
    metrics: Metrics,
}

struct QueuedBatch {
    range: u32,
    epoch: u64,
    items: Vec<WalBatchItem>,
}

/// One node's replication brain. Register it on the service with
/// [`orsp_net::RspService::set_replica`] and wire its
/// [`ReplicatingSink`](crate::ReplicatingSink) as the durability sink.
pub struct ReplicaNode {
    shared: Arc<Shared>,
    mode: ReplicationMode,
    tx: Mutex<Option<mpsc::Sender<QueuedBatch>>>,
    worker: Mutex<Option<JoinHandle<()>>>,
}

impl ReplicaNode {
    /// Build a node over its held ranges. `peers` is indexed by node id
    /// (`None` at this node's own slot, or for nodes it never calls).
    /// `mode == Async` spawns the background forwarding worker.
    pub fn new(
        topology: Topology,
        mode: ReplicationMode,
        peers: Vec<Option<Arc<dyn PeerLink>>>,
        ranges: Vec<RangeInit>,
        obs: &Registry,
    ) -> ReplicaNode {
        assert_eq!(peers.len(), topology.cluster_size as usize, "one peer slot per node");
        let map: HashMap<u32, Mutex<RangeState>> = ranges
            .into_iter()
            .map(|init| {
                assert!(topology.holds(init.range), "range {} not held", init.range);
                init.engine.set_epoch(init.epoch);
                (
                    init.range,
                    Mutex::new(RangeState {
                        role: init.role,
                        epoch: init.epoch,
                        dir: init.dir,
                        engine: init.engine,
                    }),
                )
            })
            .collect();
        let shared = Arc::new(Shared {
            topology,
            ranges: map,
            peers,
            metrics: Metrics::new(obs),
        });
        let (tx, worker) = if mode == ReplicationMode::Async {
            let (tx, rx) = mpsc::channel::<QueuedBatch>();
            let shared_for_worker = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name("replica-forward".into())
                .spawn(move || {
                    while let Ok(batch) = rx.recv() {
                        forward(&shared_for_worker, batch.range, batch.epoch, &batch.items);
                        shared_for_worker.metrics.lag.add(-1);
                    }
                })
                .expect("spawn replication worker");
            (Some(tx), Some(handle))
        } else {
            (None, None)
        };
        ReplicaNode { shared, mode, tx: Mutex::new(tx), worker: Mutex::new(worker) }
    }

    /// The node's topology.
    pub fn topology(&self) -> Topology {
        self.shared.topology
    }

    /// Current (role, epoch) for a held range.
    pub fn range_status(&self, range: u32) -> Option<(Role, u64)> {
        self.shared.ranges.get(&range).map(|s| {
            let st = s.lock();
            (st.role, st.epoch)
        })
    }

    /// Drain the async queue (if any) and stop the worker. Idempotent;
    /// call before the final checkpoints so queued batches reach their
    /// followers.
    pub fn shutdown(&self) {
        drop(self.tx.lock().take());
        if let Some(handle) = self.worker.lock().take() {
            let _ = handle.join();
        }
    }

    /// The primary's write path, called by the sink with one
    /// group-commit batch already bucketed to `range`: append to the
    /// range engine (one fsync), then forward to followers — inline
    /// and before the ack in `sync` mode, queued in `async` mode.
    pub(crate) fn replicate_batch(
        &self,
        range: u32,
        items: &[WalBatchItem],
    ) -> orsp_types::Result<()> {
        let Some(state) = self.shared.ranges.get(&range) else {
            return Err(OrspError::Storage(format!("range {range} is not held by this node")));
        };
        let (engine, epoch, role) = {
            let st = state.lock();
            (Arc::clone(&st.engine), st.epoch, st.role)
        };
        if role != Role::Primary {
            // `pre_upload` refuses these before the token is spent;
            // this closes the race where demotion lands mid-request.
            return Err(OrspError::Storage(format!("range {range} demoted; not primary")));
        }
        engine.append_upload_batch(items).map_err(OrspError::from)?;
        match self.mode {
            ReplicationMode::Sync => {
                if let Some(fenced_at) = forward(&self.shared, range, epoch, items) {
                    return Err(OrspError::Storage(format!(
                        "range {range} fenced at epoch {fenced_at}: a newer primary exists"
                    )));
                }
                Ok(())
            }
            ReplicationMode::Async => {
                if let Some(tx) = self.tx.lock().as_ref() {
                    self.shared.metrics.lag.add(1);
                    let _ = tx.send(QueuedBatch { range, epoch, items: items.to_vec() });
                }
                Ok(())
            }
        }
    }
}

/// Forward one batch to every other member of the range's replica set.
/// Returns `Some(current)` iff a follower fenced us with a strictly
/// higher epoch — the caller fails the write; we have already demoted.
/// An unreachable follower only degrades (counted): availability over
/// strict copy count, by design — see DESIGN §9.
fn forward(shared: &Shared, range: u32, epoch: u64, items: &[WalBatchItem]) -> Option<u64> {
    let request = Request::Replicate { range, epoch, promote: false, items: items.to_vec() };
    let span = trace::child("replicate");
    let mut fenced = None;
    for peer_idx in shared.topology.peers_of(range) {
        let Some(peer) = shared.peers.get(peer_idx as usize).and_then(|p| p.as_ref()) else {
            continue;
        };
        shared.metrics.forwarded.inc();
        match peer.call(&request) {
            Ok(Response::ReplicateAck { .. }) => {}
            Ok(Response::StaleEpoch { current, .. }) => {
                demote(shared, range, current);
                fenced = Some(current);
                break;
            }
            Ok(_) | Err(_) => shared.metrics.degraded.inc(),
        }
    }
    span.end();
    fenced
}

/// Step aside for a newer primary: adopt its epoch and stop taking
/// writes. The epoch becomes durable at the next checkpoint; until then
/// the in-memory role already fails writes closed, and a replayed
/// rejoin re-fences against the live peers, so an unluckily-timed crash
/// cannot resurrect the old primary.
fn demote(shared: &Shared, range: u32, current: u64) {
    if let Some(state) = shared.ranges.get(&range) {
        let mut st = state.lock();
        if current > st.epoch {
            st.epoch = current;
            st.engine.set_epoch(current);
        }
        if st.role == Role::Primary {
            st.role = Role::Follower;
            shared.metrics.demotions.inc();
        }
    }
}

impl ReplicaHook for ReplicaNode {
    fn pre_upload(&self, record_id: &RecordId) -> Result<(), Response> {
        let range = self.shared.topology.range_of(record_id);
        match self.shared.ranges.get(&range) {
            Some(state) => {
                let st = state.lock();
                if st.role == Role::Primary {
                    Ok(())
                } else {
                    Err(Response::Unavailable {
                        detail: format!(
                            "range {range} demoted at epoch {}: this node is a follower",
                            st.epoch
                        ),
                    })
                }
            }
            None => Err(Response::Unavailable {
                detail: format!("range {range} is not held by this node"),
            }),
        }
    }

    fn apply_replicate(
        &self,
        ingest: &ShardedIngest,
        range: u32,
        epoch: u64,
        promote: bool,
        items: &[WalBatchItem],
    ) -> ReplicateOutcome {
        let Some(state) = self.shared.ranges.get(&range) else {
            return ReplicateOutcome::Failed(format!("range {range} is not held by this node"));
        };
        let mut st = state.lock();
        if epoch < st.epoch {
            self.shared.metrics.fenced.inc();
            return ReplicateOutcome::Stale { current: st.epoch };
        }
        if promote {
            if epoch == st.epoch && st.role == Role::Primary {
                // Idempotent re-promotion (a proxy retry); nothing to fold.
                return ReplicateOutcome::Applied { epoch, applied: 0, promoted: false };
            }
            // Fold the dormant range into the serving store, then make
            // the new epoch durable *before* acknowledging: the first
            // write acked under this epoch must never race a recovery
            // that forgot the fence.
            let scan = match scan_source(st.dir.as_ref()) {
                Ok(scan) => scan,
                Err(e) => return ReplicateOutcome::Failed(format!("promotion scan: {e}")),
            };
            st.epoch = epoch;
            st.engine.set_epoch(epoch);
            if let Err(e) = st.engine.checkpoint(&scan.store, &scan.stats, &scan.spent_tokens)
            {
                return ReplicateOutcome::Failed(format!("promotion checkpoint: {e}"));
            }
            ingest.absorb_histories(
                scan.store.into_histories(),
                scan.spent_tokens.iter().copied(),
            );
            st.role = Role::Primary;
            self.shared.metrics.promotions.inc();
            return ReplicateOutcome::Applied { epoch, applied: 0, promoted: true };
        }
        if epoch > st.epoch {
            // A newer primary exists. Adopt its epoch — and if we
            // thought *we* were primary, we missed our own succession:
            // step down before applying.
            st.epoch = epoch;
            st.engine.set_epoch(epoch);
            if st.role == Role::Primary {
                st.role = Role::Follower;
                self.shared.metrics.demotions.inc();
            }
        }
        if let Err(e) = st.engine.append_upload_batch(items) {
            return ReplicateOutcome::Failed(format!("follower append: {e}"));
        }
        self.shared.metrics.applied.add(items.len() as u64);
        ReplicateOutcome::Applied {
            epoch: st.epoch,
            applied: items.len() as u64,
            promoted: false,
        }
    }

    fn serve_catch_up(&self, _ingest: &ShardedIngest, range: u32, cursor: u64) -> Response {
        let Some(state) = self.shared.ranges.get(&range) else {
            return Response::Unavailable {
                detail: format!("range {range} is not held by this node"),
            };
        };
        let (dir, epoch, primary) = {
            let st = state.lock();
            (Arc::clone(&st.dir), st.epoch, st.role == Role::Primary)
        };
        self.shared.metrics.catch_up_chunks.inc();
        match catchup::catch_up_chunk(dir.as_ref(), epoch, primary, cursor) {
            Ok(chunk) => chunk,
            Err(e) => Response::Error { detail: format!("catch-up scan: {e}") },
        }
    }
}

impl Drop for ReplicaNode {
    fn drop(&mut self) {
        self.shutdown();
    }
}

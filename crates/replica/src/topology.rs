//! The ring math every replication decision derives from.
//!
//! One formula places data everywhere in this repo: `shard_index` over
//! the record id. The proxy uses it with the backend count to pick a
//! *hash range*; this module extends that to a replica set per range.
//! Both the proxy's failover routing and each node's [`crate::node`]
//! carry the same [`Topology`] value, so promotion decisions made at
//! the front door always name a node the range's replicas expect.

use orsp_net::{NetError, NetPool, Request, Response};
use orsp_types::RecordId;

/// When the primary acks a replicated write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicationMode {
    /// Forward to followers *before* acking the client: an acked write
    /// survives the primary's loss (modulo followers that are
    /// themselves down — counted as `replication_degraded_total`, not
    /// blocked on, so one dead follower cannot take writes down).
    Sync,
    /// Ack after the local fsync; forward from a background queue.
    /// Cheaper, but the queue depth (the `replication_lag` gauge) is
    /// exactly the window of acked writes a primary loss can lose.
    Async,
}

impl ReplicationMode {
    /// Parse the `--replication` CLI value.
    pub fn parse(s: &str) -> Option<ReplicationMode> {
        match s {
            "sync" => Some(ReplicationMode::Sync),
            "async" => Some(ReplicationMode::Async),
            _ => None,
        }
    }
}

/// Static cluster shape: this node's index, the ring size, and how many
/// copies each range keeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    /// This node's index in the ring (`0..cluster_size`).
    pub node: u32,
    /// Number of nodes (= number of hash ranges).
    pub cluster_size: u32,
    /// Copies per range, including the primary. 1 = no replication.
    pub replication_factor: u32,
}

impl Topology {
    /// Build a topology, validating the shape.
    pub fn new(node: u32, cluster_size: u32, replication_factor: u32) -> Topology {
        assert!(cluster_size >= 1, "a cluster has at least one node");
        assert!(node < cluster_size, "node {node} outside cluster of {cluster_size}");
        assert!(
            (1..=cluster_size).contains(&replication_factor),
            "replication factor {replication_factor} not in 1..={cluster_size}"
        );
        Topology { node, cluster_size, replication_factor }
    }

    /// Which hash range a record belongs to — the proxy's routing
    /// formula, verbatim.
    pub fn range_of(&self, record_id: &RecordId) -> u32 {
        orsp_server::shard_index(record_id.as_bytes(), self.cluster_size as usize) as u32
    }

    /// The nodes holding `range`, in promotion order: the born owner
    /// first, then the next `replication_factor - 1` nodes around the
    /// ring. Membership is static; *roles* within the set move.
    pub fn replica_set(&self, range: u32) -> Vec<u32> {
        (0..self.replication_factor).map(|k| (range + k) % self.cluster_size).collect()
    }

    /// True iff this node is in `range`'s replica set.
    pub fn holds(&self, range: u32) -> bool {
        self.replica_set(range).contains(&self.node)
    }

    /// Every range this node holds a copy of, in range order. The born
    /// range (`range == node`) is always first.
    pub fn held_ranges(&self) -> Vec<u32> {
        let mut held: Vec<u32> =
            (0..self.cluster_size).filter(|&r| self.holds(r)).collect();
        held.sort_by_key(|&r| (r != self.node, r));
        held
    }

    /// The other members of `range`'s replica set — who a primary
    /// forwards `Replicate` batches to.
    pub fn peers_of(&self, range: u32) -> Vec<u32> {
        self.replica_set(range).into_iter().filter(|&n| n != self.node).collect()
    }
}

/// One replica-set peer this node can call. [`NetPool`] is the
/// production implementation; tests plug in in-process fakes (including
/// deliberately stale or dead ones).
pub trait PeerLink: Send + Sync {
    /// Send one request and wait for the response.
    fn call(&self, request: &Request) -> Result<Response, NetError>;
    /// Human-readable identity (address) for logs and errors.
    fn label(&self) -> String;
}

impl PeerLink for NetPool {
    fn call(&self, request: &Request) -> Result<Response, NetError> {
        // Propagate the ambient trace so a follower's `server/replicate`
        // span parents under the primary's upload.
        self.call_traced_with(request, orsp_obs::trace::current()).map(|(r, _)| r)
    }

    fn label(&self) -> String {
        self.addr().to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replica_sets_wrap_the_ring_and_partition_primaries() {
        let t = Topology::new(0, 3, 2);
        assert_eq!(t.replica_set(0), vec![0, 1]);
        assert_eq!(t.replica_set(1), vec![1, 2]);
        assert_eq!(t.replica_set(2), vec![2, 0]);
        assert_eq!(t.held_ranges(), vec![0, 2], "born range first");
        assert_eq!(t.peers_of(0), vec![1]);
        assert!(!t.holds(1));
    }

    #[test]
    fn rf_one_degenerates_to_the_unreplicated_cluster() {
        let t = Topology::new(2, 3, 1);
        assert_eq!(t.replica_set(2), vec![2]);
        assert_eq!(t.held_ranges(), vec![2]);
        assert!(t.peers_of(2).is_empty());
    }

    #[test]
    fn every_node_agrees_on_every_replica_set() {
        // The proxy and each node compute replica sets independently;
        // the set must not depend on who is asking.
        for node in 0..5 {
            let t = Topology::new(node, 5, 3);
            for range in 0..5 {
                let reference = Topology::new(0, 5, 3).replica_set(range);
                assert_eq!(t.replica_set(range), reference);
            }
        }
    }

    #[test]
    fn range_of_matches_the_proxy_routing_formula() {
        let t = Topology::new(0, 7, 2);
        for i in 0..64u8 {
            let id = RecordId::from_bytes([i; 32]);
            assert_eq!(t.range_of(&id) as usize, orsp_server::shard_index(id.as_bytes(), 7));
        }
    }
}

//! # orsp-replica
//!
//! Per-range replication: the cluster survives a backend loss without
//! losing acked writes or read availability.
//!
//! The proxy's consistent-hash routing already partitions record ids
//! into `cluster_size` hash ranges (one per backend, by
//! [`orsp_server::shard_index`]). This crate adds a *replica set* per
//! range: the range's born owner plus the next `replication_factor - 1`
//! nodes in ring order. The set's membership is static; which member is
//! *primary* changes on failure.
//!
//! * [`Topology`] — the pure ring math: `range_of`, `replica_set`,
//!   `held_ranges`. Shared verbatim by the proxy's failover routing so
//!   both sides always agree on who may be promoted.
//! * [`ReplicaNode`] — one node's replication state: a
//!   [`StorageEngine`](orsp_storage::StorageEngine) per held range
//!   (born range in the main data dir, each followed range in its own
//!   `follow-r<r>` subdir, so every engine holds exactly one range and
//!   per-range token attribution is structural). Implements
//!   [`orsp_net::ReplicaHook`]: epoch-fenced `Replicate` apply,
//!   promote-fold into the serving store, and the `CatchUp` stream.
//! * [`ReplicatingSink`] — the primary's write path: a
//!   [`WalSink`](orsp_server::WalSink) that rides the existing
//!   group-commit batches, appends each batch to the range's own engine
//!   (one fsync), then forwards it to the range's followers before the
//!   client sees an ack (`sync` mode) or from a background queue whose
//!   depth is the replication-lag gauge (`async` mode).
//! * [`catchup`] — anti-entropy: a lagging replica pulls the range's
//!   authoritative state in chunks, rebuilds through the normal engine
//!   append path, and proves itself bit-identical by `state_digest`.
//!
//! ## Epoch fencing
//!
//! Each range carries a monotonically-increasing epoch, persisted in
//! the range engine's checkpoint. Promotion bumps it. A rejoining stale
//! primary's `Replicate` carries its old epoch and is refused with a
//! typed `StaleEpoch`; on seeing one the sender demotes itself and the
//! write fails closed. The inverse also fences: a `Replicate` arriving
//! *with* a higher epoch demotes a primary that missed its own
//! succession. Split-brain therefore resolves in one round trip in
//! either direction, and the demoted side rejoins via [`catchup`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catchup;
pub mod node;
pub mod sink;
pub mod topology;

pub use catchup::{catch_up_chunk, catch_up_range, probe_range, CatchUpReport, PeerStatus};
pub use node::{RangeInit, ReplicaError, ReplicaNode, Role};
pub use sink::ReplicatingSink;
pub use topology::{PeerLink, ReplicationMode, Topology};

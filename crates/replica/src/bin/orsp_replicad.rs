//! A replicated cluster backend: `rsp_daemon`'s serving core plus
//! per-range replication.
//!
//! Each node is born owning the hash range equal to its `--node` index
//! (in `--data-dir`) and follows the ranges the [`Topology`] assigns it
//! (each in its own `follow-r<r>` subdirectory — one engine per range,
//! so per-range state and token attribution are structural). On
//! startup the node probes its born range's replica-set peers: if one
//! answers as primary at a higher epoch, this node was failed over
//! while away — it demotes itself, catches up from the new primary
//! (anti-entropy, digest-proven), and rejoins as a follower.
//!
//! ```sh
//! orsp-replicad --data-dir /tmp/n0 --listen 127.0.0.1:7100 \
//!     --node 0 --cluster-size 3 --replication-factor 2 \
//!     --peer 127.0.0.1:7100 --peer 127.0.0.1:7101 --peer 127.0.0.1:7102
//! ```
//!
//! `--replication sync` (default) forwards each group-commit batch to
//! the range's followers before the batch's uploads are acked;
//! `--replication async` acks after the local fsync and forwards from a
//! background queue (the `replication_lag` gauge is its depth).
//!
//! Serves until stdin reaches EOF, then drains and checkpoints every
//! held range from a scan of its own directory. (Unlike the single-node
//! daemon, checkpoint stats come from log replay, so reject counters —
//! node-local noise outside the replication contract — reset across
//! restarts.)

use orsp_core::{service_for_world_sharded, PipelineConfig};
use orsp_net::{ClientConfig, NetPool, NetServer, ReplicaHook, ServerConfig};
use orsp_replica::{
    catch_up_range, probe_range, PeerLink, RangeInit, ReplicaNode, ReplicatingSink,
    ReplicationMode, Role, Topology,
};
use orsp_server::{GroupCommitConfig, IngestService, WalSink};
use orsp_storage::{scan_source, Dir, FsDir, FsyncPolicy, StorageEngine, StorageOptions};
use orsp_types::SimDuration;
use orsp_world::{World, WorldConfig};
use std::sync::Arc;
use std::time::Duration;

fn arg(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).map(|i| {
        args.get(i + 1).unwrap_or_else(|| panic!("{name} takes a value")).clone()
    })
}

fn parsed<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    arg(args, name)
        .map(|v| v.parse().ok().unwrap_or_else(|| panic!("{name}: bad value")))
        .unwrap_or(default)
}

fn peer_client() -> ClientConfig {
    ClientConfig {
        connect_timeout: Duration::from_secs(2),
        read_timeout: Duration::from_secs(10),
        write_timeout: Duration::from_secs(5),
        max_retries: 2,
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(16),
        // A black-holed peer (SYNs dropped, no RST) must not hold a
        // replication call for connect_timeout × attempts: the whole
        // call — dials, retries, backoff — fits this budget.
        call_deadline: Some(Duration::from_secs(15)),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let data_dir = arg(&args, "--data-dir").expect("--data-dir is required");
    let listen = arg(&args, "--listen").unwrap_or_else(|| "127.0.0.1:0".to_string());
    let node_index: u32 = parsed(&args, "--node", 0);
    let cluster_size: u32 = parsed(&args, "--cluster-size", 1);
    let replication_factor: u32 = parsed(&args, "--replication-factor", 2.min(cluster_size));
    let mode = match arg(&args, "--replication") {
        None => ReplicationMode::Sync,
        Some(v) => ReplicationMode::parse(&v)
            .unwrap_or_else(|| panic!("--replication must be sync|async, got {v}")),
    };
    let fsync = match arg(&args, "--fsync").as_deref() {
        None | Some("always") => FsyncPolicy::Always,
        Some("on-rotate") => FsyncPolicy::OnRotate,
        Some("never") => FsyncPolicy::Never,
        Some(other) => panic!("--fsync must be always|on-rotate|never, got {other}"),
    };
    let shards: usize =
        parsed(&args, "--shards", StorageOptions::default().shard_count as usize);
    let group_commit: usize =
        parsed(&args, "--group-commit", StorageOptions::default().group_commit_batch_max);
    let group_commit_window_us: u64 = parsed(
        &args,
        "--group-commit-window-us",
        StorageOptions::default().group_commit_window_us,
    );
    // Connection slab size for the event-loop transport; 0 keeps the
    // threaded shed point (workers + queue depth).
    let max_connections: usize = parsed(&args, "--max-connections", 0);
    let seed: u64 = parsed(&args, "--seed", 13);
    let users_per_zipcode: usize = parsed(&args, "--users-per-zipcode", 40);
    let horizon_days: i64 = parsed(&args, "--horizon-days", 120);
    // Peer addresses in node-index order ("-" or the own slot ignored).
    let peer_addrs: Vec<String> = args
        .iter()
        .enumerate()
        .filter(|(_, a)| *a == "--peer")
        .map(|(i, _)| args.get(i + 1).expect("--peer takes an address").clone())
        .collect();

    let topology = Topology::new(node_index, cluster_size, replication_factor);
    let peers: Vec<Option<Arc<dyn PeerLink>>> = (0..cluster_size)
        .map(|i| {
            if i == node_index {
                return None;
            }
            peer_addrs.get(i as usize).filter(|a| a.as_str() != "-").map(|a| {
                let addr: std::net::SocketAddr =
                    a.parse().unwrap_or_else(|_| panic!("--peer {a}: bad address"));
                Arc::new(NetPool::new(addr, peer_client(), 2)) as Arc<dyn PeerLink>
            })
        })
        .collect();

    // The shared deterministic world: every node derives the same mint
    // keypair from the same seed, so a token minted anywhere verifies
    // everywhere — the cluster has one mint, not N.
    let world = World::generate(WorldConfig {
        users_per_zipcode,
        horizon: SimDuration::days(horizon_days),
        ..WorldConfig::tiny(seed)
    })
    .expect("world generation");

    let options = StorageOptions {
        fsync,
        shard_count: shards as u32,
        group_commit_batch_max: group_commit,
        group_commit_window_us,
        ..StorageOptions::default()
    };

    // Born range: recover, then probe the replica set for a newer
    // primary. Finding one means this node was failed over while away;
    // it rejoins as a follower only after proving itself bit-identical.
    let born = node_index;
    let born_dir: Arc<dyn Dir> = Arc::new(FsDir::open(&data_dir).expect("open data dir"));
    let (mut engine, mut report) =
        StorageEngine::open(Arc::clone(&born_dir), options).expect("recover born range");
    let mut born_role = Role::Primary;
    for peer_idx in topology.peers_of(born) {
        let Some(peer) = peers[peer_idx as usize].as_ref() else { continue };
        let Ok(status) = probe_range(peer.as_ref(), born) else { continue };
        if status.primary && status.epoch > engine.epoch() {
            println!(
                "replicad: range {born} has a newer primary (node {peer_idx}, epoch {}); \
                 demoting and catching up",
                status.epoch
            );
            drop(engine);
            let rep = catch_up_range(peer.as_ref(), born, Arc::clone(&born_dir), options)
                .expect("catch up born range");
            println!(
                "replicad: range {born} caught up — {} records, {} tokens, epoch {}, \
                 digest {:08x}{}",
                rep.records,
                rep.tokens,
                rep.epoch,
                rep.digest,
                if rep.rebuilt { " (rebuilt)" } else { " (already identical)" }
            );
            let reopened = StorageEngine::open(Arc::clone(&born_dir), options)
                .expect("reopen after catch-up");
            engine = reopened.0;
            report = reopened.1;
            born_role = Role::Follower;
            break;
        }
    }
    println!(
        "replicad: node {node_index} range {born} {} at epoch {} — {} records recovered, \
         {} spent tokens",
        if born_role == Role::Primary { "primary" } else { "follower" },
        report.epoch,
        report.store.len(),
        report.spent_tokens.len(),
    );
    let born_engine = Arc::new(engine);

    // Followed ranges: a dormant engine each, in its own subdirectory.
    let mut inits = Vec::new();
    let mut handles: Vec<(u32, Arc<dyn Dir>, Arc<StorageEngine>)> = Vec::new();
    inits.push(RangeInit {
        range: born,
        role: born_role,
        epoch: if born_role == Role::Primary { report.epoch } else { born_engine.epoch() },
        dir: Arc::clone(&born_dir),
        engine: Arc::clone(&born_engine),
    });
    handles.push((born, Arc::clone(&born_dir), Arc::clone(&born_engine)));
    for range in topology.held_ranges().into_iter().skip(1) {
        let path = format!("{data_dir}/follow-r{range}");
        let dir: Arc<dyn Dir> = Arc::new(FsDir::open(&path).expect("open follow dir"));
        let (follow_engine, follow_report) =
            StorageEngine::open(Arc::clone(&dir), options).expect("recover follow range");
        println!(
            "replicad: range {range} follower at epoch {} — {} records recovered",
            follow_report.epoch,
            follow_report.store.len(),
        );
        let follow_engine = Arc::new(follow_engine);
        inits.push(RangeInit {
            range,
            role: Role::Follower,
            epoch: follow_report.epoch,
            dir: Arc::clone(&dir),
            engine: Arc::clone(&follow_engine),
        });
        handles.push((range, dir, follow_engine));
    }

    // The serving tier, resuming from the born range's recovered state.
    let service_shards = born_engine.shard_count();
    let service = Arc::new(service_for_world_sharded(
        &world,
        &PipelineConfig::default(),
        IngestService::from_parts(report.store, report.stats),
        None,
        service_shards,
    ));
    service.seed_spent_tokens(report.spent_tokens);

    let node = Arc::new(ReplicaNode::new(topology, mode, peers, inits, service.obs()));
    service.set_durability_with(
        Arc::new(ReplicatingSink::new(Arc::clone(&node))) as Arc<dyn WalSink>,
        GroupCommitConfig {
            batch_max: group_commit.max(1),
            window_us: group_commit_window_us,
        },
    );
    service.set_replica(Arc::clone(&node) as Arc<dyn ReplicaHook>);
    // A follower's recovered records still sit in its serving store,
    // but the proxy scatters reads to current primaries only, so they
    // are never double-counted; they become live again on promotion.
    service.publish_aggregates();

    // Distinct per-process trace id streams (same rationale as
    // rsp_daemon: two daemons must never mint colliding trace ids).
    let trace_seed = (std::process::id() as u64) << 32
        ^ std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
    service.obs().tracer().set_seed(trace_seed);

    let server = NetServer::bind(
        listen.as_str(),
        service.clone(),
        ServerConfig { max_connections, ..ServerConfig::default() },
    )
    .expect("bind replicad");
    println!("replicad: listening on {}", server.local_addr());
    println!(
        "replicad: serving ({} mode, rf {}, ranges {:?})",
        if mode == ReplicationMode::Sync { "sync" } else { "async" },
        replication_factor,
        topology.held_ranges(),
    );

    // Serve until stdin closes — the cluster-backend lifecycle.
    let mut sink = Vec::new();
    let _ = std::io::Read::read_to_end(&mut std::io::stdin(), &mut sink);

    let stats = server.shutdown();
    node.shutdown();
    println!(
        "replicad: drained — {} connections, {} requests, {} shed",
        stats.accepted, stats.requests, stats.shed
    );

    // Checkpoint every held range from a scan of its own directory, at
    // its current (possibly adopted) epoch.
    for (range, dir, engine) in &handles {
        engine.sync_all().expect("sync at drain");
        let scan = scan_source(dir.as_ref()).expect("scan at drain");
        let generation = engine
            .checkpoint(&scan.store, &scan.stats, &scan.spent_tokens)
            .expect("checkpoint at drain");
        println!(
            "replicad: range {range} checkpoint generation {generation} — {} histories, \
             {} tokens, epoch {}",
            scan.store.len(),
            scan.spent_tokens.len(),
            engine.epoch(),
        );
    }
}

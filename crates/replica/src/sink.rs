//! The primary's replicated write path.
//!
//! [`ReplicatingSink`] is a [`WalSink`] the serving tier plugs in via
//! `set_durability_with`, replacing the bare engine: it rides the
//! existing group-commit batches unchanged. Each batch is bucketed by
//! hash range (the same `shard_index` formula as everywhere else),
//! appended to that range's own engine — one buffered write, one fsync,
//! exactly as before — and then forwarded to the range's followers as
//! one cluster-internal `Replicate` RPC carrying the batch verbatim.
//! In `sync` mode the forward completes before this sink returns, so
//! the group-commit leader's ack (and therefore every rider's
//! `UploadAccepted`) implies the batch reached the followers.
//!
//! The per-item spend keys ride inside [`WalBatchItem`], which is what
//! makes per-range token attribution structural: a follower's range
//! engine replays to exactly the primary's store *and* ledger for that
//! range, nothing else.

use crate::node::ReplicaNode;
use orsp_server::{WalBatchItem, WalEntry, WalSink};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A [`WalSink`] that makes every durable append a replicated one.
pub struct ReplicatingSink {
    node: Arc<ReplicaNode>,
}

impl ReplicatingSink {
    /// Wrap a node's replication brain as the service's durability sink.
    pub fn new(node: Arc<ReplicaNode>) -> ReplicatingSink {
        ReplicatingSink { node }
    }
}

impl WalSink for ReplicatingSink {
    fn log_append(&self, entry: &WalEntry) -> orsp_types::Result<()> {
        self.log_upload_batch(&[WalBatchItem { spend: None, entry: *entry }])
    }

    fn log_upload_batch(&self, items: &[WalBatchItem]) -> orsp_types::Result<()> {
        // One group-commit batch can span ranges (ingest shards and
        // hash ranges partition record ids independently); bucket it so
        // each range's engine and followers see only their own records.
        // BTreeMap for a deterministic forwarding order.
        let topology = self.node.topology();
        let mut buckets: BTreeMap<u32, Vec<WalBatchItem>> = BTreeMap::new();
        for item in items {
            buckets
                .entry(topology.range_of(&item.entry.record_id))
                .or_default()
                .push(*item);
        }
        for (range, batch) in buckets {
            self.node.replicate_batch(range, &batch)?;
        }
        Ok(())
    }
}

//! Anti-entropy catch-up: a lagging replica pulls a range's
//! authoritative state and proves itself bit-identical.
//!
//! The stream reuses the reshard tool's deterministic read-only scan
//! ([`scan_source`]): records in sorted record-id order, then spent
//! token keys in sorted order, chunked under the wire's frame cap. The
//! final chunk carries the server's [`state_digest`] — the CRC of the
//! canonical epoch-free checkpoint encoding — computed with *default*
//! ingest stats on both sides: reject counters are node-local noise
//! (each node refused different duplicates), deliberately outside the
//! replication contract. What replicates is the store and the ledger.
//!
//! The puller rebuilds through the normal engine append path (exactly
//! the reshard idiom: verify from the logs alone *before* the first
//! checkpoint), so a power cut at any instant leaves a state the next
//! attempt recovers from or wipes — never a half-trusted checkpoint.
//!
//! Each chunk re-scans the source directory, so a primary that keeps
//! taking writes mid-stream can shift the sorted order under the
//! cursor. The digest check catches every such race; the puller
//! retries, and converges as soon as it gets one quiescent pass. This
//! trades a bounded number of re-pulls for zero coordination with the
//! write path — catch-up never blocks uploads.

use crate::node::ReplicaError;
use crate::topology::PeerLink;
use orsp_net::{CatchRecord, NetError, Request, Response};
use orsp_server::{IngestStats, WalEntry};
use orsp_storage::{scan_source, state_digest, Dir, StorageEngine, StorageOptions};
use orsp_types::RecordId;
use std::sync::Arc;

/// Most records per `CatchUpChunk` (each is a whole history; with the
/// wire's 1 MiB frame cap this leaves room for long histories).
const RECORDS_PER_CHUNK: usize = 256;
/// Most token keys per chunk (32 bytes each).
const TOKENS_PER_CHUNK: usize = 2048;
/// Catch-up attempts before giving up: each failed pass means the
/// primary wrote mid-stream, so one quiescent instant suffices.
const MAX_ATTEMPTS: usize = 3;

/// What a peer said about a range, from a zero-cost probe (a `CatchUp`
/// at an end-of-stream cursor returns the final chunk immediately).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerStatus {
    /// The peer's replication epoch for the range.
    pub epoch: u64,
    /// Whether the peer currently serves the range as primary.
    pub primary: bool,
    /// The peer's `state_digest` over the range.
    pub digest: u32,
}

/// What one [`catch_up_range`] accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CatchUpReport {
    /// Histories now held for the range.
    pub records: usize,
    /// Spent-token keys now held for the range.
    pub tokens: usize,
    /// The epoch adopted from the peer.
    pub epoch: u64,
    /// The digest both sides now agree on.
    pub digest: u32,
    /// True iff the local state diverged and was wiped and rebuilt
    /// (false: already bit-identical, only the epoch was adopted).
    pub rebuilt: bool,
    /// Whether the peer served as primary.
    pub peer_primary: bool,
}

/// Serve one chunk of a range's catch-up stream from its directory.
/// Shared by [`crate::ReplicaNode`] and tests (which fake the wire but
/// must not fake the chunking).
pub fn catch_up_chunk(
    dir: &dyn Dir,
    epoch: u64,
    primary: bool,
    cursor: u64,
) -> orsp_storage::Result<Response> {
    let scan = scan_source(dir)?;
    let mut records: Vec<(RecordId, &orsp_server::StoredHistory)> =
        scan.store.iter().map(|(id, s)| (*id, s)).collect();
    records.sort_by_key(|(id, _)| *id.as_bytes());
    let mut tokens: Vec<[u8; 32]> = scan.spent_tokens.iter().copied().collect();
    tokens.sort_unstable();

    let total = records.len() as u64 + tokens.len() as u64;
    let mut pos = cursor.min(total);
    let mut out_records = Vec::new();
    while (pos as usize) < records.len() && out_records.len() < RECORDS_PER_CHUNK {
        let (id, stored) = &records[pos as usize];
        out_records.push(CatchRecord {
            record_id: *id,
            entity: stored.entity,
            interactions: stored.history.records().to_vec(),
        });
        pos += 1;
    }
    let mut out_tokens = Vec::new();
    if out_records.len() < RECORDS_PER_CHUNK {
        while pos < total && out_tokens.len() < TOKENS_PER_CHUNK {
            out_tokens.push(tokens[(pos - records.len() as u64) as usize]);
            pos += 1;
        }
    }
    let done = pos >= total;
    let digest = if done {
        state_digest(&scan.store, &IngestStats::default(), &scan.spent_tokens)
    } else {
        0
    };
    Ok(Response::CatchUpChunk {
        epoch,
        primary,
        done,
        digest,
        next_cursor: pos,
        records: out_records,
        tokens: out_tokens,
    })
}

/// Ask a peer where it stands on `range` without pulling any data: the
/// rejoin probe a restarting node runs before deciding its own role.
pub fn probe_range(peer: &dyn PeerLink, range: u32) -> Result<PeerStatus, ReplicaError> {
    match peer.call(&Request::CatchUp { range, cursor: u64::MAX })? {
        Response::CatchUpChunk { epoch, primary, done: true, digest, .. } => {
            Ok(PeerStatus { epoch, primary, digest })
        }
        Response::Unavailable { detail } => Err(ReplicaError::Net(NetError::Unavailable(detail))),
        Response::Error { detail } => Err(ReplicaError::Protocol(detail)),
        other => Err(ReplicaError::Protocol(format!("probe got {other:?}"))),
    }
}

/// Pull `range`'s full state from `peer` into `dir`, adopt the peer's
/// epoch, and prove the result bit-identical by `state_digest`.
///
/// If the local directory already digests identically, only the epoch
/// is adopted (and made durable by a checkpoint). Otherwise the
/// directory is wiped and rebuilt through the normal engine append
/// path, verified from the logs alone, then checkpointed — the exact
/// reshard discipline, so a crash anywhere in between is recoverable
/// (the next attempt finds a digest mismatch and rebuilds again).
pub fn catch_up_range(
    peer: &dyn PeerLink,
    range: u32,
    dir: Arc<dyn Dir>,
    options: StorageOptions,
) -> Result<CatchUpReport, ReplicaError> {
    let mut last = None;
    for _ in 0..MAX_ATTEMPTS {
        match attempt(peer, range, Arc::clone(&dir), options) {
            Err(ReplicaError::DigestMismatch { ours, theirs }) => {
                last = Some(ReplicaError::DigestMismatch { ours, theirs });
            }
            other => return other,
        }
    }
    Err(last.expect("at least one attempt ran"))
}

fn attempt(
    peer: &dyn PeerLink,
    range: u32,
    dir: Arc<dyn Dir>,
    options: StorageOptions,
) -> Result<CatchUpReport, ReplicaError> {
    // Pull the whole stream first; the final chunk's digest is the
    // contract every later step is checked against.
    let mut cursor = 0u64;
    let mut records: Vec<CatchRecord> = Vec::new();
    let mut tokens: Vec<[u8; 32]> = Vec::new();
    let (epoch, peer_primary, digest) = loop {
        match peer.call(&Request::CatchUp { range, cursor })? {
            Response::CatchUpChunk {
                epoch,
                primary,
                done,
                digest,
                next_cursor,
                records: r,
                tokens: t,
            } => {
                records.extend(r);
                tokens.extend(t);
                if done {
                    break (epoch, primary, digest);
                }
                if next_cursor <= cursor {
                    return Err(ReplicaError::Protocol(format!(
                        "catch-up cursor stuck at {cursor}"
                    )));
                }
                cursor = next_cursor;
            }
            Response::Unavailable { detail } => {
                return Err(ReplicaError::Net(NetError::Unavailable(detail)))
            }
            Response::Error { detail } => return Err(ReplicaError::Protocol(detail)),
            other => return Err(ReplicaError::Protocol(format!("catch-up got {other:?}"))),
        }
    };

    // Already identical? Adopt the epoch durably and stop — the common
    // rejoin-after-clean-shutdown case costs one recovery and a
    // checkpoint. Recovery (not a bare scan) so a virgin directory is
    // initialized instead of rejected for its missing manifest.
    let (engine, report) = StorageEngine::open(Arc::clone(&dir), options)?;
    let local_digest =
        state_digest(&report.store, &IngestStats::default(), &report.spent_tokens);
    if local_digest == digest {
        engine.set_epoch(epoch);
        engine.checkpoint(&report.store, &report.stats, &report.spent_tokens)?;
        return Ok(CatchUpReport {
            records: report.store.len(),
            tokens: report.spent_tokens.len(),
            epoch,
            digest,
            rebuilt: false,
            peer_primary,
        });
    }

    // Diverged: wipe and rebuild through the normal append path.
    drop(engine);
    for name in dir.list()? {
        dir.delete(&name)?;
    }
    let (engine, _) = StorageEngine::open(Arc::clone(&dir), options)?;
    for rec in &records {
        for interaction in &rec.interactions {
            engine
                .append(&WalEntry {
                    record_id: rec.record_id,
                    entity: rec.entity,
                    interaction: *interaction,
                })
                .map_err(ReplicaError::Storage)?;
        }
    }
    for key in &tokens {
        engine.append_token_spend(key).map_err(ReplicaError::Storage)?;
    }
    engine.sync_all().map_err(ReplicaError::Storage)?;

    // Verify from the logs alone before trusting anything to a
    // checkpoint: reopen the directory as recovery would and compare.
    let rebuilt = scan_source(dir.as_ref())?;
    let ours = state_digest(&rebuilt.store, &IngestStats::default(), &rebuilt.spent_tokens);
    if ours != digest {
        return Err(ReplicaError::DigestMismatch { ours, theirs: digest });
    }
    engine.set_epoch(epoch);
    engine.checkpoint(&rebuilt.store, &rebuilt.stats, &rebuilt.spent_tokens)?;
    Ok(CatchUpReport {
        records: rebuilt.store.len(),
        tokens: rebuilt.spent_tokens.len(),
        epoch,
        digest,
        rebuilt: true,
        peer_primary,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use orsp_storage::{FsyncPolicy, SimDir};
    use orsp_types::{EntityId, Interaction, InteractionKind, SimDuration, Timestamp};
    use std::sync::Mutex;

    fn rid(n: u8) -> RecordId {
        RecordId::from_bytes([n; 32])
    }

    fn rid16(n: u16) -> RecordId {
        let mut bytes = [0u8; 32];
        bytes[..2].copy_from_slice(&n.to_le_bytes());
        RecordId::from_bytes(bytes)
    }

    fn visit(t: i64) -> Interaction {
        Interaction::solo(
            InteractionKind::Visit,
            Timestamp::from_seconds(t),
            SimDuration::minutes(20),
            150.0,
        )
    }

    fn opts() -> StorageOptions {
        StorageOptions {
            shard_count: 2,
            max_segment_bytes: 512,
            fsync: FsyncPolicy::Always,
            ..StorageOptions::default()
        }
    }

    /// Populate a "primary" directory with a few histories and tokens.
    fn primary_dir(n: u8) -> SimDir {
        let dir = SimDir::new();
        let (engine, _) =
            StorageEngine::open(Arc::new(dir.clone()) as Arc<dyn Dir>, opts()).unwrap();
        for i in 0..n {
            engine
                .append(&WalEntry {
                    record_id: rid(i),
                    entity: EntityId::new(u64::from(i % 3)),
                    interaction: visit(i64::from(i) * 100),
                })
                .unwrap();
            engine
                .append(&WalEntry {
                    record_id: rid(i),
                    entity: EntityId::new(u64::from(i % 3)),
                    interaction: visit(i64::from(i) * 100 + 50),
                })
                .unwrap();
            engine.append_token_spend(&[i; 32]).unwrap();
        }
        engine.sync_all().unwrap();
        dir
    }

    /// A peer serving real chunks from a directory over a fake wire.
    struct DirPeer {
        dir: SimDir,
        epoch: u64,
        calls: Mutex<u64>,
    }

    impl PeerLink for DirPeer {
        fn call(&self, request: &Request) -> Result<Response, NetError> {
            *self.calls.lock().unwrap() += 1;
            match request {
                Request::CatchUp { cursor, .. } => {
                    Ok(catch_up_chunk(&self.dir, self.epoch, true, *cursor)
                        .expect("serve chunk"))
                }
                other => panic!("unexpected request {other:?}"),
            }
        }

        fn label(&self) -> String {
            "dir-peer".into()
        }
    }

    fn digest_of(dir: &SimDir) -> u32 {
        let scan = scan_source(dir).unwrap();
        state_digest(&scan.store, &IngestStats::default(), &scan.spent_tokens)
    }

    #[test]
    fn probe_reads_status_without_pulling_data() {
        let peer = DirPeer { dir: primary_dir(9), epoch: 4, calls: Mutex::new(0) };
        let status = probe_range(&peer, 0).unwrap();
        assert_eq!(status.epoch, 4);
        assert!(status.primary);
        assert_eq!(status.digest, digest_of(&peer.dir));
        assert_eq!(*peer.calls.lock().unwrap(), 1, "a probe is one round trip");
    }

    #[test]
    fn empty_follower_rebuilds_bit_identically() {
        let peer = DirPeer { dir: primary_dir(12), epoch: 7, calls: Mutex::new(0) };
        let follower = SimDir::new();
        let report = catch_up_range(
            &peer,
            0,
            Arc::new(follower.clone()) as Arc<dyn Dir>,
            opts(),
        )
        .unwrap();
        assert!(report.rebuilt);
        assert_eq!(report.records, 12);
        assert_eq!(report.tokens, 12);
        assert_eq!(report.epoch, 7);
        assert_eq!(digest_of(&follower), digest_of(&peer.dir), "bit-identical state");
        // The adopted epoch is durable: recovery reads it back.
        let (_, recovered) =
            StorageEngine::open(Arc::new(follower) as Arc<dyn Dir>, opts()).unwrap();
        assert_eq!(recovered.epoch, 7);
    }

    #[test]
    fn identical_follower_adopts_epoch_without_rebuilding() {
        let peer = DirPeer { dir: primary_dir(6), epoch: 3, calls: Mutex::new(0) };
        // The follower already holds the identical state (a clone of
        // the same simulated disk).
        let follower = peer.dir.reopen();
        let report =
            catch_up_range(&peer, 0, Arc::new(follower.clone()) as Arc<dyn Dir>, opts())
                .unwrap();
        assert!(!report.rebuilt, "identical state must not be wiped");
        assert_eq!(report.epoch, 3);
        let (_, recovered) =
            StorageEngine::open(Arc::new(follower) as Arc<dyn Dir>, opts()).unwrap();
        assert_eq!(recovered.epoch, 3, "epoch adoption alone is still made durable");
    }

    #[test]
    fn diverged_follower_is_wiped_not_merged() {
        let peer = DirPeer { dir: primary_dir(5), epoch: 2, calls: Mutex::new(0) };
        // A follower with different (stale-primary) state: same ids,
        // extra unreplicated record.
        let follower = SimDir::new();
        {
            let (engine, _) =
                StorageEngine::open(Arc::new(follower.clone()) as Arc<dyn Dir>, opts())
                    .unwrap();
            engine
                .append(&WalEntry {
                    record_id: rid(200),
                    entity: EntityId::new(9),
                    interaction: visit(10),
                })
                .unwrap();
            engine.sync_all().unwrap();
        }
        let report =
            catch_up_range(&peer, 0, Arc::new(follower.clone()) as Arc<dyn Dir>, opts())
                .unwrap();
        assert!(report.rebuilt);
        assert_eq!(digest_of(&follower), digest_of(&peer.dir));
        let scan = scan_source(&follower).unwrap();
        assert!(
            scan.store.get(&rid(200)).is_none(),
            "the unreplicated record is gone — it was never acked under the new epoch"
        );
    }

    #[test]
    fn chunked_stream_covers_large_ranges() {
        // More records than one chunk holds: the cursor must walk the
        // whole sorted sequence, records before tokens.
        let n = RECORDS_PER_CHUNK as u16 + 44;
        let dir = SimDir::new();
        {
            let (engine, _) =
                StorageEngine::open(Arc::new(dir.clone()) as Arc<dyn Dir>, opts()).unwrap();
            for i in 0..n {
                engine
                    .append(&WalEntry {
                        record_id: rid16(i),
                        entity: EntityId::new(u64::from(i % 3)),
                        interaction: visit(i64::from(i) * 100),
                    })
                    .unwrap();
                let mut key = [0u8; 32];
                key[..2].copy_from_slice(&i.to_le_bytes());
                engine.append_token_spend(&key).unwrap();
            }
            engine.sync_all().unwrap();
        }
        let peer = DirPeer { dir, epoch: 1, calls: Mutex::new(0) };
        let follower = SimDir::new();
        let report =
            catch_up_range(&peer, 0, Arc::new(follower.clone()) as Arc<dyn Dir>, opts())
                .unwrap();
        assert_eq!(report.records, usize::from(n));
        assert_eq!(report.tokens, usize::from(n));
        assert!(
            *peer.calls.lock().unwrap() >= 2,
            "{n} histories cannot fit one {RECORDS_PER_CHUNK}-record chunk"
        );
        assert_eq!(digest_of(&follower), digest_of(&peer.dir));
    }
}

//! Power cuts mid-catch-up: the follower-side crash matrix.
//!
//! Catch-up rebuilds a replica through the normal engine append path —
//! wipe, append, verify from logs, checkpoint — precisely so that a
//! power cut at *any* instant leaves a directory the next attempt
//! either recovers or wipes again, never a half-trusted checkpoint.
//! These sweeps walk the kill line over every byte (strided) the
//! follower writes during a catch-up, restore power, catch up again,
//! and require the final state to be `state_digest` bit-identical to
//! the primary with the adopted epoch durable.

use orsp_replica::{catch_up_chunk, catch_up_range, PeerLink};
use orsp_net::{NetError, Request, Response};
use orsp_server::{IngestStats, WalEntry};
use orsp_storage::{
    scan_source, state_digest, Dir, FaultPlan, FsyncPolicy, SimDir, StorageEngine,
    StorageOptions,
};
use orsp_types::{EntityId, Interaction, InteractionKind, RecordId, SimDuration, Timestamp};
use std::sync::Arc;

fn rid(n: u8) -> RecordId {
    RecordId::from_bytes([n; 32])
}

fn visit(t: i64) -> Interaction {
    Interaction::solo(
        InteractionKind::Visit,
        Timestamp::from_seconds(t),
        SimDuration::minutes(20),
        150.0,
    )
}

fn opts() -> StorageOptions {
    StorageOptions {
        shard_count: 2,
        max_segment_bytes: 512,
        fsync: FsyncPolicy::Always,
        ..StorageOptions::default()
    }
}

/// A primary's directory: `n` two-interaction histories and `n` spent
/// tokens, fsynced.
fn primary_dir(n: u8) -> SimDir {
    let dir = SimDir::new();
    let (engine, _) =
        StorageEngine::open(Arc::new(dir.clone()) as Arc<dyn Dir>, opts()).unwrap();
    for i in 0..n {
        for offset in [0, 50] {
            engine
                .append(&WalEntry {
                    record_id: rid(i),
                    entity: EntityId::new(u64::from(i % 3)),
                    interaction: visit(i64::from(i) * 100 + offset),
                })
                .unwrap();
        }
        engine.append_token_spend(&[i; 32]).unwrap();
    }
    engine.sync_all().unwrap();
    dir
}

/// A peer serving real catch-up chunks from a directory — the wire is
/// faked, the chunking and digests are not.
struct DirPeer {
    dir: SimDir,
    epoch: u64,
}

impl PeerLink for DirPeer {
    fn call(&self, request: &Request) -> Result<Response, NetError> {
        match request {
            Request::CatchUp { cursor, .. } => {
                Ok(catch_up_chunk(&self.dir, self.epoch, true, *cursor).expect("serve chunk"))
            }
            other => panic!("unexpected request {other:?}"),
        }
    }

    fn label(&self) -> String {
        "dir-peer".into()
    }
}

fn digest_of(dir: &SimDir) -> u32 {
    let scan = scan_source(dir).unwrap();
    state_digest(&scan.store, &IngestStats::default(), &scan.spent_tokens)
}

#[test]
fn power_cut_at_any_byte_mid_catch_up_converges_on_retry() {
    let peer = DirPeer { dir: primary_dir(24), epoch: 5 };
    let want = digest_of(&peer.dir);

    // Clean run sizes the kill line: every byte a full catch-up writes
    // (manifest, segments, spend markers, epoch checkpoint — all of it).
    let clean = SimDir::new();
    let report =
        catch_up_range(&peer, 0, Arc::new(clean.clone()) as Arc<dyn Dir>, opts()).unwrap();
    assert!(report.rebuilt);
    assert_eq!(report.digest, want);
    let total = clean.bytes_written();
    assert!(total > 0);

    for cut in (0..=total).step_by(37) {
        let follower = SimDir::with_plan(FaultPlan::crash_at(cut));
        // The cut may land anywhere: engine open, appends, the
        // verification scan, the epoch checkpoint. Late cuts may not
        // fire at all — then the first attempt simply succeeds.
        let first = catch_up_range(&peer, 0, Arc::new(follower.clone()) as Arc<dyn Dir>, opts());

        // Power restored: surviving bytes only, fault plan cleared.
        let restored = follower.reopen();
        let report =
            catch_up_range(&peer, 0, Arc::new(restored.clone()) as Arc<dyn Dir>, opts())
                .unwrap_or_else(|e| {
                    panic!(
                        "cut at byte {cut}: catch-up after power restore failed: {e} \
                         (first attempt survived: {})",
                        first.is_ok()
                    )
                });
        assert_eq!(report.epoch, 5, "cut at byte {cut}: epoch not adopted");
        assert_eq!(report.digest, want, "cut at byte {cut}: digests disagree");
        assert_eq!(
            digest_of(&restored),
            want,
            "cut at byte {cut}: rebuilt state is not bit-identical to the primary"
        );
        // The adopted epoch survived its checkpoint: a reboot reads it
        // back, so a replayed rejoin re-fences at the right epoch.
        let (_, recovered) =
            StorageEngine::open(Arc::new(restored.reopen()) as Arc<dyn Dir>, opts()).unwrap();
        assert_eq!(recovered.epoch, 5, "cut at byte {cut}: adopted epoch not durable");
    }
}

#[test]
fn power_cut_while_replacing_diverged_state_never_resurrects_it() {
    // The dangerous variant: the follower is a deposed primary holding
    // unreplicated (never-acked-under-the-new-epoch) writes. Catch-up
    // wipes and rebuilds; a power cut mid-replacement must leave no
    // state in which the divergent record survives a successful
    // catch-up.
    let peer = DirPeer { dir: primary_dir(12), epoch: 9 };
    let want = digest_of(&peer.dir);
    let diverged = || {
        let dir = SimDir::new();
        let (engine, _) =
            StorageEngine::open(Arc::new(dir.clone()) as Arc<dyn Dir>, opts()).unwrap();
        engine
            .append(&WalEntry {
                record_id: rid(200),
                entity: EntityId::new(7),
                interaction: visit(10),
            })
            .unwrap();
        engine.append_token_spend(&[0xEE; 32]).unwrap();
        engine.sync_all().unwrap();
        dir
    };

    // Clean replacement sizes the kill line (reopen resets the byte
    // counter, so the divergence seeding is not on it).
    let clean = diverged().reopen();
    let report =
        catch_up_range(&peer, 0, Arc::new(clean.clone()) as Arc<dyn Dir>, opts()).unwrap();
    assert!(report.rebuilt);
    let total = clean.bytes_written();
    assert!(total > 0);

    for cut in (0..=total).step_by(23) {
        let follower = diverged().reopen_with(FaultPlan::crash_at(cut));
        let _ = catch_up_range(&peer, 0, Arc::new(follower.clone()) as Arc<dyn Dir>, opts());

        let restored = follower.reopen();
        let report =
            catch_up_range(&peer, 0, Arc::new(restored.clone()) as Arc<dyn Dir>, opts())
                .unwrap_or_else(|e| {
                    panic!("cut at byte {cut}: catch-up after power restore failed: {e}")
                });
        assert_eq!(report.digest, want, "cut at byte {cut}");
        let scan = scan_source(&restored).unwrap();
        assert!(
            scan.store.get(&rid(200)).is_none(),
            "cut at byte {cut}: the divergent record survived replacement"
        );
        assert!(
            !scan.spent_tokens.contains(&[0xEE; 32]),
            "cut at byte {cut}: the divergent spend survived replacement"
        );
    }
}

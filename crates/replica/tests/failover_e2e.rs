//! Kill the primary, lose nothing: the acceptance test for per-range
//! replication.
//!
//! Three `orsp-replicad` processes at replication factor 2, a real
//! `ProxyService` in front, and the standard client half of the
//! pipeline driving load over TCP — then SIGKILL backend 0 (range 0's
//! born primary) mid-run. The run must finish without a client-visible
//! outage: the proxy promotes range 0's follower in place and reroutes.
//!
//! What "zero lost acked uploads" means here, precisely: every upload
//! the cluster acknowledged is in the store afterwards. The one window
//! sync replication leaves open is an *ack lost in flight* — a batch
//! replicated to the follower whose `UploadAccepted` died with the
//! primary; the client's retry then hits the duplicate ledger and
//! counts a rejection instead. So accepted may dip below the single-node
//! run by at most the in-flight window while accepted + rejected stays
//! exactly equal — and every read (Search, FetchAggregate) must still
//! answer bit-identically to a single node holding all the data,
//! because the records themselves are all there.
//!
//! Afterwards the killed node restarts on the same directory, discovers
//! the newer primary for its born range (epoch fencing), demotes itself
//! and catches up; the final directories are proven `state_digest`
//! bit-identical offline.

use orsp_core::{listings, run_client_side, service_for_world, PipelineConfig, RspPipeline};
use orsp_net::{
    ClientConfig, InMemoryTransport, NetPool, NetServer, Request, Response, ServerConfig,
    TcpTransport, Transport,
};
use orsp_proxy::{BackendLink, ProxyConfig, ProxyService};
use orsp_search::SearchQuery;
use orsp_server::IngestStats;
use orsp_storage::{scan_source, state_digest, FsDir};
use orsp_types::SimDuration;
use orsp_world::{World, WorldConfig};
use std::io::BufRead;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

const CLUSTER: usize = 3;
/// Forwards backend 0 must have served before the SIGKILL lands: enough
/// that acked-then-killed state exists, early enough that plenty of
/// range-0 load arrives *after* the kill and exercises write failover.
const KILL_AFTER_FORWARDS: u64 = 25;

/// Same world as the proxy end-to-end suite — and the same seed every
/// replicad child derives, so the whole cluster shares one mint.
fn small_world() -> World {
    let cfg = WorldConfig {
        users_per_zipcode: 50,
        horizon: SimDuration::days(240),
        ..WorldConfig::tiny(73)
    };
    World::generate(cfg).unwrap()
}

fn fast_client() -> ClientConfig {
    ClientConfig {
        connect_timeout: Duration::from_secs(5),
        read_timeout: Duration::from_secs(5),
        write_timeout: Duration::from_secs(5),
        max_retries: 2,
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(8),
        ..ClientConfig::default()
    }
}

fn spawn_node(dir: &Path, node: usize, listen: &str, peers: &[SocketAddr]) -> Child {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_orsp-replicad"));
    cmd.arg("--data-dir")
        .arg(dir)
        .args(["--listen", listen])
        .args(["--node", &node.to_string()])
        .args(["--cluster-size", &CLUSTER.to_string()])
        .args(["--replication-factor", "2"])
        .args(["--replication", "sync"])
        .args(["--seed", "73"])
        .args(["--users-per-zipcode", "50"])
        .args(["--horizon-days", "240"]);
    for peer in peers {
        cmd.args(["--peer", &peer.to_string()]);
    }
    cmd.stdin(Stdio::piped()).stdout(Stdio::piped()).stderr(Stdio::inherit());
    cmd.spawn().expect("spawn orsp-replicad")
}

/// Block until the node answers a Ping (world generation and recovery
/// happen before it binds, so allow a generous deadline).
fn wait_ready(addr: SocketAddr) {
    let deadline = Instant::now() + Duration::from_secs(180);
    loop {
        if let Ok(transport) = TcpTransport::connect(addr, fast_client()) {
            if matches!(transport.call(&Request::Ping), Ok(Response::Pong)) {
                return;
            }
        }
        assert!(Instant::now() < deadline, "node at {addr} never became ready");
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn digest_of_dir(path: &Path) -> (u32, usize) {
    let scan = scan_source(&FsDir::open(path).unwrap())
        .unwrap_or_else(|e| panic!("scan {}: {e}", path.display()));
    let digest = state_digest(&scan.store, &IngestStats::default(), &scan.spent_tokens);
    (digest, scan.store.len())
}

#[test]
fn sigkill_of_the_primary_mid_load_loses_no_acked_upload() {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join("failover-e2e");
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).unwrap();
    let dirs: Vec<PathBuf> = (0..CLUSTER).map(|i| root.join(format!("node{i}"))).collect();

    let world = small_world();
    let config = PipelineConfig::default();
    let pipeline = RspPipeline::new(config.clone());

    // Reference: one in-memory node holding the full store. Its mint is
    // the cluster's mint (same world, same seed).
    let single = service_for_world(&world, &config);
    let public = single.mint_public_key();
    let single_transport = InMemoryTransport::new(single);
    let single_run = run_client_side(&pipeline, &world, &public, &single_transport)
        .expect("single-node client half");

    // Pre-pick three loopback ports so every child can be handed the
    // full peer list up front.
    let reserved: Vec<std::net::TcpListener> = (0..CLUSTER)
        .map(|_| std::net::TcpListener::bind("127.0.0.1:0").unwrap())
        .collect();
    let addrs: Vec<SocketAddr> = reserved.iter().map(|l| l.local_addr().unwrap()).collect();
    drop(reserved);

    let mut children: Vec<Child> = (0..CLUSTER)
        .map(|i| spawn_node(&dirs[i], i, &addrs[i].to_string(), &addrs))
        .collect();
    for &addr in &addrs {
        wait_ready(addr);
    }

    // The proxy, replication-aware, in-process so its routing table and
    // counters are directly inspectable.
    let links: Vec<Arc<dyn BackendLink>> = addrs
        .iter()
        .map(|&addr| Arc::new(NetPool::new(addr, fast_client(), 2)) as Arc<dyn BackendLink>)
        .collect();
    let proxy = Arc::new(ProxyService::new(
        links,
        ProxyConfig { replication_factor: 2, ..ProxyConfig::default() },
    ));
    let proxy_server = NetServer::bind("127.0.0.1:0", proxy.clone(), ServerConfig::default())
        .expect("bind proxy");
    let transport =
        TcpTransport::connect(proxy_server.local_addr(), fast_client()).expect("connect proxy");

    // The killer: once backend 0 has served a handful of forwards (it
    // has acked state to lose), SIGKILL it mid-load.
    let victim = children.remove(0);
    let killer = {
        let proxy = Arc::clone(&proxy);
        std::thread::spawn(move || {
            let mut victim = victim;
            let deadline = Instant::now() + Duration::from_secs(300);
            while Instant::now() < deadline {
                let forwarded = proxy
                    .obs()
                    .snapshot()
                    .counter("proxy_backend0_forwarded_total")
                    .unwrap_or(0);
                if forwarded >= KILL_AFTER_FORWARDS {
                    break;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            victim.kill().expect("SIGKILL backend 0");
            let _ = victim.wait();
        })
    };

    // The full client half of the pipeline must succeed across the
    // kill: the proxy masks the loss by promoting the follower.
    let run = run_client_side(&pipeline, &world, &public, &transport)
        .expect("client half must survive the primary's death");
    killer.join().expect("killer thread");

    // Admission bookkeeping. Every attempt resolved (sum is exact); the
    // only divergence allowed is the ack-lost-in-flight window, where a
    // stored-but-unacked upload's retry counts as a duplicate rejection
    // instead of an accept. The client is sequential, so that window is
    // a handful of uploads at most.
    assert!(run.uploads_accepted > 100, "accepted only {}", run.uploads_accepted);
    assert_eq!(
        run.uploads_accepted + run.uploads_rejected,
        single_run.uploads_accepted + single_run.uploads_rejected,
        "an upload vanished without an outcome"
    );
    assert!(
        run.uploads_accepted <= single_run.uploads_accepted,
        "cluster accepted more than the reference ({} > {})",
        run.uploads_accepted,
        single_run.uploads_accepted
    );
    let ack_window = single_run.uploads_accepted - run.uploads_accepted;
    assert!(
        ack_window <= 8,
        "{ack_window} accepts became rejects — more than an in-flight ack window; \
         acked uploads were lost"
    );

    // Reads after failover answer bit-identically to the single node
    // that holds every record — the zero-lost-acked-writes proof at the
    // public surface, floor and all.
    let mut pairs: Vec<(u32, orsp_types::Category)> =
        listings(&world).iter().map(|l| (l.zipcode, l.category)).collect();
    pairs.sort_by_key(|(zip, cat)| (*zip, format!("{cat:?}")));
    pairs.dedup();
    let mut hits = 0;
    for (zipcode, category) in pairs {
        let request = Request::Search { query: SearchQuery { zipcode, category } };
        let via_cluster = transport.call(&request).expect("cluster search");
        let via_single = single_transport.call(&request).expect("single search");
        assert_eq!(via_cluster, via_single, "search({zipcode}, {category:?}) diverged");
        if let Response::SearchResults { hits: h } = &via_cluster {
            hits += h.len();
        }
    }
    assert!(hits > 0, "the world's listings produced no search hits");
    for listing in listings(&world) {
        let request = Request::FetchAggregate { entity: listing.id };
        assert_eq!(
            transport.call(&request).expect("cluster aggregate"),
            single_transport.call(&request).expect("single aggregate"),
            "aggregate for {:?} diverged after failover",
            listing.id,
        );
    }

    // The proxy observed and survived the loss: range 0 now routes to
    // its follower (node 1) at a bumped epoch.
    let snapshot = proxy.obs().snapshot();
    assert!(
        snapshot.counter("proxy_promotions_total").unwrap_or(0) >= 1,
        "no promotion recorded"
    );
    let failovers: u64 = (0..CLUSTER)
        .map(|i| {
            snapshot.counter(&format!("proxy_backend{i}_read_failover_total")).unwrap_or(0)
                + snapshot
                    .counter(&format!("proxy_backend{i}_write_failover_total"))
                    .unwrap_or(0)
        })
        .sum();
    assert!(failovers >= 1, "no failover counted against the dead backend");
    assert_eq!(
        snapshot.gauge("proxy_range0_primary"),
        Some(1),
        "range 0 must be served by its follower"
    );
    assert!(snapshot.gauge("proxy_range0_epoch").unwrap_or(0) >= 1, "epoch never bumped");

    // Done with the front door; all further traffic is cluster-internal.
    drop(transport);
    proxy_server.shutdown();
    drop(proxy);

    // The killed node rejoins on the same directory (fresh port — it
    // only dials out). It must find the newer primary for its born
    // range, demote itself, and catch up to a proven-identical state.
    let mut rejoined = spawn_node(&dirs[0], 0, "127.0.0.1:0", &addrs);
    let stdout = rejoined.stdout.take().expect("rejoined stdout piped");
    let (lines_tx, lines_rx) = std::sync::mpsc::channel::<String>();
    let reader = std::thread::spawn(move || {
        for line in std::io::BufReader::new(stdout).lines() {
            let Ok(line) = line else { break };
            if lines_tx.send(line).is_err() {
                break;
            }
        }
    });
    let deadline = Instant::now() + Duration::from_secs(180);
    let mut seen = Vec::new();
    let mut caught_up = false;
    while Instant::now() < deadline {
        let wait = deadline.saturating_duration_since(Instant::now());
        let Ok(line) = lines_rx.recv_timeout(wait) else { break };
        let done = line.contains("caught up");
        seen.push(line);
        if done {
            caught_up = true;
            break;
        }
    }
    assert!(
        caught_up,
        "rejoined node never reported catching up; its output so far:\n{}",
        seen.join("\n")
    );

    // Drain the cluster: close every stdin, wait for clean exits (the
    // drain checkpoints each held range).
    drop(rejoined.stdin.take());
    for child in &mut children {
        drop(child.stdin.take());
    }
    let status = rejoined.wait().expect("wait rejoined node");
    assert!(status.success(), "rejoined node exited {status}");
    for mut child in children {
        let status = child.wait().expect("wait backend");
        assert!(status.success(), "backend exited {status}");
    }
    reader.join().expect("stdout reader");

    // The offline proof: the rejoined follower's range-0 directory is
    // state_digest bit-identical to the promoted primary's (node 1
    // follows range 0 in its `follow-r0` subdirectory).
    let (rejoined_digest, rejoined_records) = digest_of_dir(&dirs[0]);
    let (primary_digest, primary_records) = digest_of_dir(&dirs[1].join("follow-r0"));
    assert!(primary_records > 0, "range 0 ingested nothing — the test proved nothing");
    assert_eq!(rejoined_records, primary_records);
    assert_eq!(
        rejoined_digest, primary_digest,
        "rejoined replica is not bit-identical to the promoted primary"
    );
}

//! Measurement calibration: the synthetic crawl must reproduce the
//! paper's §2 statistics (Table 1, Fig 1a–c) from generated data, within
//! tolerance bands.

use orsp_measure::{Crawler, EngagementStudy, ServiceCatalog};
use orsp_types::ServiceKind;

#[test]
fn table1_totals_and_categories() {
    for (service, entities_target, categories_target) in [
        (ServiceKind::Yelp, 24_417.0, 9),
        (ServiceKind::AngiesList, 26_066.0, 24),
        (ServiceKind::Healthgrades, 24_922.0, 4),
    ] {
        let report = Crawler::crawl(&ServiceCatalog::generate(service, 42));
        assert_eq!(report.categories, categories_target);
        let err = (report.entities as f64 - entities_target).abs() / entities_target;
        assert!(err < 0.15, "{service}: {} vs {entities_target}", report.entities);
    }
}

#[test]
fn fig1a_median_reviews_ordering_and_bands() {
    let reports = Crawler::crawl_all(42);
    let median = |svc: ServiceKind| {
        reports.iter().find(|r| r.service == svc).unwrap().median_reviews()
    };
    let yelp = median(ServiceKind::Yelp);
    let angies = median(ServiceKind::AngiesList);
    let hg = median(ServiceKind::Healthgrades);
    // Paper: 25 / 8 / 5.
    assert!((18.0..=32.0).contains(&yelp), "yelp {yelp}");
    assert!((5.0..=11.0).contains(&angies), "angies {angies}");
    assert!((3.0..=7.0).contains(&hg), "hg {hg}");
    assert!(yelp > angies && angies > hg, "ordering preserved");
}

#[test]
fn fig1b_rich_results_per_query() {
    let reports = Crawler::crawl_all(42);
    let median = |svc: ServiceKind| {
        reports.iter().find(|r| r.service == svc).unwrap().median_rich_results()
    };
    // Paper: 12 / 2 / 1.
    assert!((6.0..=20.0).contains(&median(ServiceKind::Yelp)));
    assert!((1.0..=4.0).contains(&median(ServiceKind::AngiesList)));
    assert!(median(ServiceKind::Healthgrades) <= 2.0);
}

#[test]
fn fig1b_rich_results_are_small_fraction_of_results() {
    let reports = Crawler::crawl_all(42);
    for r in &reports {
        assert!(
            r.median_rich_fraction() < 0.3,
            "{}: {}",
            r.service,
            r.median_rich_fraction()
        );
    }
}

#[test]
fn fig1c_order_of_magnitude_discrepancy() {
    for platform in ServiceKind::INTERACTION_PLATFORMS {
        let study = EngagementStudy::generate(platform, 42);
        assert_eq!(study.entities.len(), 1_000, "paper's sample size");
        assert!(
            study.median_discrepancy() >= 10.0,
            "{platform}: {}",
            study.median_discrepancy()
        );
    }
}

#[test]
fn calibration_is_robust_across_seeds() {
    // The calibration claims hold for any seed, not one lucky draw.
    for seed in [1u64, 99, 12345] {
        let reports = Crawler::crawl_all(seed);
        let yelp = reports.iter().find(|r| r.service == ServiceKind::Yelp).unwrap();
        let hg = reports
            .iter()
            .find(|r| r.service == ServiceKind::Healthgrades)
            .unwrap();
        assert!(yelp.median_reviews() > hg.median_reviews(), "seed {seed}");
        assert!(
            yelp.median_rich_results() > hg.median_rich_results(),
            "seed {seed}"
        );
    }
}

//! Crash a *served* RSP at an injected fault point, recover its data
//! directory, and get back exactly the accepted-upload prefix.
//!
//! This is the tentpole invariant at system scope, not storage scope:
//! real wire requests (blind-token RPCs, uploads through the codec) hit
//! a service whose durability sink sits on a fault-injected simulated
//! disk. The disk dies mid-run; the test then reopens the directory the
//! way a restarted daemon would and checks the recovered store against
//! the uploads the service actually acknowledged — every `UploadAccepted`
//! durable, nothing else resurrected.

use orsp_core::{run_client_side, service_for_world_recovered, PipelineConfig, RspPipeline};
use orsp_net::{InMemoryTransport, NetError};
use orsp_server::{HistoryStore, IngestService, WalEntry, WalSink};
use orsp_storage::{FaultPlan, FsyncPolicy, SimDir, StorageEngine, StorageOptions};
use orsp_types::SimDuration;
use orsp_world::{World, WorldConfig};
use std::sync::{Arc, Mutex};

fn small_world() -> World {
    let cfg = WorldConfig {
        users_per_zipcode: 70,
        horizon: SimDuration::days(300),
        ..WorldConfig::tiny(71)
    };
    World::generate(cfg).unwrap()
}

fn storage_options() -> StorageOptions {
    StorageOptions {
        shard_count: 2,
        max_segment_bytes: 1 << 16,
        fsync: FsyncPolicy::Always,
        ..StorageOptions::default()
    }
}

/// Forwards to the engine and remembers every entry the engine durably
/// acknowledged — the test's ground truth for "the accepted prefix".
struct RecordingSink {
    engine: StorageEngine,
    logged: Mutex<Vec<WalEntry>>,
}

impl WalSink for RecordingSink {
    fn log_append(&self, entry: &WalEntry) -> orsp_types::Result<()> {
        self.engine.log_append(entry)?;
        self.logged.lock().unwrap().push(*entry);
        Ok(())
    }
}

#[test]
fn served_run_killed_mid_flight_recovers_the_acknowledged_prefix() {
    let world = small_world();
    let config = PipelineConfig::default();
    let pipeline = RspPipeline::new(config.clone());

    // A disk that dies after ~8 KiB of log writes — mid-upload-stream.
    let dir = SimDir::with_plan(FaultPlan::crash_at(8_192));
    let (engine, report) =
        StorageEngine::open(Arc::new(dir.clone()), storage_options()).unwrap();
    assert_eq!(report.records_replayed, 0);
    let sink = Arc::new(RecordingSink { engine, logged: Mutex::new(Vec::new()) });

    let service = service_for_world_recovered(
        &world,
        &config,
        IngestService::new(),
        Some(sink.clone() as Arc<dyn WalSink>),
    );
    let public = service.mint_public_key();
    let transport = InMemoryTransport::new(service);

    // The client half runs until the durability failure surfaces as a
    // wire-level `Error` response — the moment the daemon "dies".
    let run = run_client_side(&pipeline, &world, &public, &transport);
    match run {
        Err(NetError::Unexpected(detail)) => {
            assert!(detail.contains("durability"), "died for the wrong reason: {detail}")
        }
        Err(other) => panic!("died for the wrong reason: {other}"),
        Ok(run) => panic!(
            "the crash budget never triggered: {} uploads all accepted — \
             lower crash_after_bytes",
            run.uploads_accepted
        ),
    }
    let acknowledged = sink.logged.lock().unwrap().clone();
    assert!(
        acknowledged.len() > 20,
        "want a meaningful accepted prefix before the crash, got {}",
        acknowledged.len()
    );

    // Reboot the machine; recover the data dir like a restarted daemon.
    let (_, recovered) =
        StorageEngine::open(Arc::new(dir.reopen()), storage_options()).unwrap();

    let mut reference = HistoryStore::new();
    for e in &acknowledged {
        reference.append(e.record_id, e.entity, e.interaction).unwrap();
    }
    assert_eq!(recovered.records_replayed as usize, acknowledged.len());
    assert_eq!(recovered.stats.accepted as usize, acknowledged.len());
    assert_eq!(recovered.store.len(), reference.len());
    for (id, stored) in reference.iter() {
        let other = recovered
            .store
            .iter()
            .find(|(other_id, _)| *other_id == id)
            .unwrap_or_else(|| panic!("acknowledged record {id:?} missing after recovery"))
            .1;
        assert_eq!(other, stored, "record {id:?} differs after recovery");
    }
}

#[test]
fn recovered_service_resumes_serving_with_the_recovered_store() {
    let world = small_world();
    let config = PipelineConfig::default();
    let pipeline = RspPipeline::new(config.clone());

    // Phase 1: a clean served run over a durable directory.
    let dir = SimDir::new();
    let (engine, _) = StorageEngine::open(Arc::new(dir.clone()), storage_options()).unwrap();
    let sink = Arc::new(RecordingSink { engine, logged: Mutex::new(Vec::new()) });
    let service = service_for_world_recovered(
        &world,
        &config,
        IngestService::new(),
        Some(sink.clone() as Arc<dyn WalSink>),
    );
    let public = service.mint_public_key();
    let transport = InMemoryTransport::new(service);
    let run = run_client_side(&pipeline, &world, &public, &transport).expect("clean run");
    assert!(run.uploads_accepted > 100);
    let live_stats = transport.service().ingest_stats();

    // Phase 2: "restart" — recover and stand up a service on the result.
    let (_, recovered) =
        StorageEngine::open(Arc::new(dir.reopen()), storage_options()).unwrap();
    assert_eq!(recovered.stats.accepted, run.uploads_accepted);
    let resumed = service_for_world_recovered(
        &world,
        &config,
        IngestService::from_parts(recovered.store, recovered.stats),
        None,
    );
    assert_eq!(resumed.ingest_stats().accepted, live_stats.accepted);
    // Reject counters are checkpoint-scoped by design (rejections are
    // never logged); with no checkpoint in this run they restart at 0.
    assert_eq!(resumed.ingest_stats().rejected(), 0);
}

//! The cluster changes nothing: a 3-backend RSP behind `orsp-proxy`
//! answers every request — writes routed by record id, reads
//! scatter-gathered and merged — exactly like one node, and the final
//! pipeline outcome digests bit-identically to the in-process run at
//! the same seed.
//!
//! This holds because (1) every backend's mint draws from the same RNG
//! stream (`rng_for(seed, "pipeline")`), so the cluster shares one
//! keypair and blind signatures are deterministic; (2) the proxy routes
//! each record id to exactly one backend with the same `shard_index`
//! formula the ingest shards use, so the per-backend stores partition
//! the one-node store; (3) search ranking depends only on the review
//! histograms every backend derives identically from the world, with
//! the per-backend aggregate fields refilled from the merged partials;
//! and (4) partial aggregates merge commutatively with the k-anonymity
//! floor applied after the union.

use orsp_core::{
    complete_served, complete_served_multi, digest_hex, listings, outcome_digest,
    run_client_side, serve, service_for_world, shard_index, PipelineConfig, RspPipeline,
};
use orsp_net::{
    ClientConfig, InMemoryTransport, NetPool, NetServer, Request, Response, RspService,
    ServerConfig, TcpTransport, Transport,
};
use orsp_proxy::{BackendLink, ProxyConfig, ProxyService};
use orsp_search::SearchQuery;
use orsp_types::{RecordId, SimDuration};
use orsp_world::{World, WorldConfig};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

const BACKENDS: usize = 3;

fn small_world() -> World {
    let cfg = WorldConfig {
        users_per_zipcode: 50,
        horizon: SimDuration::days(240),
        ..WorldConfig::tiny(73)
    };
    World::generate(cfg).unwrap()
}

fn fast_client() -> ClientConfig {
    ClientConfig {
        connect_timeout: Duration::from_secs(5),
        read_timeout: Duration::from_secs(5),
        write_timeout: Duration::from_secs(5),
        max_retries: 2,
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(8),
        ..ClientConfig::default()
    }
}

/// Three served backends with a proxy in front, all on loopback
/// ephemeral ports.
struct Cluster {
    backends: Vec<(NetServer, Arc<RspService>)>,
    proxy_server: NetServer,
    proxy: Arc<ProxyService>,
}

impl Cluster {
    fn start(world: &World, config: &PipelineConfig) -> Cluster {
        let backends: Vec<(NetServer, Arc<RspService>)> = (0..BACKENDS)
            .map(|_| {
                serve(world, config, "127.0.0.1:0", ServerConfig::default())
                    .expect("bind backend")
            })
            .collect();
        let links: Vec<Arc<dyn BackendLink>> = backends
            .iter()
            .map(|(server, _)| {
                Arc::new(NetPool::new(server.local_addr(), fast_client(), 2))
                    as Arc<dyn BackendLink>
            })
            .collect();
        let proxy = Arc::new(ProxyService::new(links, ProxyConfig::default()));
        let proxy_server =
            NetServer::bind("127.0.0.1:0", proxy.clone(), ServerConfig::default())
                .expect("bind proxy");
        Cluster { backends, proxy_server, proxy }
    }

    fn transport(&self) -> TcpTransport {
        TcpTransport::connect(self.proxy_server.local_addr(), fast_client())
            .expect("connect to proxy")
    }

    /// Shut everything down and hand back the backend services for
    /// `complete_served_multi`.
    fn into_services(self) -> Vec<RspService> {
        self.proxy_server.shutdown();
        drop(self.proxy);
        self.backends
            .into_iter()
            .map(|(server, service)| {
                server.shutdown();
                Arc::try_unwrap(service).ok().expect("server kept a service handle")
            })
            .collect()
    }
}

#[test]
fn proxy_over_three_backends_matches_one_node_bit_for_bit() {
    let world = small_world();
    let config = PipelineConfig::default();
    let pipeline = RspPipeline::new(config.clone());

    // Reference 1: everything in one process, no wire anywhere.
    let in_process = pipeline.run(&world);

    // Reference 2: one served node holding the full store, for
    // comparing read RPCs against the cluster.
    let single = service_for_world(&world, &config);
    let public = single.mint_public_key();
    let single_transport = InMemoryTransport::new(single);
    let single_run = run_client_side(&pipeline, &world, &public, &single_transport)
        .expect("single-node client half");

    // The cluster: same world, same seed, three backends, one proxy.
    let cluster = Cluster::start(&world, &config);
    let transport = cluster.transport();
    let run = run_client_side(&pipeline, &world, &public, &transport)
        .expect("proxied client half");

    // Admission through the proxy is the same decision sequence.
    assert!(run.uploads_accepted > 100, "accepted {}", run.uploads_accepted);
    assert_eq!(run.uploads_accepted, single_run.uploads_accepted);
    assert_eq!(run.uploads_rejected, single_run.uploads_rejected);

    // Scatter-gather reads answer bit-identically to the single node:
    // every (zipcode, category) the world lists, every listed entity's
    // aggregate (present, floored, or absent alike).
    let mut queried = 0;
    let mut pairs: Vec<(u32, orsp_types::Category)> =
        listings(&world).iter().map(|l| (l.zipcode, l.category)).collect();
    pairs.sort_by_key(|(zip, cat)| (*zip, format!("{cat:?}")));
    pairs.dedup();
    for (zipcode, category) in pairs {
        let request = Request::Search { query: SearchQuery { zipcode, category } };
        let via_proxy = transport.call(&request).expect("proxy search");
        let via_single = single_transport.call(&request).expect("single search");
        assert_eq!(via_proxy, via_single, "search({zipcode}, {category:?}) diverged");
        if let Response::SearchResults { hits } = &via_proxy {
            queried += hits.len();
        }
    }
    assert!(queried > 0, "the world's listings produced no search hits");
    for listing in listings(&world) {
        let request = Request::FetchAggregate { entity: listing.id };
        assert_eq!(
            transport.call(&request).expect("proxy aggregate"),
            single_transport.call(&request).expect("single aggregate"),
            "aggregate for {:?} diverged",
            listing.id,
        );
    }

    // Stats degrades to namespaced per-backend snapshots plus the
    // proxy's own counters.
    match transport.call(&Request::Stats).expect("proxy stats") {
        Response::Stats { snapshot } => {
            assert!(snapshot.counter("proxy_requests_total").unwrap_or(0) > 0);
            for i in 0..BACKENDS {
                let key = format!("backend{i}_ingest_accepted_total");
                assert!(
                    snapshot.counter(&key).unwrap_or(0) > 0,
                    "missing namespaced backend snapshot {key}"
                );
                assert!(
                    snapshot
                        .counter(&format!("proxy_backend{i}_forwarded_total"))
                        .unwrap_or(0)
                        > 0,
                    "backend {i} was never routed to"
                );
            }
        }
        other => panic!("stats got {other:?}"),
    }

    // Teardown both topologies and finish the analytics half.
    let services = cluster.into_services();
    let served_multi = complete_served_multi(&pipeline, &world, run, services);
    let served_single = complete_served(
        &pipeline,
        &world,
        single_run,
        single_transport.into_service(),
    );

    assert_eq!(served_multi.ingest.stats(), in_process.ingest.stats());
    assert_eq!(served_multi.tokens_issued, in_process.tokens_issued);
    assert_eq!(served_multi.ingest.store().len(), in_process.ingest.store().len());

    let multi = digest_hex(&outcome_digest(&served_multi));
    assert_eq!(
        multi,
        digest_hex(&outcome_digest(&in_process)),
        "proxied 3-backend pipeline must digest identically to in-process"
    );
    assert_eq!(
        multi,
        digest_hex(&outcome_digest(&served_single)),
        "proxied 3-backend pipeline must digest identically to one served node"
    );
}

/// Satellite pin: the proxy's routing choice IS the ingest tier's shard
/// choice — one formula (`orsp_core::shard_index`, re-exported from
/// `orsp_server`), shared by ingest shards, storage segment logs, and
/// the proxy. A proxy over N backends and an ingest tier with N shards
/// partition record ids identically.
mod routing {
    use super::*;

    fn proxy_of(n: usize) -> ProxyService {
        // Lazy pools never dial, so routing is testable without a
        // single listener.
        let links: Vec<Arc<dyn BackendLink>> = (0..n)
            .map(|i| {
                let addr = format!("127.0.0.1:{}", 19000 + i).parse().unwrap();
                Arc::new(NetPool::new(addr, fast_client(), 1)) as Arc<dyn BackendLink>
            })
            .collect();
        ProxyService::new(links, ProxyConfig::default())
    }

    proptest! {
        #[test]
        fn proxy_choice_equals_ingest_shard_choice(
            raw in proptest::collection::vec(any::<u8>(), 32..33),
            n in 1usize..=12,
        ) {
            let mut bytes = [0u8; 32];
            bytes.copy_from_slice(&raw);
            let proxy = proxy_of(n);
            let record = RecordId::from_bytes(bytes);
            let chosen = proxy.backend_for_record(&record);
            prop_assert_eq!(chosen, shard_index(&bytes, n));
            prop_assert_eq!(chosen, orsp_server::shard_index(record.as_bytes(), n));
            prop_assert!(chosen < n);
        }

        #[test]
        fn device_routing_is_stable_and_in_range(
            device in any::<u64>(),
            n in 1usize..=12,
        ) {
            let proxy = proxy_of(n);
            let id = orsp_types::DeviceId::new(device);
            let chosen = proxy.backend_for_device(id);
            prop_assert!(chosen < n);
            prop_assert_eq!(chosen, proxy.backend_for_device(id));
        }
    }
}

//! The wire changes nothing: running the pipeline *as a service* — every
//! blind token an RPC through the codec, every upload a replayed
//! delivery — produces a bit-identical outcome digest to the in-process
//! pipeline at the same seed.
//!
//! This holds because (1) the service's mint draws from the same RNG
//! stream as the in-process mint, (2) BigUints survive the wire losslessly
//! (`to_bytes_be`/`from_bytes_be`), (3) rate limiting is per-device so
//! cross-device interleaving is immaterial, and (4) deliveries replay in
//! the exact order `deterministic_ingest` consumes them.

use orsp_core::{
    complete_served, digest_hex, outcome_digest, run_client_side, service_for_world,
    PipelineConfig, RspPipeline,
};
use orsp_net::InMemoryTransport;
use orsp_types::SimDuration;
use orsp_world::{World, WorldConfig};

fn small_world() -> World {
    let cfg = WorldConfig {
        users_per_zipcode: 70,
        horizon: SimDuration::days(300),
        ..WorldConfig::tiny(71)
    };
    World::generate(cfg).unwrap()
}

#[test]
fn served_pipeline_digest_matches_in_process() {
    let world = small_world();
    let config = PipelineConfig::default();
    let pipeline = RspPipeline::new(config.clone());

    // Reference: everything in one process, no wire anywhere.
    let in_process = pipeline.run(&world);

    // Served: client half issues tokens and delivers uploads through the
    // full codec; analytics half runs on state extracted from the service.
    let service = service_for_world(&world, &config);
    let public = service.mint_public_key();
    let transport = InMemoryTransport::new(service);
    let run = run_client_side(&pipeline, &world, &public, &transport)
        .expect("served client half");
    assert!(run.uploads_accepted > 100, "accepted {}", run.uploads_accepted);
    // Rejections (mix reordering within a record) must match the
    // in-process admission outcome exactly — compared via stats below.
    assert_eq!(run.uploads_rejected, in_process.ingest.stats().rejected());
    assert!(
        transport.calls() > run.uploads_accepted,
        "token issues + uploads all went through the transport"
    );
    let served = complete_served(&pipeline, &world, run, transport.into_service());

    // Field-level agreement first, for diagnosable failures...
    assert_eq!(served.ingest.stats(), in_process.ingest.stats());
    assert_eq!(served.tokens_issued, in_process.tokens_issued);
    assert_eq!(served.uploads_delivered, in_process.uploads_delivered);
    assert_eq!(served.ingest.store().len(), in_process.ingest.store().len());
    assert_eq!(served.fraud_flagged, in_process.fraud_flagged);
    assert_eq!(served.eval.predicted, in_process.eval.predicted);
    assert_eq!(served.eval.mae.to_bits(), in_process.eval.mae.to_bits());

    // ...then the whole thing: bit-identical digests.
    assert_eq!(
        digest_hex(&outcome_digest(&served)),
        digest_hex(&outcome_digest(&in_process)),
        "served and in-process pipelines must digest identically"
    );
}

#[test]
fn served_pipeline_is_reproducible() {
    let world = small_world();
    let config = PipelineConfig::default();
    let pipeline = RspPipeline::new(config.clone());

    let digest_of_served_run = || {
        let service = service_for_world(&world, &config);
        let public = service.mint_public_key();
        let transport = InMemoryTransport::new(service);
        let run = run_client_side(&pipeline, &world, &public, &transport).expect("client half");
        let outcome = complete_served(&pipeline, &world, run, transport.into_service());
        digest_hex(&outcome_digest(&outcome))
    };
    assert_eq!(digest_of_served_run(), digest_of_served_run());
}

//! Thread-count invariance: the multi-core pipeline must produce
//! bit-for-bit identical results at any worker count.
//!
//! This is the contract that makes the parallel client stage, the sharded
//! ingest, and the parallel feature assembly safe to ship: parallelism
//! may only change the wall clock, never the science. Each user draws
//! from an RNG stream derived from `(seed, "client", user id)`, merges
//! happen in user/delivery order, and the spend ledger runs its
//! sequential pass over a decided order — so 1, 2, and 8 threads must
//! agree on everything, down to float bit patterns.

use orsp_core::{outcome_digest, PipelineConfig, PipelineOutcome, RspPipeline};
use orsp_types::SimDuration;
use orsp_world::{World, WorldConfig};

fn test_world() -> World {
    let cfg = WorldConfig {
        users_per_zipcode: 70,
        horizon: SimDuration::days(300),
        ..WorldConfig::tiny(71)
    };
    World::generate(cfg).unwrap()
}

fn run_with_threads(world: &World, threads: usize) -> PipelineOutcome {
    RspPipeline::new(PipelineConfig { threads, ..PipelineConfig::default() }).run(world)
}

/// Arm the tracing layer at the firehose rate before every run below:
/// instrumentation is write-only (DESIGN §7), so the digests this file
/// pins must not move with span collection switched fully on.
fn arm_tracing() {
    let tracer = orsp_obs::global().tracer();
    tracer.set_seed(1);
    tracer.set_sampling(10_000);
}

#[test]
fn outcome_identical_across_thread_counts() {
    arm_tracing();
    let world = test_world();
    let baseline = run_with_threads(&world, 1);
    let baseline_digest = outcome_digest(&baseline);

    for threads in [2, 8] {
        let outcome = run_with_threads(&world, threads);

        // Headline scalars first, for a readable failure.
        assert_eq!(
            outcome.uploads_delivered, baseline.uploads_delivered,
            "uploads_delivered diverges at {threads} threads"
        );
        assert_eq!(
            outcome.tokens_issued, baseline.tokens_issued,
            "tokens_issued diverges at {threads} threads"
        );
        assert_eq!(
            outcome.eval.predicted, baseline.eval.predicted,
            "eval.predicted diverges at {threads} threads"
        );
        assert_eq!(
            outcome.coverage.median_after.to_bits(),
            baseline.coverage.median_after.to_bits(),
            "coverage.median_after diverges at {threads} threads"
        );
        assert_eq!(
            outcome.eval.mae.to_bits(),
            baseline.eval.mae.to_bits(),
            "eval.mae diverges at {threads} threads"
        );

        // Full ground-truth ownership map, entry by entry.
        assert_eq!(
            outcome.record_owner, baseline.record_owner,
            "record_owner diverges at {threads} threads"
        );
        assert_eq!(
            outcome.fraud_flagged, baseline.fraud_flagged,
            "fraud_flagged diverges at {threads} threads"
        );

        // And the whole outcome, bit for bit.
        assert_eq!(
            outcome_digest(&outcome),
            baseline_digest,
            "outcome digest diverges at {threads} threads"
        );
    }
}

#[test]
fn auto_thread_count_matches_single_thread() {
    arm_tracing();
    // threads = 0 resolves to the machine's core count — whatever that
    // is, the result must equal the single-threaded run.
    let world = test_world();
    let auto = run_with_threads(&world, 0);
    let single = run_with_threads(&world, 1);
    assert_eq!(outcome_digest(&auto), outcome_digest(&single));
}

#[test]
fn repeated_runs_are_stable() {
    arm_tracing();
    // Same thread count twice: guards against any residual use of global
    // or time-seeded state inside the parallel stages.
    let world = test_world();
    let a = run_with_threads(&world, 4);
    let b = run_with_threads(&world, 4);
    assert_eq!(outcome_digest(&a), outcome_digest(&b));
}

#[test]
fn durability_changes_nothing_at_any_thread_count() {
    arm_tracing();
    // Durable logging is write-only with respect to the pipeline: with a
    // storage engine attached, the outcome digest stays bit-identical to
    // the undecorated baseline at 1, 2, and 8 threads — and the log the
    // engine wrote recovers into exactly the store the pipeline built.
    use orsp_storage::{SimDir, StorageEngine, StorageOptions};
    use std::sync::Arc;

    let world = test_world();
    let baseline_digest = outcome_digest(&run_with_threads(&world, 1));

    for threads in [1, 2, 8] {
        let dir = SimDir::new();
        let (engine, report) =
            StorageEngine::open(Arc::new(dir.clone()), StorageOptions::default()).unwrap();
        assert_eq!(report.records_replayed, 0);
        let pipeline =
            RspPipeline::new(PipelineConfig { threads, ..PipelineConfig::default() });
        let outcome = pipeline.run_logged(&world, Some(&engine));
        assert_eq!(
            outcome_digest(&outcome),
            baseline_digest,
            "durable logging perturbed the outcome at {threads} threads"
        );

        // Reboot: the log replays into the full accepted set.
        drop(engine);
        let (_, recovered) =
            StorageEngine::open(Arc::new(dir.reopen()), StorageOptions::default()).unwrap();
        assert_eq!(
            recovered.stats.accepted,
            outcome.ingest.stats().accepted,
            "recovered accepted count diverges at {threads} threads"
        );
        assert_eq!(
            recovered.store.total_interactions() as u64,
            recovered.stats.accepted,
            "one logged record per accepted upload"
        );
    }
}

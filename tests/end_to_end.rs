//! End-to-end integration: world → sensors → client → anonet → server →
//! inference → search, all through public APIs.

use orsp_core::{listings, PipelineConfig, RspPipeline};
use orsp_search::{InferredSummary, Ranker, ReviewSummary, SearchIndex, SearchQuery};
use orsp_types::{Category, SimDuration};
use orsp_world::{World, WorldConfig};

fn world() -> World {
    let cfg = WorldConfig {
        users_per_zipcode: 70,
        horizon: SimDuration::days(300),
        ..WorldConfig::tiny(2024)
    };
    World::generate(cfg).unwrap()
}

#[test]
fn full_pipeline_produces_inferred_opinions() {
    let world = world();
    let outcome = RspPipeline::new(PipelineConfig::default()).run(&world);

    // The silent majority's activity reached the server.
    assert!(outcome.uploads_delivered > 1_000);
    assert!(outcome.ingest.store().len() > 200, "many anonymous histories");
    assert_eq!(outcome.ingest.stats().bad_token, 0, "honest pipeline, no forgeries");
    assert_eq!(outcome.ingest.stats().double_spend, 0);

    // Inferred opinions exist and dwarf explicit reviews.
    let inferred_total: u64 =
        outcome.inferred_histograms.values().map(|h| h.total()).sum();
    let explicit_total: u64 =
        outcome.explicit_histograms.values().map(|h| h.total()).sum();
    assert!(inferred_total > 0);
    assert!(
        inferred_total > explicit_total,
        "inferred {inferred_total} should exceed explicit {explicit_total}"
    );

    // Coverage improves (the headline claim).
    assert!(outcome.coverage.mean_after > 2.0 * outcome.coverage.mean_before);
    assert!(outcome.coverage.zero_after <= outcome.coverage.zero_before);
}

#[test]
fn search_ranks_with_inferred_summaries() {
    let world = world();
    let outcome = RspPipeline::new(PipelineConfig::default()).run(&world);
    let index = SearchIndex::build(listings(&world));
    let ranker = Ranker::default();

    // Every (zipcode, category) query resolves and ranks deterministically.
    let mut any_inferred_support = false;
    for query in index.query_universe() {
        let candidates: Vec<_> = index
            .query(&query)
            .into_iter()
            .map(|l| {
                let explicit = ReviewSummary {
                    histogram: outcome
                        .explicit_histograms
                        .get(&l.id)
                        .cloned()
                        .unwrap_or_default(),
                };
                let inferred = InferredSummary {
                    histogram: outcome
                        .inferred_histograms
                        .get(&l.id)
                        .cloned()
                        .unwrap_or_default(),
                    ..Default::default()
                };
                (l.id, explicit, inferred)
            })
            .collect();
        let ranked = ranker.rank(candidates);
        for pair in ranked.windows(2) {
            assert!(pair[0].score >= pair[1].score, "ranking is ordered");
        }
        if ranked.iter().any(|r| r.inferred.count() > 0) {
            any_inferred_support = true;
        }
    }
    assert!(any_inferred_support, "some results carry inferred opinions");
}

#[test]
fn inference_accuracy_is_sane_and_beats_baseline() {
    let world = world();
    let outcome = RspPipeline::new(PipelineConfig::default()).run(&world);
    assert!(outcome.eval.predicted > 50, "predicted {}", outcome.eval.predicted);
    assert!(outcome.eval.mae < 1.5, "MAE {}", outcome.eval.mae);
    assert!(
        outcome.eval.mae < outcome.eval_baseline_matched.mae,
        "effort predictor ({}) must beat the repeat-count baseline ({}) on the pairs it predicts",
        outcome.eval.mae,
        outcome.eval_baseline_matched.mae
    );
}

#[test]
fn restaurant_queries_resolve_entities_in_their_zipcode() {
    let world = world();
    let index = SearchIndex::build(listings(&world));
    let zip = world.zipcodes[0].code;
    for cuisine in orsp_types::Cuisine::ALL {
        let q = SearchQuery { zipcode: zip, category: Category::Restaurant(*cuisine) };
        for listing in index.query(&q) {
            assert_eq!(listing.zipcode, zip);
            assert_eq!(listing.category, Category::Restaurant(*cuisine));
        }
    }
}

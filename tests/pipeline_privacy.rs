//! Privacy integration: the §4.2 design choices measured adversarially
//! through the real pipeline.

use orsp_anonet::{LinkageScheme, MixConfig};
use orsp_client::ClientConfig;
use orsp_core::{PipelineConfig, RspPipeline};
use orsp_types::{DeviceId, EntityId, SimDuration};
use orsp_world::{World, WorldConfig};

fn world() -> World {
    let cfg = WorldConfig {
        users_per_zipcode: 40,
        horizon: SimDuration::days(180),
        ..WorldConfig::tiny(777)
    };
    World::generate(cfg).unwrap()
}

#[test]
fn unlinkable_record_ids_defeat_linkage_attack() {
    let world = world();
    let devices: Vec<DeviceId> =
        world.users.iter().map(|u| DeviceId::new(u.id.raw())).collect();
    let entities: Vec<EntityId> = world.entities.iter().map(|e| e.id).collect();

    let unlinkable = RspPipeline::new(PipelineConfig {
        linkage_scheme: LinkageScheme::Unlinkable,
        ..Default::default()
    })
    .run(&world);
    let naive = RspPipeline::new(PipelineConfig {
        linkage_scheme: LinkageScheme::DevicePrefixed,
        ..Default::default()
    })
    .run(&world);

    let r_unlink = unlinkable.observer.linkage_attack(
        LinkageScheme::Unlinkable,
        &devices,
        &entities,
    );
    let r_naive =
        naive.observer.linkage_attack(LinkageScheme::DevicePrefixed, &devices, &entities);

    // Under unlinkable ids the only remaining signal is co-batching —
    // same-user uploads cluster in time, so same-batch pairs are
    // same-user more often than chance. That residual leak is real but
    // bounded: low recall AND low precision, versus the naive scheme's
    // near-perfect linkage.
    assert!(r_unlink.recall() < 0.25, "unlinkable recall {}", r_unlink.recall());
    assert!(
        r_unlink.precision() < 0.5,
        "unlinkable precision {}",
        r_unlink.precision()
    );
    assert!(r_naive.recall() > 0.9, "naive recall {}", r_naive.recall());
    assert!(r_naive.precision() > 0.99);
    assert!(
        r_naive.recall() > 4.0 * r_unlink.recall(),
        "unlinkability must slash linkage: {} vs {}",
        r_unlink.recall(),
        r_naive.recall()
    );
}

#[test]
fn async_uploads_and_mixing_defeat_timing_attack() {
    let world = world();

    let immediate = RspPipeline::new(PipelineConfig {
        client: ClientConfig { upload_window: SimDuration::ZERO, ..Default::default() },
        mix: MixConfig { threshold: 1, max_latency: SimDuration::ZERO },
        ..Default::default()
    })
    .run(&world);
    let deferred = RspPipeline::new(PipelineConfig {
        client: ClientConfig {
            upload_window: SimDuration::hours(24),
            ..Default::default()
        },
        mix: MixConfig::default(),
        ..Default::default()
    })
    .run(&world);

    let acc_now = immediate.observer.timing_attack().accuracy();
    let acc_mixed = deferred.observer.timing_attack().accuracy();
    assert!(acc_now > 0.5, "immediate upload is very linkable: {acc_now}");
    assert!(
        acc_mixed < acc_now / 4.0,
        "deferral + mixing must crush timing accuracy: {acc_mixed} vs {acc_now}"
    );
}

#[test]
fn server_cannot_enumerate_a_users_entities() {
    // Structural check: for a given user, their record ids share no
    // common prefix or byte pattern an adversary could group on.
    let world = world();
    let outcome = RspPipeline::new(PipelineConfig::default()).run(&world);
    use std::collections::HashMap;
    let mut per_user: HashMap<orsp_types::UserId, Vec<orsp_types::RecordId>> = HashMap::new();
    for (rid, (user, _)) in &outcome.record_owner {
        per_user.entry(*user).or_default().push(*rid);
    }
    let user_with_many = per_user
        .values()
        .find(|v| v.len() >= 5)
        .expect("some user interacted with 5+ entities");
    // Pairwise: first byte matches happen at chance rate (~1/256), never
    // systematically.
    let mut first_byte_matches = 0;
    let mut pairs = 0;
    for i in 0..user_with_many.len() {
        for j in i + 1..user_with_many.len() {
            pairs += 1;
            if user_with_many[i].as_bytes()[0] == user_with_many[j].as_bytes()[0] {
                first_byte_matches += 1;
            }
        }
    }
    assert!(
        (first_byte_matches as f64) < 0.2 * pairs as f64,
        "record ids look structured: {first_byte_matches}/{pairs} share first byte"
    );
}

#[test]
fn uploads_carry_no_user_identifier() {
    // Type-level property made concrete: serialize-inspect an upload's
    // fields.
    let world = world();
    let outcome = RspPipeline::new(PipelineConfig::default()).run(&world);
    // The server's stored histories know entity + interactions, nothing
    // else.
    for (_, stored) in outcome.ingest.store().iter().take(50) {
        for r in stored.history.iter() {
            assert!(r.is_well_formed());
            // Distances are features, not coordinates.
            assert!(r.distance_travelled_m < 1e7);
        }
    }
}

#[test]
fn device_replacement_splits_histories_unlinkably() {
    // §4.2 consequence: a new phone means a new Ru, so the server sees a
    // brand-new set of record ids — the old and new histories of the same
    // user cannot be joined. (The cost: inference support resets too.)
    use orsp_crypto::{derive_record_id, DeviceSecret};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let mut rng = StdRng::seed_from_u64(9);
    let old_phone = DeviceSecret::generate(&mut rng);
    let new_phone = DeviceSecret::generate(&mut rng);
    for e in 0..100u64 {
        let entity = EntityId::new(e);
        assert_ne!(
            derive_record_id(&old_phone, entity),
            derive_record_id(&new_phone, entity),
            "entity {e}: new device must not inherit old record ids"
        );
    }
}

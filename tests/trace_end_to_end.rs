//! Trace causality across the cluster: one sampled upload through a
//! proxy and two TCP backends produces a single connected span tree —
//! the proxy's RPC root, its `backend_call` child, the backend's
//! `server/upload` span under that, and the group-commit machinery
//! (`ingest_shard`, `group_commit_wait`, `group_commit_lead`,
//! `wal_fsync`) as descendants — assembled by one `Traces` RPC against
//! the proxy, which drains its own spans, scatters to the backends, and
//! stitches the parts by trace id.
//!
//! The sampling decision is made once, at the proxy (head-based,
//! pinned to always-sample here); the backends inherit it from the
//! trace context on the wire, never re-rolling. Clock domains differ
//! per process, so the nesting assertion below is only sound because
//! `merge_traces` re-centers each remote fragment inside its wire
//! parent and clamps top-down.

use orsp_core::{serve, PipelineConfig};
use orsp_crypto::TokenWallet;
use orsp_net::{
    ClientConfig, NetClient, NetPool, NetServer, RemoteIssuer, RspService, ServerConfig,
    TcpTransport,
};
use orsp_obs::TraceRecord;
use orsp_proxy::{BackendLink, ProxyConfig, ProxyService};
use orsp_server::{GroupCommitConfig, WalBatchItem, WalSink};
use orsp_types::rng::rng_for;
use orsp_types::{
    DeviceId, Interaction, InteractionKind, RecordId, SimDuration, Timestamp,
};
use orsp_world::{World, WorldConfig};
use std::sync::Arc;
use std::time::Duration;

const BACKENDS: usize = 2;

/// Acknowledge-everything sink: enough durability plumbing to drive the
/// whole group-commit path (leader election, batch drain, the covering
/// "fsync" call) without a disk.
struct AckSink;

impl WalSink for AckSink {
    fn log_append(&self, _entry: &orsp_server::WalEntry) -> orsp_types::Result<()> {
        Ok(())
    }

    fn log_upload_batch(&self, _items: &[WalBatchItem]) -> orsp_types::Result<()> {
        Ok(())
    }
}

fn fast_client() -> ClientConfig {
    ClientConfig {
        connect_timeout: Duration::from_secs(5),
        read_timeout: Duration::from_secs(5),
        write_timeout: Duration::from_secs(5),
        max_retries: 2,
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(8),
        ..ClientConfig::default()
    }
}

/// Walk parent links from `from` to the root, returning the names
/// passed through (inclusive of `from`, exclusive of nothing — the
/// root's name is last).
fn ancestor_names(trace: &TraceRecord, from: u64) -> Vec<String> {
    let mut names = Vec::new();
    let mut cursor = Some(from);
    while let Some(id) = cursor {
        let Some(span) = trace.spans.iter().find(|s| s.span_id == id) else { break };
        names.push(span.name.clone());
        cursor = trace
            .spans
            .iter()
            .any(|s| s.span_id == span.parent_span_id)
            .then_some(span.parent_span_id);
    }
    names
}

#[test]
fn sampled_upload_trace_connects_proxy_backend_and_fsync() {
    let world = World::generate(WorldConfig {
        users_per_zipcode: 30,
        horizon: SimDuration::days(60),
        ..WorldConfig::tiny(31)
    })
    .unwrap();
    let config = PipelineConfig::default();

    // Two durable backends, tracing pinned to always-sample with
    // distinct deterministic id streams per process.
    let backends: Vec<(NetServer, Arc<RspService>)> = (0..BACKENDS)
        .map(|i| {
            let (server, service) =
                serve(&world, &config, "127.0.0.1:0", ServerConfig::default())
                    .expect("bind backend");
            service.set_durability_with(
                Arc::new(AckSink) as Arc<dyn WalSink>,
                GroupCommitConfig { batch_max: 8, window_us: 0 },
            );
            service.obs().tracer().set_seed(100 + i as u64);
            service.obs().tracer().set_sampling(10_000);
            (server, service)
        })
        .collect();
    let links: Vec<Arc<dyn BackendLink>> = backends
        .iter()
        .map(|(server, _)| {
            Arc::new(NetPool::new(server.local_addr(), fast_client(), 2))
                as Arc<dyn BackendLink>
        })
        .collect();
    let proxy = Arc::new(ProxyService::new(links, ProxyConfig::default()));
    proxy.obs().tracer().set_seed(7);
    proxy.obs().tracer().set_sampling(10_000);
    let proxy_server = NetServer::bind("127.0.0.1:0", proxy.clone(), ServerConfig::default())
        .expect("bind proxy");
    let addr = proxy_server.local_addr();

    // One device round trip, entirely through the proxy: blind token,
    // then the upload whose trace this test dissects.
    let transport = TcpTransport::connect(addr, fast_client()).expect("transport");
    let mut rng = rng_for(5, "trace-e2e-device");
    let mut wallet = TokenWallet::new(DeviceId::new(9), backends[0].1.mint_public_key());
    let mut issuer = RemoteIssuer::new(&transport);
    wallet.request_token(&mut rng, &mut issuer, Timestamp::EPOCH).expect("blind token");

    let mut client = NetClient::connect(addr, fast_client()).expect("connect");
    let upload = orsp_client::UploadRequest {
        record_id: RecordId::from_bytes([7u8; 32]),
        entity: world.entities[0].id,
        interaction: Interaction::solo(
            InteractionKind::Visit,
            Timestamp::EPOCH + SimDuration::hours(12),
            SimDuration::minutes(35),
            900.0,
        ),
        token: wallet.take_token().expect("token in wallet"),
        release_at: Timestamp::EPOCH + SimDuration::hours(13),
    };
    let verdict =
        client.upload(upload, Timestamp::EPOCH + SimDuration::hours(13)).expect("upload RPC");
    assert!(verdict.is_ok(), "upload rejected: {verdict:?}");

    // Drain through the proxy: local proxy spans + both backends'
    // spans, joined by trace id and stitched into one tree each.
    let traces = client.traces().expect("traces RPC");
    let trace = traces
        .iter()
        .find(|t| t.spans.iter().any(|s| s.name == "server/upload"))
        .expect("no trace contains the backend upload span");

    // The tree is rooted at the proxy and crosses into exactly one
    // backend process.
    let root = trace.root().expect("trace has a root");
    assert_eq!(root.name, "proxy/upload");
    assert_eq!(root.process, "proxy");
    let backend_call = trace
        .spans
        .iter()
        .find(|s| s.name == "backend_call")
        .expect("no backend_call span");
    assert_eq!(backend_call.parent_span_id, root.span_id);
    assert_eq!(backend_call.process, "proxy");
    let server_upload =
        trace.spans.iter().find(|s| s.name == "server/upload").expect("checked above");
    assert_eq!(server_upload.parent_span_id, backend_call.span_id);
    assert!(
        server_upload.process.starts_with("backend"),
        "backend span process was {:?}",
        server_upload.process
    );

    // The covering fsync is a descendant of the backend RPC via the
    // group-commit chain.
    let fsync = trace.spans.iter().find(|s| s.name == "wal_fsync").expect("no wal_fsync span");
    assert_eq!(fsync.process, server_upload.process);
    let chain = ancestor_names(trace, fsync.span_id);
    for expected in
        ["wal_fsync", "group_commit_lead", "group_commit_wait", "server/upload", "proxy/upload"]
    {
        assert!(chain.iter().any(|n| n == expected), "{expected} missing from {chain:?}");
    }
    assert!(
        trace.spans.iter().any(|s| s.name == "ingest_shard"),
        "shard handoff span missing"
    );

    // Every child interval nests inside its parent — across the
    // process boundary too, which is the stitch/clamp contract.
    for span in &trace.spans {
        if let Some(parent) = trace.spans.iter().find(|p| p.span_id == span.parent_span_id) {
            assert!(
                parent.start_us <= span.start_us && span.end_us <= parent.end_us,
                "span {} [{}, {}] escapes parent {} [{}, {}]",
                span.name,
                span.start_us,
                span.end_us,
                parent.name,
                parent.start_us,
                parent.end_us,
            );
        }
    }

    // Drained means drained: the upload trace is handed out once.
    let again = client.traces().expect("second traces RPC");
    assert!(
        !again.iter().any(|t| t.trace_id == trace.trace_id),
        "trace was exported twice"
    );

    proxy_server.shutdown();
    for (server, _) in backends {
        server.shutdown();
    }
}

//! Fraud integration: §4.3's attacks, injected into a live world and
//! scored against the pipeline's typical-user filter.

use orsp_core::{PipelineConfig, RspPipeline};
use orsp_types::{Category, SimDuration, Timestamp, UserId};
use orsp_world::attacks::{inject, Attack};
use orsp_world::{World, WorldConfig};

fn attacked_world() -> (World, usize) {
    let cfg = WorldConfig {
        users_per_zipcode: 70,
        horizon: SimDuration::days(300),
        ..WorldConfig::tiny(555)
    };
    let mut world = World::generate(cfg).unwrap();
    let plumber = world
        .entities
        .iter()
        .find(|e| matches!(e.category, Category::ServiceProvider(_)))
        .unwrap()
        .id;
    let restaurant = world
        .entities
        .iter()
        .find(|e| matches!(e.category, Category::Restaurant(_)))
        .unwrap()
        .id;
    let attacks = vec![
        Attack::CallSpam {
            attacker: UserId::new(0),
            target: plumber,
            calls: 30,
            start: Timestamp::from_seconds(50 * 86_400),
            spacing: SimDuration::minutes(2),
        },
        Attack::EmployeePresence {
            attacker: UserId::new(1),
            target: restaurant,
            start: Timestamp::from_seconds(20 * 86_400),
            days: 150,
            shift: SimDuration::hours(8),
        },
    ];
    let injected = inject(&mut world, &attacks, 31);
    (world, injected)
}

#[test]
fn naive_attacks_are_detected_with_low_false_positives() {
    let (world, injected) = attacked_world();
    assert!(injected > 100);
    let outcome = RspPipeline::new(PipelineConfig::default()).run(&world);

    let flagged: std::collections::HashSet<_> =
        outcome.fraud_flagged.iter().copied().collect();
    assert!(!outcome.fraud_truth.is_empty(), "attack records reached the server");

    let detected =
        outcome.fraud_truth.iter().filter(|r| flagged.contains(*r)).count();
    let detection_rate = detected as f64 / outcome.fraud_truth.len() as f64;
    assert!(
        detection_rate >= 0.5,
        "detection rate {detection_rate} ({detected}/{})",
        outcome.fraud_truth.len()
    );

    let honest_total = outcome.record_owner.len() - outcome.fraud_truth.len();
    let false_pos = flagged.iter().filter(|r| !outcome.fraud_truth.contains(*r)).count();
    let fp_rate = false_pos as f64 / honest_total.max(1) as f64;
    assert!(fp_rate < 0.05, "false positive rate {fp_rate}");
}

#[test]
fn fraud_filter_removes_flagged_histories_from_aggregates() {
    let (world, _) = attacked_world();
    let with_filter =
        RspPipeline::new(PipelineConfig { apply_fraud_filter: true, ..Default::default() })
            .run(&world);
    let without_filter =
        RspPipeline::new(PipelineConfig { apply_fraud_filter: false, ..Default::default() })
            .run(&world);

    // The filtered store is strictly smaller when something was flagged.
    assert!(!with_filter.fraud_flagged.is_empty());
    assert!(
        with_filter.ingest.store().len() < without_filter.ingest.store().len(),
        "filter must shrink the store"
    );

    // Specifically, the spam target's aggregate activity shrinks.
    let spam_target = world
        .events
        .iter()
        .find(|e| e.is_fraud)
        .map(|e| e.entity)
        .unwrap();
    let hist_with = with_filter.aggregates.get(&spam_target).map(|a| a.histories).unwrap_or(0);
    let hist_without =
        without_filter.aggregates.get(&spam_target).map(|a| a.histories).unwrap_or(0);
    assert!(
        hist_with <= hist_without,
        "target histories {hist_with} vs unfiltered {hist_without}"
    );
}

#[test]
fn small_histories_have_limited_influence_even_if_missed() {
    // The paper's fallback argument: whatever slips through with few
    // interactions barely moves aggregates. Verify: a single-interaction
    // fraud history contributes exactly one interaction to the target.
    let cfg = WorldConfig {
        users_per_zipcode: 40,
        horizon: SimDuration::days(180),
        ..WorldConfig::tiny(556)
    };
    let mut world = World::generate(cfg).unwrap();
    let target = world.entities[0].id;
    // A "stealth" attack: one fake call only.
    let attacks = vec![Attack::CallSpam {
        attacker: UserId::new(3),
        target,
        calls: 1,
        start: Timestamp::from_seconds(10 * 86_400),
        spacing: SimDuration::minutes(1),
    }];
    inject(&mut world, &attacks, 9);
    let outcome = RspPipeline::new(PipelineConfig::default()).run(&world);
    let agg = outcome.aggregates.get(&target);
    if let Some(agg) = agg {
        // The attacker's history, if present, is one of many and carries
        // at most 1 interaction — bounded influence.
        assert!(agg.interactions as f64 >= agg.histories as f64);
    }
}

#!/bin/sh
# Tier-1 verification: everything a reviewer needs to trust a change.
# Runs fully offline; mirrors what CI would run.
set -eu
cd "$(dirname "$0")/.."

echo "== cargo build --release (workspace, -D warnings) =="
RUSTFLAGS="-D warnings" cargo build --workspace --release

echo "== cargo test -q =="
cargo test -q --workspace

echo "== obs test suites (registry unit tests, N-thread hammer) =="
cargo test -q --release -p orsp-obs
cargo test -q --release -p orsp-obs --test concurrency

echo "== net test suites (codec proptests, frame reassembly, TCP integration, end-to-end digest) =="
cargo test -q --release -p orsp-net --test wire_proptests
cargo test -q --release -p orsp-net --test frame_reassembly
cargo test -q --release -p orsp-net --test tcp_roundtrip
cargo test -q --release -p orsp-core --test net_end_to_end

echo "== net integration again on the threaded transport (same contract, fallback code path) =="
ORSP_NET_TRANSPORT=threaded cargo test -q --release -p orsp-net --test tcp_roundtrip
ORSP_NET_TRANSPORT=threaded cargo test -q --release -p orsp-core --test net_end_to_end

echo "== service concurrency (domain locks: hammer, shard routing; debug build carries the lock-order assertion) =="
cargo test -q --release -p orsp-net --test service_hammer
ORSP_NET_TRANSPORT=threaded cargo test -q --release -p orsp-net --test service_hammer
cargo test -q -p orsp-net --test service_hammer
cargo test -q -p orsp-server lockorder

echo "== storage test suites (engine units, crash matrix, group-commit equivalence, served-crash recovery) =="
cargo test -q --release -p orsp-storage
cargo test -q --release -p orsp-storage --test crash_matrix
# The mid-group power-cut sweep also runs in a debug build: overflow and
# debug_assert checks cover the batch/boundary arithmetic release elides.
cargo test -q -p orsp-storage --test crash_matrix
cargo test -q --release -p orsp-storage --test group_commit
cargo test -q --release -p orsp-core --test storage_recovery

echo "== proxy test suites (merge rules, routing/failure semantics, 3-backend digest equality over TCP) =="
cargo test -q --release -p orsp-proxy
cargo test -q --release -p orsp-proxy --test proxy_end_to_end

echo "== trace causality (proxy + 2 backends over TCP: one connected span tree, proxy root to wal_fsync) =="
cargo test -q --release -p orsp-proxy --test trace_end_to_end

echo "== replica suites (topology/apply/catch-up units; SIGKILL-the-primary failover e2e; mid-catch-up power-cut matrix) =="
cargo test -q --release -p orsp-replica --lib
cargo test -q --release -p orsp-replica --test failover_e2e
cargo test -q --release -p orsp-replica --test catchup_crash

echo "== reshard 2->4 round trip (digest-verified, source untouched) =="
cargo test -q --release -p orsp-storage --lib reshard

echo "== recorded proxy scaling result exists (>=1.5x routed speedup, or the single-core CPU-bound explanation with per-backend utilization) =="
# (regenerate with: cargo run --release -p orsp-bench --bin proxy_scaling)
test -f results/BENCH_proxy_scaling.json
grep -q '"scaling_gate_ok": true' results/BENCH_proxy_scaling.json

echo "== recorded storage throughput exists (regenerate: cargo run --release -p orsp-bench --bin storage_throughput) =="
test -f results/BENCH_storage_throughput.json
grep -q '"cold_replay_meets_100k_rps": true' results/BENCH_storage_throughput.json

echo "== recorded obs overhead stays under the 3% gate =="
# The full A/B takes ~20s of steady load; CI checks the recorded result
# (regenerate with: cargo run --release -p orsp-bench --bin obs_overhead).
test -f results/BENCH_obs_overhead.json
grep -q '"overhead_below_3pct": true' results/BENCH_obs_overhead.json

echo "== recorded trace overhead stays under the 3% gate at 1% sampling =="
# (regenerate with: cargo run --release -p orsp-bench --bin trace_overhead)
test -f results/BENCH_trace_overhead.json
grep -q '"one_pct_overhead_below_3pct": true' results/BENCH_trace_overhead.json

echo "== recorded idle-fleet result: reactor holds 5000 idle connections at workers=4 with zero sheds, within 10% of threaded closed-loop throughput =="
# The fleet phase + best-of-3 closed loop takes ~2 min; CI checks the
# recorded result (regenerate with: cargo run --release -p orsp-bench --bin idle_fleet).
test -f results/BENCH_idle_fleet.json
grep -q '"idle_fleet_gate_ok": true' results/BENCH_idle_fleet.json
grep -q '"throughput_within_10pct": true' results/BENCH_idle_fleet.json

echo "== recorded service-contention result exists with an overlapping upload stream =="
# (regenerate with: cargo run --release -p orsp-bench --bin service_contention)
test -f results/BENCH_service_contention.json
grep -q '"uploads_during_contended_phase": [1-9]' results/BENCH_service_contention.json

echo "== group-commit bench meets the 20x durable-ingest gate =="
# Re-measures on this machine: concurrent uploaders against fsync=always
# must reach >= 20x the seed's one-fsync-per-record rate (~93k rec/s)
# with at least 4 uploaders, one fsync per group.
cargo run --release -p orsp-bench --bin group_commit
grep -q '"meets_20x_gate": true' results/BENCH_group_commit.json

echo "== replication overhead bench: sync RF=2 under 2x single-copy (or the documented 1-core serial-fsync exception) =="
cargo run --release -p orsp-bench --bin replication_overhead
grep -q '"overhead_gate_ok": true' results/BENCH_replication_overhead.json

# Formatting is advisory: rustfmt may be absent in minimal toolchains.
if command -v rustfmt >/dev/null 2>&1; then
    echo "== cargo fmt --check =="
    cargo fmt --all --check || echo "WARNING: formatting drift (non-fatal)"
else
    echo "== cargo fmt --check skipped (rustfmt not installed) =="
fi

echo "== verify OK =="

#!/bin/sh
# Tier-1 verification: everything a reviewer needs to trust a change.
# Runs fully offline; mirrors what CI would run.
set -eu
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --workspace --release

echo "== orsp-net builds clean under -D warnings =="
RUSTFLAGS="-D warnings" cargo build --release -p orsp-net

echo "== cargo test -q =="
cargo test -q --workspace

echo "== net test suites (codec proptests, TCP integration, end-to-end digest) =="
cargo test -q --release -p orsp-net --test wire_proptests
cargo test -q --release -p orsp-net --test tcp_roundtrip
cargo test -q --release -p orsp-core --test net_end_to_end

# Formatting is advisory: rustfmt may be absent in minimal toolchains.
if command -v rustfmt >/dev/null 2>&1; then
    echo "== cargo fmt --check =="
    cargo fmt --all --check || echo "WARNING: formatting drift (non-fatal)"
else
    echo "== cargo fmt --check skipped (rustfmt not installed) =="
fi

echo "== verify OK =="

//! Offline shim for the `proptest` surface this workspace uses.
//!
//! A miniature property-testing harness: the `proptest!` macro runs each
//! property over `CASES` deterministically derived random inputs (seeded
//! from the test's module path, so every run and machine explores the
//! same cases). No shrinking — a failing case prints its seed index and
//! message and panics. Strategies supported: numeric ranges
//! (`a..b`, `a..=b`, `a..`), `any::<T>()` for primitives,
//! `proptest::num::f64::ANY` (full bit-pattern floats),
//! `proptest::collection::vec(strategy, len_range)`, and tuples of
//! strategies up to arity 4.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Cases per property. Upstream proptest defaults to 256; 64 keeps the
/// heavier bignum properties fast while still exploring broadly.
pub const CASES: u32 = 64;

/// Sentinel error used by `prop_assume!` to skip a case.
pub const ASSUME_SKIPPED: &str = "__proptest_shim_assume_skipped__";

/// Deterministic per-(test, case) generator.
pub fn case_rng(test_path: &str, case: u32) -> StdRng {
    // FNV-1a over the test path, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in test_path.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(case as u64 + 1)))
}

/// A generator of test-case values.
pub trait Strategy {
    /// The value type produced.
    type Value;
    /// Produce one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.start..=<$t>::MAX)
            }
        }
    )*};
}

impl_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_float_range_strategies!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

/// Types with a canonical "anything" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Produce an arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.gen()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> f64 {
        f64::from_bits(rng.gen())
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()`: the full domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

pub mod collection {
    //! Collection strategies.

    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy for vectors with lengths drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        min_len: usize,
        max_len_exclusive: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = if self.min_len + 1 >= self.max_len_exclusive {
                self.min_len
            } else {
                rng.gen_range(self.min_len..self.max_len_exclusive)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec(strategy, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, min_len: len.start, max_len_exclusive: len.end }
    }

    /// Inclusive-length variant.
    pub fn vec_inclusive<S: Strategy>(
        element: S,
        len: core::ops::RangeInclusive<usize>,
    ) -> VecStrategy<S> {
        VecStrategy { element, min_len: *len.start(), max_len_exclusive: *len.end() + 1 }
    }
}

pub mod num {
    //! Numeric special strategies.

    pub mod f64 {
        //! `f64` strategies.
        use crate::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// Every bit pattern, including NaN and infinities.
        pub struct AnyF64;

        /// `proptest::num::f64::ANY`.
        pub const ANY: AnyF64 = AnyF64;

        impl Strategy for AnyF64 {
            type Value = f64;
            fn generate(&self, rng: &mut StdRng) -> f64 {
                f64::from_bits(rng.gen())
            }
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude::*`.
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::{Arbitrary, Strategy};
}

/// Run each property over [`CASES`] deterministic inputs.
///
/// Supported form (the one this workspace uses):
///
/// ```ignore
/// proptest! {
///     #[test]
///     fn my_property(x in 0u64..100, v in proptest::collection::vec(any::<u8>(), 0..40)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$attr])*
            fn $name() {
                for __case in 0..$crate::CASES {
                    let mut __rng = $crate::case_rng(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(let $arg = $crate::Strategy::generate(&$strategy, &mut __rng);)+
                    let __outcome: ::core::result::Result<(), ::std::string::String> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    match __outcome {
                        Ok(()) => {}
                        Err(e) if e == $crate::ASSUME_SKIPPED => {}
                        Err(e) => panic!(
                            "property {} failed on case {}: {}",
                            stringify!($name),
                            __case,
                            e
                        ),
                    }
                }
            }
        )+
    };
}

/// `prop_assert!`: fail the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(format!(
                "assertion failed: {} ({}:{})",
                format!($($fmt)+),
                file!(),
                line!()
            ));
        }
    };
}

/// `prop_assert_eq!`: fail the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err(format!(
                "assertion failed: {} == {} ({:?} vs {:?}) ({}:{})",
                stringify!($left),
                stringify!($right),
                __l,
                __r,
                file!(),
                line!()
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err(format!(
                "assertion failed: {} ({:?} vs {:?}) ({}:{})",
                format!($($fmt)+),
                __l,
                __r,
                file!(),
                line!()
            ));
        }
    }};
}

/// `prop_assert_ne!`: fail the current case if both sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::core::result::Result::Err(format!(
                "assertion failed: {} != {} (both {:?}) ({}:{})",
                stringify!($left),
                stringify!($right),
                __l,
                file!(),
                line!()
            ));
        }
    }};
}

/// `prop_assume!`: skip the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::ASSUME_SKIPPED.to_string());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 10u64..20, y in -5i64..=5) {
            prop_assert!(x >= 10 && x < 20);
            prop_assert!((-5..=5).contains(&y));
        }

        #[test]
        fn vectors_respect_length(v in crate::collection::vec(0u8..=5, 0..50)) {
            prop_assert!(v.len() < 50);
            prop_assert!(v.iter().all(|&b| b <= 5));
        }

        #[test]
        fn tuples_compose(p in (0u32..4, 0.0f64..1.0)) {
            prop_assert!(p.0 < 4);
            prop_assert!(p.1 >= 0.0 && p.1 < 1.0);
        }

        #[test]
        fn assume_skips(v in 0u64..10) {
            prop_assume!(v % 2 == 0);
            prop_assert_eq!(v % 2, 0);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use rand::Rng;
        let a: u64 = crate::case_rng("x::y", 3).gen();
        let b: u64 = crate::case_rng("x::y", 3).gen();
        let c: u64 = crate::case_rng("x::y", 4).gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}

//! Offline shim for the `serde` façade.
//!
//! Exposes `Serialize`/`Deserialize` as no-op derive macros (via the
//! sibling `serde_derive` shim) plus empty marker traits of the same
//! names, so `use serde::{Serialize, Deserialize}` and
//! `#[derive(Serialize, Deserialize)]` both compile unchanged. Nothing in
//! this workspace serializes through serde; the real crate drops back in
//! without source changes once a registry is available.

#![forbid(unsafe_code)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

pub mod ser {
    //! Marker mirror of `serde::ser`.

    /// Marker trait mirroring `serde::ser::Serialize` (never required as
    /// a bound in this workspace).
    pub trait Serialize {}
}

pub mod de {
    //! Marker mirror of `serde::de`.

    /// Marker trait mirroring `serde::de::Deserialize` (never required as
    /// a bound in this workspace).
    pub trait Deserialize<'de> {}
}

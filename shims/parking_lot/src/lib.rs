//! Offline shim for `parking_lot`: the poison-free `Mutex`/`RwLock` API
//! over `std::sync`. A poisoned std lock is recovered transparently —
//! parking_lot semantics (panics don't poison).

#![forbid(unsafe_code)]

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Poison-free mutex with `parking_lot`'s `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// A new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock (no poisoning: a panicked holder's state is
    /// returned as-is, matching parking_lot).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire without blocking: `None` if the lock is held
    /// (parking_lot's `Option` signature; a poisoned holder's state is
    /// recovered, matching [`Mutex::lock`]).
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Poison-free reader-writer lock with `parking_lot`'s signatures.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// A new lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_fails_only_while_held() {
        let m = Mutex::new(7);
        {
            let held = m.lock();
            assert!(m.try_lock().is_none());
            drop(held);
        }
        assert_eq!(*m.try_lock().expect("uncontended"), 7);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}

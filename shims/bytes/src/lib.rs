//! Offline shim for the `bytes` API surface the WAL uses: `BytesMut` as a
//! growable buffer, `Bytes` as its frozen form, `BufMut` little-endian
//! writers, and `Buf` little-endian readers over `&[u8]`.

#![forbid(unsafe_code)]

use std::ops::Deref;

/// Immutable byte buffer (frozen `BytesMut`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Copy out as a vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

/// Growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// An empty buffer with `cap` reserved bytes.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Freeze into an immutable `Bytes`.
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Little-endian writers (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

/// Little-endian readers over an advancing cursor (subset of
/// `bytes::Buf`); implemented for `&[u8]`, which re-slices as it reads.
pub trait Buf {
    /// Bytes remaining.
    fn remaining(&self) -> usize;
    /// Advance the cursor by `n` bytes.
    fn advance(&mut self, n: usize);
    /// Copy `dst.len()` bytes out and advance.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }
    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }
    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }
    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
    /// Read a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_le_bytes(b)
    }
    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self[..dst.len()]);
        *self = &self[dst.len()..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_round_trip() {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u8(7);
        buf.put_u64_le(42);
        buf.put_i64_le(-5);
        buf.put_f64_le(1.5);
        buf.put_u16_le(300);
        buf.put_slice(b"xyz");
        let frozen = buf.freeze();
        let mut cur: &[u8] = &frozen;
        assert_eq!(cur.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cur.get_u8(), 7);
        assert_eq!(cur.get_u64_le(), 42);
        assert_eq!(cur.get_i64_le(), -5);
        assert_eq!(cur.get_f64_le(), 1.5);
        assert_eq!(cur.get_u16_le(), 300);
        let mut rest = [0u8; 3];
        cur.copy_to_slice(&mut rest);
        assert_eq!(&rest, b"xyz");
        assert_eq!(cur.remaining(), 0);
    }
}

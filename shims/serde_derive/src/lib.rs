//! Offline shim for `serde_derive`: the derives expand to nothing.
//!
//! The workspace derives `Serialize`/`Deserialize` on its public types to
//! keep the wire-format door open, but no code path actually serializes
//! through serde (the WAL and codecs are hand-rolled). With no crates.io
//! access, a no-op expansion keeps the annotations compiling at zero cost;
//! swap the real serde back in when the build environment has a registry.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

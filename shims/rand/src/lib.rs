//! Offline shim for the `rand` 0.8 API surface this workspace uses.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a minimal, deterministic reimplementation: `StdRng` here is a
//! xoshiro256++ generator seeded via SplitMix64 (the reference
//! initialisation), not ChaCha12 — streams differ from upstream `rand`,
//! but every consumer in this repo only requires determinism and
//! statistical quality, both of which xoshiro256++ provides.
//!
//! Supported surface: `rngs::StdRng`, `SeedableRng::{seed_from_u64,
//! from_seed}`, `Rng::{gen, gen_range, gen_bool, fill}`, and the
//! `distributions::{Distribution, Standard}` plumbing behind `gen`.

#![forbid(unsafe_code)]

pub mod distributions;
pub mod rngs;

pub use distributions::{Distribution, Standard};

/// Low-level generator interface: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (high half of `next_u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill a byte slice with random data.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The seed type (32 bytes for `StdRng`).
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanded via SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64_next(&mut sm).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub(crate) fn splitmix64_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// High-level sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Sample a value of type `T` from the standard distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Sample uniformly from a range (`low..high` or `low..=high`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        let unit: f64 = Standard.sample(self);
        unit < p
    }

    /// Fill `dest` with random data (byte slices and arrays).
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T) {
        dest.fill_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types `Rng::fill` can populate.
pub trait Fill {
    /// Fill `self` from `rng`.
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

impl<const N: usize> Fill for [u8; N] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

/// Ranges `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Sample one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types with a uniform sampler over `[low, high)` / `[low, high]`.
pub trait SampleUniform: Sized {
    /// Uniform sample; `inclusive` selects closed upper bound.
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start() <= self.end(), "gen_range: empty range");
        T::sample_uniform(rng, *self.start(), *self.end(), true)
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let span = (high as i128 - low as i128) + if inclusive { 1 } else { 0 };
                debug_assert!(span > 0);
                // Modulo over a 128-bit product of two draws: bias is
                // negligible (< 2^-64) for every span this repo uses.
                let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                let offset = (wide % span as u128) as i128;
                (low as i128 + offset) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                _inclusive: bool,
            ) -> Self {
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                low + (unit as $t) * (high - low)
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1_000 {
            let v = rng.gen_range(10i64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0u8..=5);
            assert!(w <= 5);
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn unit_floats_are_uniformish() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_200..2_800).contains(&hits), "hits {hits}");
    }

    #[test]
    fn fill_covers_arrays_and_slices() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut a = [0u8; 32];
        rng.fill(&mut a);
        assert!(a.iter().any(|&b| b != 0));
        let mut v = vec![0u8; 9];
        rng.fill(&mut v[..]);
        assert!(v.iter().any(|&b| b != 0));
    }
}

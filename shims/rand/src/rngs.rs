//! Named generators. `StdRng` here is xoshiro256++ — deterministic,
//! fast, and statistically strong; it is *not* bit-compatible with
//! upstream `rand`'s ChaCha12 `StdRng` (nothing in this workspace needs
//! that, only self-consistency).

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator (xoshiro256++).
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks(8).enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(chunk);
            s[i] = u64::from_le_bytes(bytes);
        }
        // xoshiro forbids the all-zero state; SplitMix64-expanded seeds
        // never produce it, but guard the from_seed path too.
        if s == [0; 4] {
            s = [0x9E37_79B9_7F4A_7C15, 0xBF58_476D_1CE4_E5B9, 0x94D0_49BB_1331_11EB, 1];
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vector() {
        // xoshiro256++ with state {1, 2, 3, 4}: first outputs from the
        // reference implementation (prng.di.unimi.it).
        let mut rng = StdRng { s: [1, 2, 3, 4] };
        let first: Vec<u64> = (0..3).map(|_| rng.next_u64()).collect();
        assert_eq!(first, vec![41943041, 58720359, 3588806011781223]);
    }
}

//! Offline shim for the `criterion` API surface this workspace uses.
//!
//! Implements `Criterion::bench_function` / `benchmark_group` /
//! `bench_with_input`, `Bencher::iter`, `BenchmarkId::from_parameter`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros.
//! Timing is a simple calibrated loop: each bench runs a short warm-up,
//! then a handful of timed samples, and reports the median
//! per-iteration time to stdout. No statistics engine, no HTML reports —
//! enough to run `cargo bench` offline and compare runs by eye.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, as `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

const WARMUP: Duration = Duration::from_millis(200);
const SAMPLES: usize = 11;
const SAMPLE_BUDGET: Duration = Duration::from_millis(120);

/// Set when the binary runs under `cargo test` (cargo passes `--test` to
/// `harness = false` targets): each routine then runs once, untimed, so
/// benches double as smoke tests.
static QUICK_MODE: AtomicBool = AtomicBool::new(false);

/// Inspect CLI args and enable quick mode when run as a test.
pub fn configure_from_args() {
    if std::env::args().any(|a| a == "--test") {
        QUICK_MODE.store(true, Ordering::Relaxed);
    }
}

/// The bench driver handed to each registered function.
pub struct Criterion {
    _private: (),
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { _private: () }
    }
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.to_string() }
    }
}

/// A named group of benchmarks (`criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl<'a> BenchmarkGroup<'a> {
    /// Run one parameterised benchmark inside the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.parameter);
        run_bench(&label, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Finish the group (report flushing is per-bench, so a no-op).
    pub fn finish(&mut self) {}
}

/// Identifier for one parameterised benchmark.
pub struct BenchmarkId {
    parameter: String,
}

impl BenchmarkId {
    /// Identify the bench by its parameter value alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId { parameter: parameter.to_string() }
    }
}

/// Per-bench timing harness (`criterion::Bencher`).
pub struct Bencher {
    mode: Mode,
    /// Median nanoseconds per iteration, filled after measurement.
    result_ns: f64,
}

enum Mode {
    /// Calibration pass: find an iteration count that fills the budget.
    Calibrate { iters_for_budget: u64 },
    /// Timed pass: run exactly `iters` iterations.
    Measure { iters: u64, elapsed: Duration },
}

impl Bencher {
    /// Time the closure. Matches `criterion::Bencher::iter`.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        match &mut self.mode {
            Mode::Calibrate { iters_for_budget } => {
                // Double the count until one batch exceeds the sample budget.
                let mut iters: u64 = 1;
                loop {
                    let start = Instant::now();
                    for _ in 0..iters {
                        black_box(routine());
                    }
                    let took = start.elapsed();
                    if took >= SAMPLE_BUDGET || iters >= 1 << 40 {
                        *iters_for_budget = iters;
                        break;
                    }
                    iters = iters.saturating_mul(2);
                }
            }
            Mode::Measure { iters, elapsed } => {
                let n = *iters;
                let start = Instant::now();
                for _ in 0..n {
                    black_box(routine());
                }
                *elapsed = start.elapsed();
            }
        }
    }
}

fn run_bench<F>(name: &str, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    if QUICK_MODE.load(Ordering::Relaxed) {
        let mut b =
            Bencher { mode: Mode::Measure { iters: 1, elapsed: Duration::ZERO }, result_ns: 0.0 };
        f(&mut b);
        println!("{:<40} ok (test mode)", name);
        return;
    }

    // Warm-up: run the routine until the warm-up window is spent.
    let warm_start = Instant::now();
    let mut calib = Bencher { mode: Mode::Calibrate { iters_for_budget: 1 }, result_ns: 0.0 };
    f(&mut calib);
    let iters = match calib.mode {
        Mode::Calibrate { iters_for_budget } => iters_for_budget,
        Mode::Measure { .. } => 1,
    };
    while warm_start.elapsed() < WARMUP {
        let mut b = Bencher { mode: Mode::Measure { iters: 1, elapsed: Duration::ZERO }, result_ns: 0.0 };
        f(&mut b);
    }

    // Timed samples.
    let mut samples_ns: Vec<f64> = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let mut b = Bencher { mode: Mode::Measure { iters, elapsed: Duration::ZERO }, result_ns: 0.0 };
        f(&mut b);
        if let Mode::Measure { iters, elapsed } = b.mode {
            samples_ns.push(elapsed.as_nanos() as f64 / iters.max(1) as f64);
        }
        let _ = b.result_ns;
    }
    samples_ns.sort_by(|a, b| a.total_cmp(b));
    let median = samples_ns[samples_ns.len() / 2];
    println!("{:<40} time: [{}]", name, format_ns(median));
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{:.2} ns", ns)
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Collect bench functions under one group name, as `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running every group, as `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $crate::configure_from_args();
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        c.bench_function("smoke_add", |b| b.iter(|| black_box(2u64) + black_box(3u64)));
    }

    #[test]
    fn group_runs_parameterised_bench() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke_group");
        for n in [1u64, 2] {
            group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
                b.iter(|| black_box(n) * 2)
            });
        }
        group.finish();
    }
}

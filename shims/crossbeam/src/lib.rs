//! Offline shim for the `crossbeam` API surface this workspace uses:
//! `crossbeam::scope` (scoped worker threads) and
//! `crossbeam::channel::{bounded, unbounded}`, both mapped onto `std`.
//!
//! Semantics note: `scope` here always returns `Ok` — a panicking worker
//! propagates through `std::thread::scope` as a panic rather than an
//! `Err`, which is indistinguishable for the `.expect(..)` call sites in
//! this repo.

#![forbid(unsafe_code)]

use std::thread;

/// A scope handle mirroring `crossbeam::thread::Scope`.
#[derive(Clone, Copy)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a worker inside the scope. The closure receives the scope
    /// (crossbeam signature) so workers can spawn workers.
    pub fn spawn<F, T>(&self, f: F) -> thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let scope = *self;
        self.inner.spawn(move || f(&scope))
    }
}

/// Run `f` with a scope whose spawned threads all join before return.
pub fn scope<'env, F, R>(f: F) -> thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| f(&Scope { inner: s })))
}

pub mod channel {
    //! `crossbeam::channel` subset over `std::sync::mpsc`.

    use std::sync::mpsc;

    /// Sending half of a channel.
    pub struct Sender<T>(Flavor<T>);

    enum Flavor<T> {
        Bounded(mpsc::SyncSender<T>),
        Unbounded(mpsc::Sender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(match &self.0 {
                Flavor::Bounded(s) => Flavor::Bounded(s.clone()),
                Flavor::Unbounded(s) => Flavor::Unbounded(s.clone()),
            })
        }
    }

    /// Error returned when the receiving half is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> Sender<T> {
        /// Send a message, blocking while a bounded channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.0 {
                Flavor::Bounded(s) => s.send(value).map_err(|e| SendError(e.0)),
                Flavor::Unbounded(s) => s.send(value).map_err(|e| SendError(e.0)),
            }
        }
    }

    /// Receiving half of a channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocking receive; `Err` when all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Iterate until every sender is dropped.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.iter()
        }
    }

    /// Error returned when all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// A channel that holds at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(Flavor::Bounded(tx)), Receiver(rx))
    }

    /// A channel without a capacity bound.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(Flavor::Unbounded(tx)), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_workers() {
        let mut results = vec![0u64; 4];
        super::scope(|s| {
            for (i, slot) in results.iter_mut().enumerate() {
                s.spawn(move |_| *slot = i as u64 + 1);
            }
        })
        .unwrap();
        assert_eq!(results, vec![1, 2, 3, 4]);
    }

    #[test]
    fn bounded_channel_round_trip() {
        let (tx, rx) = super::channel::bounded::<u32>(2);
        let worker = std::thread::spawn(move || rx.iter().sum::<u32>());
        for v in 1..=10 {
            tx.send(v).unwrap();
        }
        drop(tx);
        assert_eq!(worker.join().unwrap(), 55);
    }
}

//! Offline shim for the `crossbeam` API surface this workspace uses:
//! `crossbeam::scope` (scoped worker threads) and
//! `crossbeam::channel::{bounded, unbounded}`, both mapped onto `std`.
//!
//! Semantics note: `scope` here always returns `Ok` — a panicking worker
//! propagates through `std::thread::scope` as a panic rather than an
//! `Err`, which is indistinguishable for the `.expect(..)` call sites in
//! this repo.

#![forbid(unsafe_code)]

use std::thread;

/// A scope handle mirroring `crossbeam::thread::Scope`.
#[derive(Clone, Copy)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a worker inside the scope. The closure receives the scope
    /// (crossbeam signature) so workers can spawn workers.
    pub fn spawn<F, T>(&self, f: F) -> thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let scope = *self;
        self.inner.spawn(move || f(&scope))
    }
}

/// Run `f` with a scope whose spawned threads all join before return.
pub fn scope<'env, F, R>(f: F) -> thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| f(&Scope { inner: s })))
}

pub mod channel {
    //! `crossbeam::channel` subset: a multi-producer **multi-consumer**
    //! queue (std's `mpsc::Receiver` is single-consumer, so this is a
    //! hand-rolled `Mutex<VecDeque>` + condvar pair). Both halves are
    //! `Clone`; a clone of a `Receiver` competes for the same messages.

    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Inner<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
        /// Receivers currently parked in `not_empty.wait` — senders only
        /// pay the wake syscall when someone is actually asleep.
        rx_waiting: usize,
        /// Senders currently parked in `not_full.wait` (bounded only).
        tx_waiting: usize,
    }

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        /// Capacity bound; `None` for unbounded channels. A bound of 0 is
        /// clamped to 1 (this shim has no rendezvous mode).
        cap: Option<usize>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Sending half of a channel.
    pub struct Sender<T>(Arc<Shared<T>>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.inner.lock().expect("channel lock").senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.0.inner.lock().expect("channel lock");
            inner.senders -= 1;
            if inner.senders == 0 {
                // Wake receivers blocked on an empty queue so they observe
                // disconnection instead of sleeping forever.
                self.0.not_empty.notify_all();
            }
        }
    }

    /// Error returned when the receiving half is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity; the message is handed back.
        Full(T),
        /// Every receiver is gone; the message is handed back.
        Disconnected(T),
    }

    impl<T> Sender<T> {
        /// Send a message, blocking while a bounded channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.0.inner.lock().expect("channel lock");
            loop {
                if inner.receivers == 0 {
                    return Err(SendError(value));
                }
                match self.0.cap {
                    Some(cap) if inner.queue.len() >= cap => {
                        inner.tx_waiting += 1;
                        inner = self.0.not_full.wait(inner).expect("channel lock");
                        inner.tx_waiting -= 1;
                    }
                    _ => break,
                }
            }
            inner.queue.push_back(value);
            let wake = inner.rx_waiting > 0;
            drop(inner);
            if wake {
                self.0.not_empty.notify_one();
            }
            Ok(())
        }

        /// Non-blocking send: `Full` at capacity, `Disconnected` when every
        /// receiver is gone; the message rides back in the error.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut inner = self.0.inner.lock().expect("channel lock");
            if inner.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if let Some(cap) = self.0.cap {
                if inner.queue.len() >= cap {
                    return Err(TrySendError::Full(value));
                }
            }
            inner.queue.push_back(value);
            let wake = inner.rx_waiting > 0;
            drop(inner);
            if wake {
                self.0.not_empty.notify_one();
            }
            Ok(())
        }
    }

    /// Receiving half of a channel. `Clone` yields a competing consumer:
    /// each message is delivered to exactly one receiver.
    pub struct Receiver<T>(Arc<Shared<T>>);

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.inner.lock().expect("channel lock").receivers += 1;
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = self.0.inner.lock().expect("channel lock");
            inner.receivers -= 1;
            if inner.receivers == 0 {
                // Wake senders blocked on a full queue so they observe
                // disconnection instead of sleeping forever.
                self.0.not_full.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocking receive; `Err` when all senders are gone and the
        /// queue has drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.0.inner.lock().expect("channel lock");
            loop {
                if let Some(value) = inner.queue.pop_front() {
                    let wake = inner.tx_waiting > 0;
                    drop(inner);
                    if wake {
                        self.0.not_full.notify_one();
                    }
                    return Ok(value);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner.rx_waiting += 1;
                inner = self.0.not_empty.wait(inner).expect("channel lock");
                inner.rx_waiting -= 1;
            }
        }

        /// Iterate until every sender is dropped and the queue drains.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            std::iter::from_fn(move || self.recv().ok())
        }
    }

    /// Error returned when all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    fn shared<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
                rx_waiting: 0,
                tx_waiting: 0,
            }),
            cap,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender(Arc::clone(&shared)), Receiver(shared))
    }

    /// A channel that holds at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        shared(Some(cap.max(1)))
    }

    /// A channel without a capacity bound.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        shared(None)
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_workers() {
        let mut results = vec![0u64; 4];
        super::scope(|s| {
            for (i, slot) in results.iter_mut().enumerate() {
                s.spawn(move |_| *slot = i as u64 + 1);
            }
        })
        .unwrap();
        assert_eq!(results, vec![1, 2, 3, 4]);
    }

    #[test]
    fn bounded_channel_round_trip() {
        let (tx, rx) = super::channel::bounded::<u32>(2);
        let worker = std::thread::spawn(move || rx.iter().sum::<u32>());
        for v in 1..=10 {
            tx.send(v).unwrap();
        }
        drop(tx);
        assert_eq!(worker.join().unwrap(), 55);
    }

    #[test]
    fn multi_consumer_delivers_each_message_once() {
        let (tx, rx) = super::channel::bounded::<u64>(8);
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || rx.iter().sum::<u64>())
            })
            .collect();
        drop(rx);
        let expected: u64 = (1..=1000).sum();
        for v in 1..=1000 {
            tx.send(v).unwrap();
        }
        drop(tx);
        let total: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();
        assert_eq!(total, expected);
    }

    #[test]
    fn try_send_reports_full_then_disconnected() {
        use super::channel::TrySendError;
        let (tx, rx) = super::channel::bounded::<u8>(1);
        tx.try_send(1).unwrap();
        assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
        drop(rx);
        assert_eq!(tx.try_send(4), Err(TrySendError::Disconnected(4)));
    }

    #[test]
    fn recv_errors_after_senders_drop_and_queue_drains() {
        let (tx, rx) = super::channel::unbounded::<u8>();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert!(rx.recv().is_err());
    }
}
